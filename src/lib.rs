//! # proxy-aa — Proxy-Based Authorization and Accounting
//!
//! Facade crate for the workspace reproducing B. Clifford Neuman,
//! *Proxy-Based Authorization and Accounting for Distributed Systems*
//! (ICDCS 1993). Re-exports the member crates so examples and downstream
//! users can depend on a single crate:
//!
//! * [`crypto`] — self-contained cryptographic substrate.
//! * [`proxy`] — the restricted-proxy model (the paper's contribution).
//! * [`netsim`] — deterministic simulated network.
//! * [`kerberos`] — Kerberos V5-style authentication substrate.
//! * [`authz`] — ACLs, authorization server, group server, capabilities.
//! * [`accounting`] — accounts, checks, endorsements, clearing.
//! * [`baselines`] — comparators from the paper's related-work section.
//! * [`runtime`] — thread pool and closed-loop measurement harness.
//! * [`wire`] — versioned, CRC-framed binary wire format for every
//!   protocol message, hardened against hostile input.
//! * [`net`] — the TCP/loopback service layer: `Transport`, the
//!   request mux, server, and retrying pooled client.
//!
//! See `README.md` for a tour and `examples/` for runnable scenarios.
//!
//! ```
//! use proxy_aa::proxy::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let session = proxy_aa::crypto::keys::SymmetricKey::generate(&mut rng);
//! let proxy = grant(
//!     &PrincipalId::new("alice"),
//!     &GrantAuthority::SharedKey(session),
//!     RestrictionSet::new(),
//!     Validity::new(Timestamp(0), Timestamp(100)),
//!     1,
//!     &mut rng,
//! );
//! assert_eq!(proxy.grantor().as_str(), "alice");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kerberos_sim as kerberos;
pub use netsim;
pub use proxy_accounting as accounting;
pub use proxy_authz as authz;
pub use proxy_baselines as baselines;
pub use proxy_crypto as crypto;
pub use proxy_net as net;
pub use proxy_runtime as runtime;
pub use proxy_storage as storage;
pub use proxy_wire as wire;
pub use restricted_proxy as proxy;
