//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`, `any` for
//! the primitive types the tests draw, range and tuple strategies,
//! [`prelude::Just`], `prop_oneof!`, `collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the failure message and
//!   the deterministic case seed, which reproduces it exactly.
//! * **Deterministic by default.** Cases derive from a fixed base seed,
//!   so CI failures reproduce locally without a persistence file. Set
//!   `PROPTEST_BASE_SEED` to explore a different sequence.
//! * `PROPTEST_CASES` overrides the per-test case count globally.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::RngCore;

/// The RNG handed to strategies while generating one case.
pub type TestRng = StdRng;

/// Runtime configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case; mirrors
/// `proptest::test_runner::TestCaseError` (without the reject variant's
/// retry semantics — a stub rejection just skips the case).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// An error that fails the enclosing property.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(reason: String) -> Self {
        Self(reason)
    }
}

impl From<&str> for TestCaseError {
    fn from(reason: &str) -> Self {
        Self(reason.to_string())
    }
}

/// The result of one property case, mirroring
/// `proptest::test_runner::TestCaseResult`.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Executes property cases; used by the [`proptest!`] expansion.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner for `config`, honoring the `PROPTEST_CASES` and
    /// `PROPTEST_BASE_SEED` environment overrides.
    #[must_use]
    pub fn new(mut config: ProptestConfig) -> Self {
        if let Some(cases) = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.cases = cases;
        }
        let base_seed = std::env::var("PROPTEST_BASE_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x70726f70_u64);
        Self { config, base_seed }
    }

    /// Runs `case` once per configured case with a per-case deterministic
    /// RNG.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing test) when a case returns `Err`.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
        for i in 0..self.config.cases {
            let seed = self
                .base_seed
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(u64::from(i));
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(msg) = case(&mut rng) {
                panic!("proptest case {i} (seed {seed:#x}) failed: {msg}");
            }
        }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` (without
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and derives a second strategy from
    /// it (dependent generation).
    fn prop_flat_map<U, S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy<Value = U>,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted boxed alternatives; the target of
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union of alternatives.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi { lo } else { rng.gen_range(lo..hi.wrapping_add(1)) }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident/$idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size arguments for [`vec()`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range for collection::vec");
        VecStrategy { element, lo, hi }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng;
            let len = rng.gen_range(self.lo..self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Alias so `prop::collection::vec` style paths work.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(|proptest_case_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), proptest_case_rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless `cond` holds (stub: treated as success,
/// which is sound — it only reduces coverage of conditioned cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies yielding one value type; mirrors
/// `proptest::prop_oneof!`. Weights (`w => strategy`) are accepted and
/// treated as equal weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges act as strategies.
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn maps_and_tuples_compose(
            v in crate::collection::vec(any::<u8>(), 1..5),
            (a, b) in (1u32..4, 5u32..9),
            s in prop_oneof![Just("x"), Just("y")].prop_map(|s| s.len()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(a < 4 && (5..9).contains(&b));
            prop_assert_eq!(s, 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(1));
        runner.run(|_rng| Err(TestCaseError::fail("failed")));
    }
}
