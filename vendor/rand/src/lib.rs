//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the *API subset it actually uses*: [`RngCore`],
//! [`SeedableRng`], [`Rng`] (`gen`/`gen_range`/`fill`), and a deterministic
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for simulations and property tests,
//! and deterministic for a given seed, which is all the workspace needs.
//! It makes no cryptographic-quality claims; key material in this repo is
//! used for *simulation*, mirroring the caveats in `crates/crypto`.
//!
//! Stream values differ from the real `rand::rngs::StdRng` (which is
//! ChaCha12); nothing in the workspace depends on the exact stream, only
//! on determinism within a binary.

#![forbid(unsafe_code)]

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from fixed entropy, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64
    /// (the same convention the real crate documents).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Sampling conveniences layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Generates a value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Generates a value uniformly in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce (the workspace's subset of `Standard`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `Rng::gen_range` supports.
pub trait UniformInt: Copy + PartialOrd {
    /// Samples uniformly in `[low, high)`.
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // for astronomically large spans is irrelevant here.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                ((low as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                  i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            let mut rng = StdRng { s };
            // Discard a few outputs so close seeds decorrelate.
            for _ in 0..4 {
                rng.step();
            }
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
