//! Offline stand-in for the `criterion` crate.
//!
//! A real measuring harness with Criterion's API shape (the subset the
//! workspace's benches use): `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`Bencher::iter`] and [`Bencher::iter_batched`], [`BenchmarkId`], and
//! [`black_box`].
//!
//! Measurement model: each benchmark warms up briefly, auto-calibrates an
//! iteration batch so one sample costs ≳250 µs of timer resolution (so
//! µs-scale routines are averaged over many iterations per sample), then
//! collects `sample_size` samples and reports the median with a
//! 10th–90th-percentile spread — scheduler outliers land outside the
//! reported interval instead of defining it — in Criterion's familiar
//! one-line format:
//!
//! ```text
//! f4_verify_chain/8       time:   [52.1 µs 54.0 µs 57.9 µs]
//! ```
//!
//! `--quick` (or `CRITERION_QUICK=1`) cuts warm-up and sample counts for
//! smoke runs. Unrecognized CLI flags (e.g. the `--bench` cargo passes)
//! are ignored.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// An opaque identity function the optimizer must assume reads and writes
/// its argument; mirrors `criterion::black_box` (via `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; only the variants the workspace uses.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs: large batches.
    SmallInput,
    /// Large per-iteration inputs: batch of one.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (grouped benches).
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as an id.
pub trait IntoBenchmarkId {
    /// The final display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement_time: Duration,
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0")
}

impl Default for Settings {
    fn default() -> Self {
        if quick_mode() {
            Settings {
                sample_size: 50,
                warm_up: Duration::from_millis(60),
                measurement_time: Duration::from_millis(500),
            }
        } else {
            Settings {
                sample_size: 100,
                warm_up: Duration::from_millis(300),
                measurement_time: Duration::from_millis(2500),
            }
        }
    }
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_bench(&id.into_id(), self.settings, f);
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&id.id, self.settings, |b| f(b, input));
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(5);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let id = format!("{}/{}", self.name, id.into_id());
        run_bench(&id, self.settings, f);
    }

    /// Benchmarks a closure against a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let id = format!("{}/{}", self.name, id.id);
        run_bench(&id, self.settings, |b| f(b, input));
    }

    /// Ends the group (report lines were already emitted).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs the timed routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// cost from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, mut f: F) {
    // Warm-up and calibration: find an iteration count whose sample takes
    // long enough to average out timer granularity and scheduler jitter —
    // µs-scale routines get hundreds of iterations per sample.
    let mut iters = 1u64;
    let warm_up_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_up_start.elapsed() >= settings.warm_up {
            break;
        }
        if b.elapsed < Duration::from_micros(250) {
            iters = iters.saturating_mul(2);
        }
    }

    // Collect samples within the measurement budget.
    let mut samples: Vec<f64> = Vec::with_capacity(settings.sample_size);
    let measure_start = Instant::now();
    for i in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters.max(1) as f64);
        // Keep at least 20 samples even when over budget.
        if i >= 19 && measure_start.elapsed() > settings.measurement_time {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = samples[samples.len() / 2];
    // 10th–90th percentile spread: a preempted sample or two shows up as
    // an outlier beyond the interval rather than stretching it.
    let lo = samples[samples.len() / 10];
    let hi = samples[samples.len() - 1 - samples.len() / 10];
    println!(
        "{id:<40} time:   [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(seconds: f64) -> String {
    let (value, unit) = if seconds < 1e-6 {
        (seconds * 1e9, "ns")
    } else if seconds < 1e-3 {
        (seconds * 1e6, "µs")
    } else if seconds < 1.0 {
        (seconds * 1e3, "ms")
    } else {
        (seconds, "s")
    };
    let mut out = String::new();
    if value < 10.0 {
        write!(out, "{value:.4} {unit}").expect("fmt");
    } else if value < 100.0 {
        write!(out, "{value:.3} {unit}").expect("fmt");
    } else {
        write!(out, "{value:.2} {unit}").expect("fmt");
    }
    out
}

/// Declares a group of benchmark functions; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_terminates() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(1u64 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn format_time_picks_units() {
        assert!(format_time(2.5e-9).ends_with("ns"));
        assert!(format_time(2.5e-6).ends_with("µs"));
        assert!(format_time(2.5e-3).ends_with("ms"));
        assert!(format_time(2.5).ends_with('s'));
    }
}
