#!/bin/sh
# Local CI gate: formatting, lints (warnings are errors), full test suite.
# Run from the repository root before pushing.
set -eu

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
