#!/bin/sh
# Local CI gate: formatting, lints (warnings are errors), full test suite.
# Run from the repository root before pushing.
set -eu

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q

# Concurrency stress: run the shared-&self server tests with real
# parallelism (8 test threads, release mode so races aren't serialized
# by debug-build slowness).
RUST_TEST_THREADS=8 cargo test --release -q --test concurrency

# Documentation gate: rustdoc warnings (broken intra-doc links, bad
# HTML) are errors.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
