#!/bin/sh
# Local CI gate: formatting, lints (warnings are errors), full test suite.
# Run from the repository root before pushing.
set -eu

cargo fmt --all -- --check

# Workspace invariant analyzer (DESIGN.md §11, flow-aware tier §16):
# panic-freedom on untrusted paths, fail-closed Restriction matching,
# constant-time secret comparison, determinism, crate-root hygiene, the
# workspace lock-order graph (L6), durability ordering around the journal
# (L7), and untrusted-length taint into allocation sinks (L8).
# Suppressions live in lint-allow.toml and must each carry a
# justification; stale entries fail the run. The run also emits a
# machine-readable artifact and is budgeted: the deeper flow passes must
# not become the slowest CI step.
cargo run -q --release -p proxy-lint -- --workspace --explain \
    --json target/proxy-lint-report.json --budget-secs 10
echo "ci.sh: lint artifact at target/proxy-lint-report.json"

# Allowlist rot check: every lint-allow.toml entry must still suppress a
# real finding; entries that match nothing fail here so dead exemptions
# cannot accumulate and silently cover future regressions.
cargo run -q --release -p proxy-lint -- --audit-allows

# Clippy is driven by the [workspace.lints] table in Cargo.toml. Guarded:
# minimal toolchains ship without the clippy component.
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "ci.sh: cargo clippy unavailable on this toolchain, skipping" >&2
fi

cargo test --workspace -q

# Concurrency stress: run the shared-&self server tests with real
# parallelism (8 test threads, release mode so races aren't serialized
# by debug-build slowness).
RUST_TEST_THREADS=8 cargo test --release -q --test concurrency

# Networked service layer: the end-to-end TCP protocol flows and the
# wire-format property suite (round-trips over real crypto payloads,
# hostile-input rejection), both in release so the Ed25519 paths and
# the 10k-frame mutation loops run at full speed.
cargo test --release -q --test net_integration
cargo test --release -q -p proxy-wire --test proptests --test corpus

# Pipelined wire path (DESIGN.md §12): correlation of out-of-order
# replies, accept-once/fail-closed invariants under deep pipelines and
# racing clients, pooled-connection recovery after (mid-frame)
# disconnects, and the seal micro-batcher's failure isolation — release
# mode so the Ed25519 batch equations run at full speed.
cargo test --release -q --test pipeline
cargo test --release -q --test security_adversarial forged_seal_in_a_micro_batch

# Readiness-driven net core (DESIGN.md §13): per-connection state
# machines under partial reads/writes, slow-loris, backpressure, idle
# reap, and thousands of idle registrations — release mode so the
# event loop runs at realistic speed. Then a reduced-scale C10k smoke
# (512 concurrent pipelined connections, flat-p99 gate asserted by the
# harness itself).
cargo test --release -q -p proxy-net --test event_loop
cargo run -q -p proxy-bench --bin figures --release -- --c10k-smoke

# Revocation index + membership mirror (DESIGN.md §14): reduced-scale
# smoke (100k serials / 100k members) asserting the O(1) contains
# ratio, the ≤5% cascade-verify overhead, and the zero-round-trip
# membership tally. The quantile gates compare timing ratios, so one
# retry absorbs a noisy-neighbor window on shared hosts.
cargo run -q -p proxy-bench --bin figures --release -- --revocation-smoke \
    || cargo run -q -p proxy-bench --bin figures --release -- --revocation-smoke

# Durable accounting (DESIGN.md §15): crash-injection suite in release
# mode — exactly-once deposits across kill points, torn-tail recovery,
# bit-flip fail-closed, conservation across repeated restarts — plus the
# WAL framing property/hostile-corpus suite. Then a reduced-scale group
# commit smoke (gate: batched fsync ≥ 3× fsync-per-record; the full 5×
# gate runs via `figures --wal`). The gate compares throughput ratios on
# real fsyncs, so one retry absorbs a noisy-neighbor window.
cargo test --release -q --test storage_crash
cargo test --release -q -p proxy-storage --test framing
cargo run -q -p proxy-bench --bin figures --release -- --wal-smoke \
    || cargo run -q -p proxy-bench --bin figures --release -- --wal-smoke

# Zero-allocation hot path (DESIGN.md §17): reduced-scale smoke with
# the counting global allocator (feature `alloc-count`) — steady-state
# allocs/op on the authz-query wire path must stay under the fixed
# ceiling, and the slicing-by-8 CRC must agree with the bytewise
# reference before it is timed. Allocation counts are deterministic at
# steady state, but the retry absorbs a noisy-neighbor window skewing
# the warm-up on shared hosts.
cargo run -q -p proxy-bench --features alloc-count --bin figures --release -- --alloc-smoke \
    || cargo run -q -p proxy-bench --features alloc-count --bin figures --release -- --alloc-smoke

# Documentation gate: rustdoc warnings (broken intra-doc links, bad
# HTML) are errors.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
