//! §3.5 / §7.2 scenario: compound principals and separation of privilege.
//!
//! A vault server requires *two* concurring parties to open the vault
//! (a compound ACL entry), and a release server requires membership in
//! two groups with disjoint members (`for-use-by-group` with required=2) —
//! "one way to implement separation of privilege" (§7.2).
//!
//! Run with: `cargo run --example separation_of_privilege`

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::authz::{Acl, AclRights, AclSubject, EndServer, GroupServer, Request};
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(41);

    // =====================================================================
    // Part 1 — compound principal: officer AND auditor must concur.
    // =====================================================================
    let officer = PrincipalId::new("officer");
    let auditor = PrincipalId::new("auditor");
    let vault = PrincipalId::new("vault");

    let officer_key = SymmetricKey::generate(&mut rng);
    let auditor_key = SymmetricKey::generate(&mut rng);
    let mut server = EndServer::new(
        vault.clone(),
        MapResolver::new()
            .with(
                officer.clone(),
                GrantorVerifier::SharedKey(officer_key.clone()),
            )
            .with(
                auditor.clone(),
                GrantorVerifier::SharedKey(auditor_key.clone()),
            ),
    );
    server.acls.set(
        ObjectName::new("vault-door"),
        Acl::new().with(
            AclSubject::Compound(vec![officer.clone(), auditor.clone()]),
            AclRights::ops(vec![Operation::new("open")]),
        ),
    );
    println!("vault ACL: open requires officer AND auditor.\n");

    // Both grant single-operation proxies to the same courier.
    let mk = |who: &PrincipalId, key: &SymmetricKey, serial, rng: &mut StdRng| {
        grant(
            who,
            &GrantAuthority::SharedKey(key.clone()),
            RestrictionSet::new().with(Restriction::authorize_op(
                ObjectName::new("vault-door"),
                Operation::new("open"),
            )),
            Validity::new(Timestamp(0), Timestamp(100)),
            serial,
            rng,
        )
    };
    let officer_proxy = mk(&officer, &officer_key, 1, &mut rng);
    let auditor_proxy = mk(&auditor, &auditor_key, 2, &mut rng);

    let one = Request::new(
        Operation::new("open"),
        ObjectName::new("vault-door"),
        Timestamp(1),
    )
    .with_presentation(officer_proxy.present_bearer([1u8; 32], &vault));
    println!(
        "courier presents officer's proxy only:  {}",
        verdict(&server.authorize(&one))
    );

    let both = Request::new(
        Operation::new("open"),
        ObjectName::new("vault-door"),
        Timestamp(1),
    )
    .with_presentation(officer_proxy.present_bearer([2u8; 32], &vault))
    .with_presentation(auditor_proxy.present_bearer([3u8; 32], &vault));
    println!(
        "courier presents BOTH proxies:          {}\n",
        verdict(&server.authorize(&both))
    );

    // =====================================================================
    // Part 2 — for-use-by-group with two disjoint groups (§7.2).
    // =====================================================================
    let gs = PrincipalId::new("group-server");
    let gs_key = SymmetricKey::generate(&mut rng);
    let groups = GroupServer::new(gs.clone(), GrantAuthority::SharedKey(gs_key.clone()));
    groups.add_member("operators", PrincipalId::new("dana"));
    groups.add_member("safety-board", PrincipalId::new("dana"));
    groups.add_member("operators", PrincipalId::new("erin"));

    let launch = PrincipalId::new("launch-server");
    let owner = PrincipalId::new("launch-owner");
    let owner_key = SymmetricKey::generate(&mut rng);
    let mut launch_server = EndServer::new(
        launch.clone(),
        MapResolver::new()
            .with(owner.clone(), GrantorVerifier::SharedKey(owner_key.clone()))
            .with(gs.clone(), GrantorVerifier::SharedKey(gs_key)),
    );
    launch_server.acls.set(
        ObjectName::new("launch-button"),
        Acl::new().with(AclSubject::Principal(owner.clone()), AclRights::all()),
    );

    // The owner's capability demands membership in BOTH groups.
    let cap = grant(
        &owner,
        &GrantAuthority::SharedKey(owner_key),
        RestrictionSet::new()
            .with(Restriction::authorize_op(
                ObjectName::new("launch-button"),
                Operation::new("press"),
            ))
            .with(Restriction::ForUseByGroup {
                groups: vec![
                    GroupName::new(gs.clone(), "operators"),
                    GroupName::new(gs.clone(), "safety-board"),
                ],
                required: 2,
            }),
        Validity::new(Timestamp(0), Timestamp(100)),
        1,
        &mut rng,
    );
    println!("launch capability requires: operators AND safety-board membership.\n");

    let window = Validity::new(Timestamp(0), Timestamp(100));
    // Dana is in both groups.
    let dana_proof = groups
        .membership_proxy(
            &PrincipalId::new("dana"),
            &["operators", "safety-board"],
            window,
            &mut rng,
        )
        .expect("dana is in both");
    let req = Request::new(
        Operation::new("press"),
        ObjectName::new("launch-button"),
        Timestamp(1),
    )
    .authenticated_as(PrincipalId::new("dana"))
    .with_presentation(dana_proof.present_delegate())
    .with_presentation(cap.present_bearer([4u8; 32], &launch));
    println!(
        "dana (both groups) presses:             {}",
        verdict(&launch_server.authorize(&req))
    );

    // Erin is only an operator.
    let erin_proof = groups
        .membership_proxy(&PrincipalId::new("erin"), &["operators"], window, &mut rng)
        .expect("erin is an operator");
    let req = Request::new(
        Operation::new("press"),
        ObjectName::new("launch-button"),
        Timestamp(1),
    )
    .authenticated_as(PrincipalId::new("erin"))
    .with_presentation(erin_proof.present_delegate())
    .with_presentation(cap.present_bearer([5u8; 32], &launch));
    println!(
        "erin (operators only) presses:          {}",
        verdict(&launch_server.authorize(&req))
    );
}

fn verdict<T, E: std::fmt::Display>(r: &Result<T, E>) -> String {
    match r {
        Ok(_) => "ALLOWED".to_string(),
        Err(e) => format!("DENIED ({e})"),
    }
}
