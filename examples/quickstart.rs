//! Quickstart: grant, restrict, present, and verify a restricted proxy.
//!
//! This walks the core mechanism of the paper end-to-end in the
//! conventional-cryptography world: alice (who shares a session key with
//! the file server, as she would after a Kerberos AP exchange) grants bob
//! a read-only capability for one file; bob exercises it; every misuse is
//! rejected.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Setup: alice shares a session key with the file server. --------
    let alice = PrincipalId::new("alice");
    let fileserver = PrincipalId::new("fileserver");
    let session = SymmetricKey::generate(&mut rng);
    println!("alice has authenticated to {fileserver}; a session key exists.\n");

    // --- Alice grants a restricted proxy (Fig. 1). ----------------------
    let restrictions = RestrictionSet::new()
        .with(Restriction::authorize_op(
            ObjectName::new("/doc/report.txt"),
            Operation::new("read"),
        ))
        .with(Restriction::issued_for_one(fileserver.clone()));
    let proxy = grant(
        &alice,
        &GrantAuthority::SharedKey(session.clone()),
        restrictions,
        Validity::new(Timestamp(0), Timestamp(1_000)),
        1,
        &mut rng,
    );
    println!(
        "alice granted a bearer proxy: read /doc/report.txt only, at {} only,\n  certificate = {} bytes, expires at t1000.\n",
        fileserver,
        proxy.certs[0].encoded_len()
    );

    // --- The file server's verifier. -------------------------------------
    let resolver = MapResolver::new().with(alice.clone(), GrantorVerifier::SharedKey(session));
    let verifier = Verifier::new(fileserver.clone(), resolver);
    let mut replay = MemoryReplayGuard::new();

    // --- Bob (holding the proxy) reads the file. ------------------------
    let challenge = [42u8; 32]; // the server's fresh challenge
    let presentation = proxy.present_bearer(challenge, &fileserver);
    let ctx = RequestContext::new(
        fileserver.clone(),
        Operation::new("read"),
        ObjectName::new("/doc/report.txt"),
    )
    .at(Timestamp(10));
    let verified = verifier
        .verify(&presentation, &ctx, &mut replay)
        .expect("the read is authorized");
    println!(
        "bob presented the proxy: ALLOWED, acting with {}'s rights (chain length {}).",
        verified.grantor, verified.chain_len
    );

    // --- Misuse is rejected. ---------------------------------------------
    let write_ctx = RequestContext::new(
        fileserver.clone(),
        Operation::new("write"),
        ObjectName::new("/doc/report.txt"),
    )
    .at(Timestamp(10));
    let denied = verifier.verify(&presentation, &write_ctx, &mut replay);
    println!("bob tried to WRITE: {}", denied.unwrap_err());

    let late_ctx = ctx.clone().at(Timestamp(2_000));
    let denied = verifier.verify(&presentation, &late_ctx, &mut replay);
    println!("bob tried after expiry: {}", denied.unwrap_err());

    // --- Bob narrows the proxy before passing it to carol (Fig. 4). -----
    let narrowed = proxy
        .derive(
            RestrictionSet::new().with(Restriction::AcceptOnce { id: 99 }),
            Validity::new(Timestamp(0), Timestamp(500)),
            2,
            &mut rng,
        )
        .expect("derivable");
    println!(
        "\nbob derived a single-use copy for carol (chain length {}).",
        narrowed.certs.len()
    );
    let pres = narrowed.present_bearer([43u8; 32], &fileserver);
    verifier
        .verify(&pres, &ctx, &mut replay)
        .expect("first use allowed");
    println!("carol's first use: ALLOWED");
    let pres2 = narrowed.present_bearer([44u8; 32], &fileserver);
    let denied = verifier.verify(&pres2, &ctx, &mut replay);
    println!("carol's second use: {}", denied.unwrap_err());
}
