//! §4 / Fig. 5 scenario: electronic commerce with checks.
//!
//! Carol buys from a shop. They bank at different accounting servers, so
//! the shop's deposit triggers the full Fig. 5 clearing flow: carol's
//! check (a numbered delegate proxy), the shop's deposit-only endorsement
//! (E1), the shop's bank's endorsement (E2), collection at carol's bank,
//! and the payment's return. A certified check and a bounced check follow.
//!
//! Run with: `cargo run --example commerce`

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::accounting::{write_check, AccountingServer, ClearingHouse};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::netsim::Network;
use proxy_aa::proxy::prelude::*;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn usd() -> Currency {
    Currency::new("USD")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(21);

    // --- Two banks, as in Fig. 5. ---------------------------------------
    let carol_key = SigningKey::generate(&mut rng);
    let shop_key = SigningKey::generate(&mut rng);
    let bank1_key = SigningKey::generate(&mut rng);
    let bank2_key = SigningKey::generate(&mut rng);

    let mut bank1 = AccountingServer::new(p("$1"), GrantAuthority::Keypair(bank1_key.clone()));
    bank1.open_account("shop", vec![p("shop")]);

    let mut bank2 = AccountingServer::new(p("$2"), GrantAuthority::Keypair(bank2_key));
    bank2.open_account("carol", vec![p("carol")]);
    bank2.account_mut("carol").unwrap().credit(usd(), 1_000);
    bank2.register_grantor(
        p("carol"),
        GrantorVerifier::PublicKey(carol_key.verifying_key()),
    );
    bank2.register_grantor(
        p("shop"),
        GrantorVerifier::PublicKey(shop_key.verifying_key()),
    );
    bank2.register_grantor(
        p("$1"),
        GrantorVerifier::PublicKey(bank1_key.verifying_key()),
    );

    let mut house = ClearingHouse::new();
    house.add_server(bank1);
    house.add_server(bank2);
    let carol_auth = GrantAuthority::Keypair(carol_key);
    let shop_auth = GrantAuthority::Keypair(shop_key);
    println!("carol banks at $2 (balance 1000 USD); the shop banks at $1.\n");

    // --- Purchase 1: an ordinary check. ---------------------------------
    let check = write_check(
        &p("carol"),
        &carol_auth,
        &p("$2"),
        "carol",
        p("shop"),
        1001,
        usd(),
        250,
        Validity::new(Timestamp(0), Timestamp(100_000)),
        &mut rng,
    );
    println!("carol writes check #1001 for 250 USD to the shop.");
    let mut net = Network::new(0);
    let report = house
        .deposit_and_clear(
            &check,
            &p("shop"),
            &shop_auth,
            &p("$1"),
            "shop",
            Timestamp(1),
            &mut rng,
            Some(&mut net),
        )
        .expect("clears");
    println!(
        "cleared through {} endorsement hop(s), {} messages, {} simulated ticks.",
        report.hops,
        report.messages,
        net.now()
    );
    print_balances(&house);

    // --- A double-deposit attempt (same check number). -------------------
    let replay = house.deposit_and_clear(
        &check,
        &p("shop"),
        &shop_auth,
        &p("$1"),
        "shop",
        Timestamp(2),
        &mut rng,
        None,
    );
    println!(
        "the shop tries to deposit check #1001 AGAIN: {}\n",
        replay.err().map_or("?".into(), |e| e.to_string())
    );

    // --- Purchase 2: a certified check. ----------------------------------
    println!("carol certifies check #1002 for 600 USD (funds held at $2).");
    house
        .server_mut(&p("$2"))
        .unwrap()
        .certify(
            &p("carol"),
            "carol",
            1002,
            usd(),
            600,
            p("shop"),
            Validity::new(Timestamp(0), Timestamp(100_000)),
            &mut rng,
        )
        .expect("certified");
    print_balances(&house);
    // Even if carol spends everything else, the certified check clears.
    let drain = house
        .server_mut(&p("$2"))
        .unwrap()
        .account_mut("carol")
        .unwrap()
        .debit(&usd(), 150);
    println!("carol spends her remaining balance elsewhere: {drain:?}");
    let check2 = write_check(
        &p("carol"),
        &carol_auth,
        &p("$2"),
        "carol",
        p("shop"),
        1002,
        usd(),
        600,
        Validity::new(Timestamp(0), Timestamp(100_000)),
        &mut rng,
    );
    let report = house
        .deposit_and_clear(
            &check2,
            &p("shop"),
            &shop_auth,
            &p("$1"),
            "shop",
            Timestamp(3),
            &mut rng,
            None,
        )
        .expect("certified check clears from the hold");
    println!(
        "certified check #1002 cleared ({} USD).",
        report.payment.amount
    );
    print_balances(&house);

    // --- Purchase 3: insufficient funds. ----------------------------------
    let bad = write_check(
        &p("carol"),
        &carol_auth,
        &p("$2"),
        "carol",
        p("shop"),
        1003,
        usd(),
        500,
        Validity::new(Timestamp(0), Timestamp(100_000)),
        &mut rng,
    );
    let bounced = house.deposit_and_clear(
        &bad,
        &p("shop"),
        &shop_auth,
        &p("$1"),
        "shop",
        Timestamp(4),
        &mut rng,
        None,
    );
    println!(
        "check #1003 for 500 USD: {}",
        bounced.err().map_or("?".into(), |e| e.to_string())
    );
    // The shop's bank reverses the pending credit out of band (§4).
    let reversed = house
        .server_mut(&p("$1"))
        .unwrap()
        .bounce(&p("carol"), 1003)
        .expect("in-memory bounce cannot fail");
    println!("shop's bank reverses the uncollected deposit: {reversed}");
}

fn print_balances(house: &ClearingHouse) {
    let carol = house.server(&p("$2")).unwrap().account("carol").unwrap();
    let shop = house.server(&p("$1")).unwrap().account("shop").unwrap();
    println!(
        "  balances: carol = {} USD (+{} held), shop = {} USD\n",
        carol.balance(&usd()),
        carol.held(&usd()),
        shop.balance(&usd()),
    );
}
