//! §3.4 scenario: cascaded authorization through a print pipeline.
//!
//! Alice asks the print spooler to print one of her files. The spooler
//! must fetch the file from the file server *on alice's behalf* — but
//! alice does not fully trust the spooler, so she grants it a delegate
//! proxy restricted to reading exactly that file. The spooler passes the
//! task to a worker via a delegate cascade (§3.4), which leaves an audit
//! trail naming the spooler. The file server verifies the whole chain
//! offline.
//!
//! Run with: `cargo run --example print_pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let alice = PrincipalId::new("alice");
    let spooler = PrincipalId::new("print-spooler");
    let worker = PrincipalId::new("print-worker-3");
    let fs = PrincipalId::new("fileserver");

    // Session keys with the file server (from the authentication layer).
    let alice_fs = SymmetricKey::generate(&mut rng);
    let spooler_fs = SymmetricKey::generate(&mut rng);
    let resolver = MapResolver::new()
        .with(alice.clone(), GrantorVerifier::SharedKey(alice_fs.clone()))
        .with(
            spooler.clone(),
            GrantorVerifier::SharedKey(spooler_fs.clone()),
        );
    let verifier = Verifier::new(fs.clone(), resolver);
    let mut replay = MemoryReplayGuard::new();

    // --- Alice grants the spooler a restricted delegate proxy. ----------
    let job_proxy = grant(
        &alice,
        &GrantAuthority::SharedKey(alice_fs),
        RestrictionSet::new()
            .with(Restriction::grantee_one(spooler.clone()))
            .with(Restriction::authorize_op(
                ObjectName::new("/home/alice/thesis.ps"),
                Operation::new("read"),
            ))
            .with(Restriction::issued_for_one(fs.clone())),
        Validity::new(Timestamp(0), Timestamp(500)),
        1,
        &mut rng,
    );
    println!("alice → spooler: delegate proxy (read thesis.ps at fileserver only).\n");

    // --- The spooler itself could fetch the file… ------------------------
    let ctx = RequestContext::new(
        fs.clone(),
        Operation::new("read"),
        ObjectName::new("/home/alice/thesis.ps"),
    )
    .at(Timestamp(10));
    let as_spooler = ctx.clone().authenticated_as(spooler.clone());
    let ok = verifier.verify(&job_proxy.present_delegate(), &as_spooler, &mut replay);
    println!("spooler fetches the file itself:    {}", verdict(&ok));

    // --- …but hands the job to a worker via a delegate cascade. ----------
    let cascaded = delegate_cascade(
        &job_proxy.certs,
        &spooler,
        &GrantAuthority::SharedKey(spooler_fs),
        worker.clone(),
        RestrictionSet::new(),
        Validity::new(Timestamp(0), Timestamp(200)), // narrower window
        2,
        &mut rng,
    )
    .expect("cascade");
    println!("spooler → worker: cascaded proxy. Audit trail:");
    print!("{}", cascaded.audit_trail());

    let as_worker = ctx.clone().authenticated_as(worker.clone());
    let verified = verifier
        .verify(&cascaded.present_delegate(), &as_worker, &mut replay)
        .expect("worker may read");
    println!(
        "worker fetches the file:            ALLOWED (acting as {}, expires {}).",
        verified.grantor, verified.expires
    );

    // --- The chain is not transferable to strangers. ----------------------
    let as_mallory = ctx.clone().authenticated_as(PrincipalId::new("mallory"));
    let ok = verifier.verify(&cascaded.present_delegate(), &as_mallory, &mut replay);
    println!("mallory replays the chain:          {}", verdict(&ok));

    // --- And it cannot reach other files. ---------------------------------
    let other = RequestContext::new(
        fs.clone(),
        Operation::new("read"),
        ObjectName::new("/home/alice/diary.txt"),
    )
    .at(Timestamp(10))
    .authenticated_as(worker.clone());
    let ok = verifier.verify(&cascaded.present_delegate(), &other, &mut replay);
    println!("worker tries alice's diary:         {}", verdict(&ok));

    // --- The cascade's narrower expiry wins. -------------------------------
    let late = ctx.at(Timestamp(300)).authenticated_as(worker);
    let ok = verifier.verify(&cascaded.present_delegate(), &late, &mut replay);
    println!("worker retries after t=200:         {}", verdict(&ok));
}

fn verdict<T, E: std::fmt::Display>(r: &Result<T, E>) -> String {
    match r {
        Ok(_) => "ALLOWED".to_string(),
        Err(e) => format!("DENIED ({e})"),
    }
}
