//! The paper's protocol over real sockets: three servers on loopback TCP
//! ports — an authorization server (Fig. 3), an end-server (Fig. 4), and
//! an accounting server (Fig. 5) — driven by a pooled retrying client.
//!
//! Each step prints the bytes that actually crossed the wire (request
//! and reply frames, including the 18-byte header and 4-byte CRC) and
//! the client-observed round-trip time.
//!
//! Run with: `cargo run --example tcp_demo`
//!
//! Pass `--event-loop` to serve all three endpoints from the
//! readiness-driven `EventLoopServer` (one epoll worker each) instead
//! of the blocking thread-per-connection `TcpServer` — the protocol,
//! client, and output are identical; only the server's concurrency
//! model changes.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::accounting::{write_check, AccountingServer};
use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthorizationServer, EndServer};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::net::{
    api, ClientOptions, Deposit, EventLoopServer, ServiceMux, TcpClient, TcpServer,
};
use proxy_aa::proxy::prelude::KeyResolver;
use proxy_aa::proxy::prelude::*;
use proxy_aa::wire::Message;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(10_000))
}

/// Either server flavor; the rest of the demo only needs an address.
enum Server {
    Blocking(TcpServer),
    EventLoop(EventLoopServer),
}

impl Server {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Server::Blocking(s) => s.addr(),
            Server::EventLoop(s) => s.addr(),
        }
    }
}

/// Spawns `mux` on the flavor selected by `--event-loop`.
fn serve<R: KeyResolver + Send + Sync + 'static>(
    mux: ServiceMux<R>,
    workers: usize,
    seed: u64,
    event_loop: bool,
) -> Server {
    let mux = Arc::new(mux);
    if event_loop {
        Server::EventLoop(EventLoopServer::spawn(mux, seed).expect("spawn event-loop server"))
    } else {
        Server::Blocking(TcpServer::spawn(mux, workers, seed).expect("spawn server"))
    }
}

/// Frame sizes for one request/reply pair, as they crossed the socket.
fn wire_line(step: &str, request: &Message, reply_frame_len: usize, rtt_us: u128) {
    println!(
        "  {step}: request {} B on the wire, reply {} B, rtt {} µs",
        request.to_frame(0).len(),
        reply_frame_len,
        rtt_us
    );
}

fn main() {
    let event_loop = std::env::args().any(|a| a == "--event-loop");
    let mut rng = StdRng::seed_from_u64(7);

    // --- Deployment: three servers, each on its own loopback port. ------
    let r_key = SymmetricKey::generate(&mut rng);
    let mut authz = AuthorizationServer::new(
        p("R"),
        GrantAuthority::SharedKey(r_key.clone()),
        MapResolver::new(),
    );
    authz.database_mut(p("S")).set(
        ObjectName::new("X"),
        Acl::new().with(
            AclSubject::Principal(p("C")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );
    let mut end = EndServer::new(
        p("S"),
        MapResolver::new().with(p("R"), GrantorVerifier::SharedKey(r_key)),
    );
    end.acls.set(
        ObjectName::new("X"),
        Acl::new().with(AclSubject::Principal(p("R")), AclRights::all()),
    );
    let carol_key = SigningKey::generate(&mut rng);
    let carol_authority = GrantAuthority::Keypair(carol_key.clone());
    let bank_key = SigningKey::generate(&mut rng);
    let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key));
    bank.register_grantor(
        p("carol"),
        GrantorVerifier::PublicKey(carol_key.verifying_key()),
    );
    bank.open_account("carol", vec![p("carol")]);
    bank.account_mut("carol")
        .unwrap()
        .credit(Currency::new("USD"), 100);
    bank.open_account("shop", vec![p("shop")]);

    let authz_srv = serve(
        ServiceMux::new().with_authz(Arc::new(authz)),
        2,
        1,
        event_loop,
    );
    let end_srv = serve(
        ServiceMux::new().with_end_server(Arc::new(end)),
        2,
        2,
        event_loop,
    );
    let bank_srv = serve(
        ServiceMux::<MapResolver>::new().with_accounting(Arc::new(bank)),
        2,
        3,
        event_loop,
    );
    println!(
        "three {} servers listening on loopback:",
        if event_loop {
            "event-loop (epoll)"
        } else {
            "blocking"
        }
    );
    println!("  authorization server R at {}", authz_srv.addr());
    println!("  end-server            S at {}", end_srv.addr());
    println!("  accounting server  bank at {}\n", bank_srv.addr());

    // --- Step 1 (Fig. 3): C asks R for an authorization proxy. ----------
    let authz_client = TcpClient::new(authz_srv.addr(), ClientOptions::default());
    let query = Message::AuthzQuery {
        client: p("C"),
        presentations: vec![],
        end_server: p("S"),
        operation: Operation::new("read"),
        object: ObjectName::new("X"),
        validity: window(),
        now: Timestamp(1),
    };
    let start = Instant::now();
    let proxy = api::request_authorization(
        &authz_client,
        &p("C"),
        vec![],
        &p("S"),
        &Operation::new("read"),
        &ObjectName::new("X"),
        window(),
        Timestamp(1),
    )
    .expect("authorization granted");
    let reply_len = Message::AuthzGrant {
        proxy: proxy.clone(),
    }
    .to_frame(0)
    .len();
    println!("step 1 — authorization query to R over TCP:");
    wire_line(
        "authz-query",
        &query,
        reply_len,
        start.elapsed().as_micros(),
    );
    println!(
        "  R granted a {}-certificate proxy asserting C may read X at S\n",
        proxy.certs.len()
    );

    // --- Step 2 (Fig. 4): C presents the proxy to S. --------------------
    let end_client = TcpClient::new(end_srv.addr(), ClientOptions::default());
    let presentation = proxy.present_bearer([7u8; 32], &p("S"));
    let request = Message::EndRequest {
        operation: Operation::new("read"),
        object: ObjectName::new("X"),
        authenticated: vec![p("C")],
        presentations: vec![presentation.clone()],
        now: Timestamp(2),
        amounts: vec![],
    };
    let start = Instant::now();
    let (principals, groups) = api::end_request(
        &end_client,
        &Operation::new("read"),
        &ObjectName::new("X"),
        vec![p("C")],
        vec![presentation],
        Timestamp(2),
        vec![],
    )
    .expect("end-server accepts");
    let reply_len = Message::EndDecision {
        principals: principals.clone(),
        groups,
    }
    .to_frame(0)
    .len();
    println!("step 2 — proxy presented to S over TCP:");
    wire_line(
        "end-request",
        &request,
        reply_len,
        start.elapsed().as_micros(),
    );
    println!(
        "  S authorized the read on the authority of {}\n",
        principals
            .iter()
            .map(|pr| pr.as_str().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // --- Step 3 (Fig. 5): carol's check deposited at the bank. ----------
    let bank_client = TcpClient::new(bank_srv.addr(), ClientOptions::default());
    let check = write_check(
        &p("carol"),
        &carol_authority,
        &p("bank"),
        "carol",
        p("shop"),
        1,
        Currency::new("USD"),
        25,
        window(),
        &mut rng,
    );
    let deposit = Message::CheckDeposit {
        check: check.proxy.clone(),
        depositor: p("shop"),
        to_account: "shop".to_string(),
        next_hop: p("bank"),
        now: Timestamp(3),
    };
    let start = Instant::now();
    let outcome = api::deposit_check(
        &bank_client,
        check.proxy,
        &p("shop"),
        "shop",
        &p("bank"),
        Timestamp(3),
    )
    .expect("deposit settles");
    let rtt = start.elapsed().as_micros();
    match outcome {
        Deposit::Settled {
            payor,
            check_no,
            currency,
            amount,
        } => {
            let reply_len = Message::CheckSettled {
                payor: payor.clone(),
                check_no,
                currency,
                amount,
            }
            .to_frame(0)
            .len();
            println!("step 3 — check deposited at the bank over TCP:");
            wire_line("check-deposit", &deposit, reply_len, rtt);
            println!("  settled: {payor} paid {amount} USD on check #{check_no}");
        }
        Deposit::Forwarded { .. } => unreachable!("same-bank deposit settles"),
    }
    println!("\nall three protocol figures completed over real sockets.");
}
