//! §6.1 scenario: public-key proxies across organizations.
//!
//! With public-key cryptography a proxy is verifiable by *anyone* holding
//! the grantor's public key — no prior relationship between grantor and
//! end-server is needed. That is exactly what federation across
//! organizations wants, and exactly why §7.3's `issued-for` restriction
//! matters: otherwise one proxy would be exercisable everywhere. The
//! grantor's key travels as a signed binding from a name server.
//!
//! Run with: `cargo run --example public_key_federation`

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::proxy::nameserver::{CertifiedResolver, NameServer};
use proxy_aa::proxy::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(51);

    // --- A name server both organizations trust. -------------------------
    let ns_key = SigningKey::generate(&mut rng);
    let mut ns = NameServer::new(PrincipalId::new("nameserver"), ns_key);

    // --- Alice works at org A; the archive server runs at org B. --------
    let alice = PrincipalId::new("alice@org-a");
    let archive = PrincipalId::new("archive@org-b");
    let alice_key = SigningKey::generate(&mut rng);
    ns.register(alice.clone(), alice_key.verifying_key());
    println!("name server knows alice@org-a's public key.\n");

    // Alice grants a proxy for the archive server — no shared key, no
    // prior contact with org B at all.
    let proxy = grant(
        &alice,
        &GrantAuthority::Keypair(alice_key),
        RestrictionSet::new()
            .with(Restriction::authorize_op(
                ObjectName::new("dataset-7"),
                Operation::new("fetch"),
            ))
            .with(Restriction::issued_for_one(archive.clone())),
        Validity::new(Timestamp(0), Timestamp(1_000)),
        1,
        &mut rng,
    );
    println!(
        "alice granted a public-key proxy: fetch dataset-7 at {archive} only\n  ({} bytes, Ed25519-signed).\n",
        proxy.certs[0].encoded_len()
    );

    // --- Org B's archive server resolves alice's key via the name server.
    let binding = ns.lookup(&alice, Timestamp(5)).expect("registered");
    let mut resolver = CertifiedResolver::new(ns.verifying_key());
    resolver.set_now(Timestamp(5));
    resolver.install(&binding).expect("binding verifies");
    println!("archive@org-b fetched and verified alice's key binding from the name server.");

    let verifier = Verifier::new(archive.clone(), resolver.clone());
    let mut replay = MemoryReplayGuard::new();
    let pres = proxy.present_bearer([1u8; 32], &archive);
    let ctx = RequestContext::new(
        archive.clone(),
        Operation::new("fetch"),
        ObjectName::new("dataset-7"),
    )
    .at(Timestamp(5));
    let verified = verifier.verify(&pres, &ctx, &mut replay).expect("accepted");
    println!(
        "org B accepted the fetch, acting on {}'s authority.\n",
        verified.grantor
    );

    // --- The same proxy is useless at a third organization. --------------
    let mirror = PrincipalId::new("mirror@org-c");
    let mirror_verifier = Verifier::new(mirror.clone(), resolver);
    let mut ctx_c = ctx.clone();
    ctx_c.server = mirror.clone();
    let pres_c = proxy.present_bearer([2u8; 32], &mirror);
    let denied = mirror_verifier.verify(&pres_c, &ctx_c, &mut replay);
    println!(
        "org C tries to accept the same proxy: {}",
        denied.unwrap_err()
    );

    // --- Revocation at the directory. -------------------------------------
    ns.unregister(&alice);
    println!("\nname server unregistered alice (key revoked).");
    let gone = ns.lookup(&alice, Timestamp(6));
    println!(
        "new servers can no longer resolve her key: lookup = {:?}",
        gone.map(|_| "binding")
    );

    // --- A forged binding is rejected. -------------------------------------
    let mallory_key = SigningKey::generate(&mut rng);
    let mut forged = binding.clone();
    forged.key = mallory_key.verifying_key();
    let mut fresh = CertifiedResolver::new(ns.verifying_key());
    fresh.set_now(Timestamp(5));
    println!(
        "mallory substitutes her key into the binding: {}",
        fresh.install(&forged).unwrap_err()
    );
}
