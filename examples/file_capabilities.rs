//! §3.1 scenario: a capability-based file server.
//!
//! Alice owns files on a file server whose policy is a local ACL. She
//! issues capabilities (restricted bearer proxies) for individual files,
//! passes them around, and finally revokes *all* of them at once by having
//! her own access removed — the revocation model of §3.1.
//!
//! Run with: `cargo run --example file_capabilities`

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::authz::{Acl, AclRights, AclSubject, CapabilityIssuer, EndServer, Request};
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let alice = PrincipalId::new("alice");
    let fs = PrincipalId::new("fileserver");

    // Alice's session key with the file server (via the authentication
    // substrate) lets the server verify proxies she grants.
    let session = SymmetricKey::generate(&mut rng);
    let mut server = EndServer::new(
        fs.clone(),
        MapResolver::new().with(alice.clone(), GrantorVerifier::SharedKey(session.clone())),
    );
    // Local ACL: alice owns her home directory files.
    for file in ["/home/alice/paper.tex", "/home/alice/data.csv"] {
        server.acls.set(
            ObjectName::new(file),
            Acl::new().with(AclSubject::Principal(alice.clone()), AclRights::all()),
        );
    }
    println!("file server ACLs: alice owns 2 files.\n");

    // Alice issues a read capability for paper.tex.
    let mut issuer = CapabilityIssuer::new(alice.clone(), GrantAuthority::SharedKey(session));
    let cap = issuer.issue(
        &fs,
        ObjectName::new("/home/alice/paper.tex"),
        vec![Operation::new("read")],
        Validity::new(Timestamp(0), Timestamp(10_000)),
        &mut rng,
    );
    println!(
        "alice issued a read capability for paper.tex ({} bytes on the wire).",
        cap.encoded_len()
    );

    // Bob uses it — he is nowhere on the ACL.
    let read_req = |pres: Presentation| {
        Request::new(
            Operation::new("read"),
            ObjectName::new("/home/alice/paper.tex"),
            Timestamp(5),
        )
        .authenticated_as(PrincipalId::new("bob"))
        .with_presentation(pres)
    };
    let ok = server.authorize(&read_req(cap.present_bearer([1u8; 32], &fs)));
    println!("bob reads paper.tex with the capability: {}", verdict(&ok));

    // Bob passes it to carol — capabilities are transferable.
    let ok = server.authorize(
        &Request::new(
            Operation::new("read"),
            ObjectName::new("/home/alice/paper.tex"),
            Timestamp(6),
        )
        .authenticated_as(PrincipalId::new("carol"))
        .with_presentation(cap.present_bearer([2u8; 32], &fs)),
    );
    println!("carol reads with the same capability:    {}", verdict(&ok));

    // But it is read-only and file-scoped.
    let ok = server.authorize(
        &Request::new(
            Operation::new("write"),
            ObjectName::new("/home/alice/paper.tex"),
            Timestamp(7),
        )
        .with_presentation(cap.present_bearer([3u8; 32], &fs)),
    );
    println!("carol tries to WRITE:                    {}", verdict(&ok));
    let ok = server.authorize(
        &Request::new(
            Operation::new("read"),
            ObjectName::new("/home/alice/data.csv"),
            Timestamp(8),
        )
        .with_presentation(cap.present_bearer([4u8; 32], &fs)),
    );
    println!("carol tries the OTHER file:              {}", verdict(&ok));

    // Revocation (§3.1): "one can revoke a capability by changing the
    // access rights available to the grantor of the capability."
    server
        .acls
        .acl_mut(ObjectName::new("/home/alice/paper.tex"))
        .remove_principal(&alice);
    println!("\nadmin removed alice from the paper.tex ACL (revocation).");
    let ok = server.authorize(&read_req(cap.present_bearer([5u8; 32], &fs)));
    println!("bob retries the capability:              {}", verdict(&ok));
}

fn verdict<T, E: std::fmt::Display>(r: &Result<T, E>) -> String {
    match r {
        Ok(_) => "ALLOWED".to_string(),
        Err(e) => format!("DENIED ({e})"),
    }
}
