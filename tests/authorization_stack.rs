//! Integration: the distributed authorization stack of §3.
//!
//! A group server, an authorization server, and an end-server compose: the
//! end-server's policy lives on the authorization server, which itself
//! defers membership decisions to the group server. Clients traverse the
//! whole chain with proxies; every administrative change (revocation at
//! any layer) takes effect.

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::authz::{
    Acl, AclRights, AclSubject, AuthorizationServer, AuthzError, EndServer, GroupServer, Request,
};
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(10_000))
}

struct Stack {
    rng: StdRng,
    groups: GroupServer,
    authz: AuthorizationServer<MapResolver>,
    end: EndServer<MapResolver>,
}

fn stack(seed: u64) -> Stack {
    let mut rng = StdRng::seed_from_u64(seed);
    let gs_key = SymmetricKey::generate(&mut rng);
    let r_key = SymmetricKey::generate(&mut rng);

    let groups = GroupServer::new(p("GS"), GrantAuthority::SharedKey(gs_key.clone()));
    groups.add_member("staff", p("bob"));

    let mut authz = AuthorizationServer::new(
        p("R"),
        GrantAuthority::SharedKey(r_key.clone()),
        MapResolver::new().with(p("GS"), GrantorVerifier::SharedKey(gs_key)),
    );
    // Policy on the authorization server: staff may read X at S.
    authz.database_mut(p("S")).set(
        ObjectName::new("X"),
        Acl::new().with(
            AclSubject::Group(GroupName::new(p("GS"), "staff")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );

    // The end-server's local ACL delegates to R (§3.5).
    let mut end = EndServer::new(
        p("S"),
        MapResolver::new().with(p("R"), GrantorVerifier::SharedKey(r_key)),
    );
    end.acls.set(
        ObjectName::new("X"),
        Acl::new().with(AclSubject::Principal(p("R")), AclRights::all()),
    );
    Stack {
        rng,
        groups,
        authz,
        end,
    }
}

fn full_path(stack: &mut Stack, client: &str) -> Result<(), AuthzError> {
    // 1. Membership proxy from the group server.
    let membership =
        stack
            .groups
            .membership_proxy(&p(client), &["staff"], window(), &mut stack.rng)?;
    // 2. Authorization proxy from R, justified by the membership proxy.
    let proxy = stack.authz.request_authorization(
        &p(client),
        &[membership.present_delegate()],
        &p("S"),
        &Operation::new("read"),
        &ObjectName::new("X"),
        window(),
        Timestamp(1),
        &mut stack.rng,
    )?;
    // 3. Present at the end-server.
    let req = Request::new(Operation::new("read"), ObjectName::new("X"), Timestamp(2))
        .authenticated_as(p(client))
        .with_presentation(proxy.present_bearer([1u8; 32], &p("S")));
    stack.end.authorize(&req).map(|_| ())
}

#[test]
fn member_traverses_the_whole_stack() {
    let mut s = stack(1);
    full_path(&mut s, "bob").unwrap();
}

#[test]
fn non_member_is_stopped_at_the_group_server() {
    let mut s = stack(2);
    let err = full_path(&mut s, "carol").unwrap_err();
    assert!(matches!(err, AuthzError::NotAMember { .. }), "{err:?}");
}

#[test]
fn group_removal_revokes_future_authorizations() {
    let mut s = stack(3);
    assert!(full_path(&mut s, "bob").is_ok());
    s.groups.remove_member("staff", &p("bob"));
    let err = full_path(&mut s, "bob").unwrap_err();
    assert!(matches!(err, AuthzError::NotAMember { .. }));
}

#[test]
fn db_edit_on_authorization_server_revokes() {
    let mut s = stack(4);
    assert!(full_path(&mut s, "bob").is_ok());
    // Replace the policy: nobody may read X anymore.
    s.authz
        .database_mut(p("S"))
        .set(ObjectName::new("X"), Acl::new());
    let err = full_path(&mut s, "bob").unwrap_err();
    assert!(matches!(err, AuthzError::NotAuthorized { .. }));
}

#[test]
fn end_server_acl_edit_revokes_the_whole_delegation() {
    // §3.5 in reverse: removing R from the local ACL cuts off every proxy
    // R ever issued.
    let mut s = stack(5);
    assert!(full_path(&mut s, "bob").is_ok());
    s.end
        .acls
        .acl_mut(ObjectName::new("X"))
        .remove_principal(&p("R"));
    let err = full_path(&mut s, "bob").unwrap_err();
    assert!(matches!(err, AuthzError::NotAuthorized { .. }));
}

#[test]
fn authorization_proxy_is_scoped_to_operation_and_server() {
    let mut s = stack(6);
    let membership = s
        .groups
        .membership_proxy(&p("bob"), &["staff"], window(), &mut s.rng)
        .unwrap();
    let proxy = s
        .authz
        .request_authorization(
            &p("bob"),
            &[membership.present_delegate()],
            &p("S"),
            &Operation::new("read"),
            &ObjectName::new("X"),
            window(),
            Timestamp(1),
            &mut s.rng,
        )
        .unwrap();
    // Write is outside the issued proxy.
    let req = Request::new(Operation::new("write"), ObjectName::new("X"), Timestamp(2))
        .authenticated_as(p("bob"))
        .with_presentation(proxy.present_bearer([2u8; 32], &p("S")));
    assert!(s.end.authorize(&req).is_err());
    // And the proxy carries issued-for S: another server must reject it.
    s.end
        .authorize(
            &Request::new(Operation::new("read"), ObjectName::new("X"), Timestamp(2))
                .authenticated_as(p("bob"))
                .with_presentation(proxy.present_bearer([3u8; 32], &p("S"))),
        )
        .expect("the legitimate path must still work");
    assert!(proxy
        .combined_restrictions()
        .iter()
        .any(|r| matches!(r, Restriction::IssuedFor { servers } if servers == &vec![p("S")])));
}

#[test]
fn membership_proxy_not_transferable() {
    let mut s = stack(7);
    let membership = s
        .groups
        .membership_proxy(&p("bob"), &["staff"], window(), &mut s.rng)
        .unwrap();
    // Carol presents bob's membership proxy under her own identity.
    let err = s
        .authz
        .request_authorization(
            &p("carol"),
            &[membership.present_delegate()],
            &p("S"),
            &Operation::new("read"),
            &ObjectName::new("X"),
            window(),
            Timestamp(1),
            &mut s.rng,
        )
        .unwrap_err();
    assert!(matches!(err, AuthzError::Verify(_)), "{err:?}");
}
