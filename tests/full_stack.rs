//! Integration: the full conventional-cryptography stack.
//!
//! Kerberos authentication (AS → TGS → AP) establishes session keys;
//! restricted proxies are granted under those keys; the end-server's
//! authorization engine consumes them. This is the paper's §6.2 deployment
//! exercised end to end across four crates.

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::authz::{Acl, AclRights, AclSubject, EndServer, Request};
use proxy_aa::kerberos::{redeem_tgs_proxy, ApServer, Client, Kdc, SessionResolver};
use proxy_aa::proxy::prelude::*;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

struct World {
    rng: StdRng,
    kdc: Kdc,
    alice: Client,
    fs: ApServer,
}

fn world(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kdc = Kdc::new(&mut rng);
    kdc.max_lifetime = 1_000_000;
    let alice_key = kdc.register(p("alice"), &mut rng);
    let fs_key = kdc.register(p("fs"), &mut rng);
    World {
        rng,
        kdc,
        alice: Client::new(p("alice"), alice_key),
        fs: ApServer::new(p("fs"), fs_key),
    }
}

/// Login, service ticket, and AP exchange: alice has a session at fs.
fn authenticate(w: &mut World, now: u64) -> kerberos_sim::Credentials {
    let tgt = w
        .alice
        .login(&w.kdc, RestrictionSet::new(), 10_000, now, &mut w.rng)
        .expect("login");
    let creds = w
        .alice
        .get_service_ticket(
            &w.kdc,
            &tgt,
            p("fs"),
            RestrictionSet::new(),
            10_000,
            now,
            &mut w.rng,
        )
        .expect("tgs");
    let auth = w.alice.make_authenticator(&creds, now, &mut w.rng);
    w.fs.accept(&creds.ticket_blob, &auth, now).expect("ap");
    creds
}

#[test]
fn kerberos_session_key_verifies_proxies() {
    let mut w = world(1);
    let creds = authenticate(&mut w, 0);

    // Alice grants a capability under her kerberos session key.
    let cap = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(creds.session_key.clone()),
        RestrictionSet::new().with(Restriction::authorize_op(
            ObjectName::new("report"),
            Operation::new("read"),
        )),
        Validity::new(Timestamp(0), Timestamp(5_000)),
        1,
        &mut w.rng,
    );

    // The file server verifies it through its kerberos session registry.
    let verifier = Verifier::new(p("fs"), SessionResolver(&w.fs));
    let ctx = RequestContext::new(p("fs"), Operation::new("read"), ObjectName::new("report"))
        .at(Timestamp(5));
    let mut guard = MemoryReplayGuard::new();
    let pres = cap.present_bearer([7u8; 32], &p("fs"));
    let verified = verifier.verify(&pres, &ctx, &mut guard).expect("verifies");
    assert_eq!(verified.grantor, p("alice"));

    // Without the AP exchange (unknown grantor), verification fails.
    let fresh_fs = ApServer::new(
        p("fs"),
        proxy_crypto::keys::SymmetricKey::generate(&mut w.rng),
    );
    let blind = Verifier::new(p("fs"), SessionResolver(&fresh_fs));
    assert_eq!(
        blind.verify(&pres, &ctx, &mut guard),
        Err(VerifyError::UnknownGrantor(p("alice")))
    );
}

#[test]
fn restricted_login_restricts_everything_downstream() {
    // §6.3: the initial authentication is itself the granting of a proxy —
    // restrictions placed at login propagate into every service ticket.
    let mut w = world(2);
    let only_read = Restriction::Authorized {
        entries: vec![restricted_proxy::restriction::AuthorizedEntry::ops(
            ObjectName::new("report"),
            vec![Operation::new("read")],
        )],
    };
    let tgt = w
        .alice
        .login(
            &w.kdc,
            RestrictionSet::new().with(only_read.clone()),
            10_000,
            0,
            &mut w.rng,
        )
        .expect("login");
    let creds = w
        .alice
        .get_service_ticket(
            &w.kdc,
            &tgt,
            p("fs"),
            RestrictionSet::new(),
            10_000,
            0,
            &mut w.rng,
        )
        .expect("tgs");
    // The TGS carried the login restriction into the service ticket.
    assert!(creds.authdata.iter().any(|r| *r == only_read));
    let auth = w.alice.make_authenticator(&creds, 0, &mut w.rng);
    let accepted = w.fs.accept(&creds.ticket_blob, &auth, 0).expect("ap");
    assert!(accepted.restrictions.iter().any(|r| *r == only_read));
}

#[test]
fn tgs_proxy_lets_grantee_reach_new_servers() {
    // §6.3: a proxy for the ticket-granting service lets the grantee mint
    // per-end-server tickets with identical restrictions.
    let mut w = world(3);
    let mut rng2 = StdRng::seed_from_u64(99);
    let mail_key = w.kdc.register(p("mail"), &mut w.rng);
    let mut mail = ApServer::new(p("mail"), mail_key);

    let tgt = w
        .alice
        .login(&w.kdc, RestrictionSet::new(), 100_000, 0, &mut w.rng)
        .expect("login");
    let restriction = Restriction::authorize_op(ObjectName::new("inbox"), Operation::new("read"));
    let (proxy, proxy_key) = w
        .alice
        .derive_proxy(
            &tgt,
            RestrictionSet::new().with(restriction.clone()),
            Validity::new(Timestamp(0), Timestamp(50_000)),
            0,
            &mut w.rng,
        )
        .expect("proxy");

    // The grantee (a batch job, not alice) redeems it for a mail ticket.
    let creds = redeem_tgs_proxy(
        &w.kdc,
        &proxy,
        &proxy_key,
        p("mail"),
        RestrictionSet::new(),
        10_000,
        10,
        &mut rng2,
    )
    .expect("redeem");
    assert_eq!(creds.service, p("mail"));
    assert!(creds.authdata.iter().any(|r| *r == restriction));

    // The minted ticket works at the mail server — presented by the
    // grantee, who knows the new session key from the TGS reply.
    let auth = Client::new(
        p("alice"),
        proxy_crypto::keys::SymmetricKey::generate(&mut rng2),
    );
    let _ = auth; // the grantee does NOT need alice's long-term key
    let authenticator = kerberos_sim::Authenticator {
        client: p("alice"),
        timestamp: 11,
        subkey: None,
        authdata: RestrictionSet::new(),
        proxy_validity: None,
    }
    .seal(&creds.session_key, &mut rng2);
    let accepted = mail
        .accept(&creds.ticket_blob, &authenticator, 11)
        .expect("ap at mail");
    assert_eq!(accepted.client, p("alice"));
    assert!(accepted.restrictions.iter().any(|r| *r == restriction));
}

#[test]
fn end_server_combines_kerberos_identity_and_proxies() {
    let mut w = world(4);
    let creds = authenticate(&mut w, 0);

    // Build an authz EndServer whose resolver is a snapshot of the
    // kerberos session registry.
    let resolver = MapResolver::new().with(
        p("alice"),
        GrantorVerifier::SharedKey(creds.session_key.clone()),
    );
    let mut end = EndServer::new(p("fs"), resolver);
    end.acls.set(
        ObjectName::new("report"),
        Acl::new().with(AclSubject::Principal(p("alice")), AclRights::all()),
    );

    // Bob presents alice's capability; his own identity comes from his own
    // (hypothetical) kerberos exchange.
    let cap = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(creds.session_key),
        RestrictionSet::new().with(Restriction::authorize_op(
            ObjectName::new("report"),
            Operation::new("read"),
        )),
        Validity::new(Timestamp(0), Timestamp(5_000)),
        1,
        &mut w.rng,
    );
    let req = Request::new(
        Operation::new("read"),
        ObjectName::new("report"),
        Timestamp(4),
    )
    .authenticated_as(p("bob"))
    .with_presentation(cap.present_bearer([1u8; 32], &p("fs")));
    let authorized = end.authorize(&req).expect("capability honored");
    assert!(authorized.claims.principals.contains(&p("alice")));
    assert!(authorized.claims.principals.contains(&p("bob")));
}
