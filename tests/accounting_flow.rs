//! Integration: accounting flows across crates, including balance
//! conservation under many concurrent-ish clearings and quota interplay
//! with authorization.

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::accounting::{write_check, AccountingServer, ClearingHouse};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::netsim::Network;
use proxy_aa::proxy::prelude::*;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn usd() -> Currency {
    Currency::new("USD")
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1_000_000))
}

struct Market {
    rng: StdRng,
    house: ClearingHouse,
    carol_auth: GrantAuthority,
    shop_auth: GrantAuthority,
}

fn market(seed: u64) -> Market {
    let mut rng = StdRng::seed_from_u64(seed);
    let carol_key = SigningKey::generate(&mut rng);
    let shop_key = SigningKey::generate(&mut rng);
    let b1 = SigningKey::generate(&mut rng);
    let b2 = SigningKey::generate(&mut rng);
    let mut bank1 = AccountingServer::new(p("$1"), GrantAuthority::Keypair(b1.clone()));
    bank1.open_account("shop", vec![p("shop")]);
    let mut bank2 = AccountingServer::new(p("$2"), GrantAuthority::Keypair(b2));
    bank2.open_account("carol", vec![p("carol")]);
    bank2.account_mut("carol").unwrap().credit(usd(), 10_000);
    bank2.register_grantor(
        p("carol"),
        GrantorVerifier::PublicKey(carol_key.verifying_key()),
    );
    bank2.register_grantor(
        p("shop"),
        GrantorVerifier::PublicKey(shop_key.verifying_key()),
    );
    bank2.register_grantor(p("$1"), GrantorVerifier::PublicKey(b1.verifying_key()));
    let mut house = ClearingHouse::new();
    house.add_server(bank1);
    house.add_server(bank2);
    Market {
        rng,
        house,
        carol_auth: GrantAuthority::Keypair(carol_key),
        shop_auth: GrantAuthority::Keypair(shop_key),
    }
}

fn total_money(m: &Market) -> u64 {
    let carol = m.house.server(&p("$2")).unwrap().account("carol").unwrap();
    let shop = m.house.server(&p("$1")).unwrap().account("shop").unwrap();
    carol.balance(&usd()) + carol.held(&usd()) + shop.balance(&usd())
}

#[test]
fn money_is_conserved_across_many_clearings() {
    let mut m = market(1);
    let start = total_money(&m);
    let mut cleared = 0u64;
    for check_no in 1..=40u64 {
        let amount = (check_no % 7) * 10 + 5;
        let check = write_check(
            &p("carol"),
            &m.carol_auth,
            &p("$2"),
            "carol",
            p("shop"),
            check_no,
            usd(),
            amount,
            window(),
            &mut m.rng,
        );
        let report = m
            .house
            .deposit_and_clear(
                &check,
                &p("shop"),
                &m.shop_auth,
                &p("$1"),
                "shop",
                Timestamp(check_no),
                &mut m.rng,
                None,
            )
            .expect("clears");
        cleared += report.payment.amount;
    }
    assert_eq!(total_money(&m), start, "conservation");
    let shop = m.house.server(&p("$1")).unwrap().account("shop").unwrap();
    assert_eq!(shop.balance(&usd()), cleared);
}

#[test]
fn check_numbers_are_scoped_per_payor() {
    // Two different payors may use the same check number (§7.7 scopes
    // accept-once per grantor).
    let mut m = market(2);
    let dave_key = SigningKey::generate(&mut m.rng);
    {
        let bank2 = m.house.server_mut(&p("$2")).unwrap();
        bank2.open_account("dave", vec![p("dave")]);
        bank2.account_mut("dave").unwrap().credit(usd(), 100);
        bank2.register_grantor(
            p("dave"),
            GrantorVerifier::PublicKey(dave_key.verifying_key()),
        );
    }
    let c1 = write_check(
        &p("carol"),
        &m.carol_auth,
        &p("$2"),
        "carol",
        p("shop"),
        7,
        usd(),
        10,
        window(),
        &mut m.rng,
    );
    let c2 = write_check(
        &p("dave"),
        &GrantAuthority::Keypair(dave_key),
        &p("$2"),
        "dave",
        p("shop"),
        7,
        usd(),
        10,
        window(),
        &mut m.rng,
    );
    assert!(m
        .house
        .deposit_and_clear(
            &c1,
            &p("shop"),
            &m.shop_auth,
            &p("$1"),
            "shop",
            Timestamp(1),
            &mut m.rng,
            None
        )
        .is_ok());
    assert!(m
        .house
        .deposit_and_clear(
            &c2,
            &p("shop"),
            &m.shop_auth,
            &p("$1"),
            "shop",
            Timestamp(2),
            &mut m.rng,
            None
        )
        .is_ok());
}

#[test]
fn clearing_message_shape_matches_fig5() {
    let mut m = market(3);
    let check = write_check(
        &p("carol"),
        &m.carol_auth,
        &p("$2"),
        "carol",
        p("shop"),
        1,
        usd(),
        10,
        window(),
        &mut m.rng,
    );
    let mut net = Network::new(0);
    net.set_default_latency(10);
    let report = m
        .house
        .deposit_and_clear(
            &check,
            &p("shop"),
            &m.shop_auth,
            &p("$1"),
            "shop",
            Timestamp(1),
            &mut m.rng,
            Some(&mut net),
        )
        .expect("clears");
    // Fig. 5: deposit (S→$1), endorsement E2 ($1→$2), payment back.
    assert_eq!(report.messages, 3);
    assert_eq!(net.now(), 30, "3 messages x 10 ticks");
}

#[test]
fn quota_allocate_release_cycle() {
    // §4: quotas are transfers out of and back into an account.
    let mut m = market(4);
    let bank2 = m.house.server_mut(&p("$2")).unwrap();
    let blocks = Currency::new("disk-blocks");
    bank2
        .account_mut("carol")
        .unwrap()
        .credit(blocks.clone(), 100);
    let mut acct = bank2.account_mut("carol").unwrap();
    acct.allocate(blocks.clone(), 80).unwrap();
    assert_eq!(acct.balance(&blocks), 20);
    // Cannot allocate past the quota.
    assert!(acct.allocate(blocks.clone(), 21).is_err());
    acct.release(&blocks, 80).unwrap();
    assert_eq!(acct.balance(&blocks), 100);
}

#[test]
fn quota_restriction_limits_spend_per_presentation() {
    // A proxy carrying `quota` bounds the resources a single request may
    // claim — checked by the verifier before any account is touched.
    let mut m = market(5);
    let proxy = grant(
        &p("carol"),
        &m.carol_auth,
        RestrictionSet::new().with(Restriction::Quota {
            currency: usd(),
            limit: 50,
        }),
        window(),
        1,
        &mut m.rng,
    );
    let resolver = match &m.carol_auth {
        GrantAuthority::Keypair(k) => {
            MapResolver::new().with(p("carol"), GrantorVerifier::PublicKey(k.verifying_key()))
        }
        GrantAuthority::SharedKey(_) => unreachable!(),
    };
    let verifier = Verifier::new(p("printer"), resolver);
    let mut guard = MemoryReplayGuard::new();
    let ok_ctx = RequestContext::new(
        p("printer"),
        Operation::new("print"),
        ObjectName::new("job"),
    )
    .at(Timestamp(1))
    .consuming(usd(), 50);
    assert!(verifier
        .verify(
            &proxy.present_bearer([1u8; 32], &p("printer")),
            &ok_ctx,
            &mut guard
        )
        .is_ok());
    let over_ctx = RequestContext::new(
        p("printer"),
        Operation::new("print"),
        ObjectName::new("job"),
    )
    .at(Timestamp(1))
    .consuming(usd(), 51);
    assert!(matches!(
        verifier.verify(
            &proxy.present_bearer([2u8; 32], &p("printer")),
            &over_ctx,
            &mut guard
        ),
        Err(VerifyError::Denied(Denial::QuotaExceeded { .. }))
    ));
}

#[test]
fn bounced_check_reverses_pending_credit_only() {
    let mut m = market(6);
    // Drain carol first so the check bounces.
    m.house
        .server_mut(&p("$2"))
        .unwrap()
        .account_mut("carol")
        .unwrap()
        .debit(&usd(), 10_000)
        .unwrap();
    let check = write_check(
        &p("carol"),
        &m.carol_auth,
        &p("$2"),
        "carol",
        p("shop"),
        9,
        usd(),
        100,
        window(),
        &mut m.rng,
    );
    let err = m
        .house
        .deposit_and_clear(
            &check,
            &p("shop"),
            &m.shop_auth,
            &p("$1"),
            "shop",
            Timestamp(1),
            &mut m.rng,
            None,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        proxy_aa::accounting::AcctError::InsufficientFunds { .. }
    ));
    let bank1 = m.house.server_mut(&p("$1")).unwrap();
    assert_eq!(
        bank1.uncollected_total("shop", &usd()),
        100,
        "pending, not final"
    );
    assert!(bank1.bounce(&p("carol"), 9).unwrap());
    assert_eq!(bank1.uncollected_total("shop", &usd()), 0);
    assert_eq!(
        bank1.account("shop").unwrap().balance(&usd()),
        0,
        "never credited"
    );
}
