//! Pipelined wire-path invariants over real TCP sockets: correlation of
//! out-of-order replies, per-request denial isolation, the accept-once
//! replay cache under deep pipelines and racing pipelined clients, the
//! fail-closed treatment of unknown restriction tags arriving mid-stream,
//! and pooled-connection recovery after server disconnects (including a
//! disconnect that lands mid-frame).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthorizationServer, EndServer};
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::net::{
    ClientOptions, NetError, RetryPolicy, ServiceMux, TcpClient, TcpServer, Transport,
};
use proxy_aa::proxy::prelude::*;
use proxy_aa::wire::frame::{read_frame, write_frame};
use proxy_aa::wire::Message;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1000))
}

/// An end-server "S" trusting grantor "alice" (shared key), with an ACL
/// granting alice reads on "X". Returns the mux and alice's authority.
fn end_world(seed: u64) -> (ServiceMux<MapResolver>, GrantAuthority) {
    let mut rng = StdRng::seed_from_u64(seed);
    let key = SymmetricKey::generate(&mut rng);
    let mut end = EndServer::new(
        p("S"),
        MapResolver::new().with(p("alice"), GrantorVerifier::SharedKey(key.clone())),
    );
    end.acls.set(
        ObjectName::new("X"),
        Acl::new().with(
            AclSubject::Principal(p("alice")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );
    (
        ServiceMux::new().with_end_server(Arc::new(end)),
        GrantAuthority::SharedKey(key),
    )
}

/// An EndRequest presenting `pres` for a read of "X".
fn read_x(pres: Presentation) -> Message {
    Message::EndRequest {
        operation: Operation::new("read"),
        object: ObjectName::new("X"),
        authenticated: vec![],
        presentations: vec![pres],
        now: Timestamp(1),
        amounts: vec![],
    }
}

/// Replies are matched to requests by correlation id, so a batch mixing
/// grants and denials must come back with each verdict in its own slot.
#[test]
fn pipelined_replies_correlate_and_isolate_denials() {
    let mut rng = StdRng::seed_from_u64(1);
    let key = SymmetricKey::generate(&mut rng);
    let mut authz =
        AuthorizationServer::new(p("R"), GrantAuthority::SharedKey(key), MapResolver::new());
    authz.database_mut(p("S")).set(
        ObjectName::new("X"),
        Acl::new().with(
            AclSubject::Principal(p("C")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );
    let mux = ServiceMux::new().with_authz(Arc::new(authz));
    let srv = TcpServer::spawn(Arc::new(mux), 2, 1).expect("authz server");

    let query = |op: &str| Message::AuthzQuery {
        client: p("C"),
        presentations: vec![],
        end_server: p("S"),
        operation: Operation::new(op),
        object: ObjectName::new("X"),
        validity: window(),
        now: Timestamp(1),
    };
    let requests: Vec<Message> = (0..32)
        .map(|i| query(if i % 2 == 0 { "read" } else { "write" }))
        .collect();
    let client = TcpClient::new(srv.addr(), ClientOptions::default());
    let results = client.call_pipelined(&requests, 8);
    assert_eq!(results.len(), 32);
    for (i, result) in results.iter().enumerate() {
        if i % 2 == 0 {
            assert!(
                matches!(result, Ok(Message::AuthzGrant { .. })),
                "read {i} must be granted: {result:?}"
            );
        } else {
            assert!(
                matches!(result, Err(NetError::Remote { .. })),
                "write {i} must be denied without disturbing the pipeline: {result:?}"
            );
        }
    }
}

/// §7.7 over the wire: one accept-once proxy presented 24 times by two
/// racing pipelined clients is honored exactly once — the server's
/// lock-striped replay cache is the single linearization point even when
/// each connection keeps many requests in flight.
#[test]
fn accept_once_is_honored_exactly_once_across_racing_pipelines() {
    let (mux, authority) = end_world(2);
    let srv = TcpServer::spawn(Arc::new(mux), 4, 2).expect("end server");
    let mut rng = StdRng::seed_from_u64(3);
    let proxy = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new().with(Restriction::AcceptOnce { id: 7 }),
        window(),
        1,
        &mut rng,
    );

    let accepted: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2u8)
            .map(|t| {
                let (srv, proxy) = (&srv, &proxy);
                s.spawn(move || {
                    let requests: Vec<Message> = (0..12u8)
                        .map(|i| read_x(proxy.present_bearer([t * 12 + i + 1; 32], &p("S"))))
                        .collect();
                    let client = TcpClient::new(srv.addr(), ClientOptions::default());
                    client
                        .call_pipelined(&requests, 8)
                        .iter()
                        .filter(|r| r.is_ok())
                        .count()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("presenter"))
            .sum()
    });
    assert_eq!(
        accepted, 1,
        "accept-once honored exactly once under pipelined racing"
    );
}

/// Distinct accept-once ids in one deep pipeline all clear: the replay
/// cache rejects repeats, not concurrency.
#[test]
fn distinct_accept_once_ids_all_clear_one_deep_pipeline() {
    let (mux, authority) = end_world(4);
    let srv = TcpServer::spawn(Arc::new(mux), 2, 3).expect("end server");
    let mut rng = StdRng::seed_from_u64(5);
    let requests: Vec<Message> = (0..16u64)
        .map(|i| {
            let proxy = grant(
                &p("alice"),
                &authority,
                RestrictionSet::new().with(Restriction::AcceptOnce { id: i }),
                window(),
                i,
                &mut rng,
            );
            read_x(proxy.present_bearer([i as u8 + 1; 32], &p("S")))
        })
        .collect();
    let client = TcpClient::new(srv.addr(), ClientOptions::default());
    let results = client.call_pipelined(&requests, 16);
    assert!(
        results.iter().all(Result::is_ok),
        "every distinct accept-once id must clear: {results:?}"
    );
}

/// Fail-closed mid-pipeline: a frame whose certificate carries an
/// unknown restriction tag (a restriction this implementation cannot
/// interpret) is denied with a typed error, while well-formed frames
/// before and after it on the same connection are answered normally.
#[test]
fn unknown_restriction_tag_denies_only_its_own_request_mid_pipeline() {
    let (mux, authority) = end_world(6);
    let srv = TcpServer::spawn(Arc::new(mux), 2, 4).expect("end server");
    let mut rng = StdRng::seed_from_u64(7);

    let mut bearer = |serial: u64, nonce: u8| {
        let proxy = grant(
            &p("alice"),
            &authority,
            RestrictionSet::new(),
            window(),
            serial,
            &mut rng,
        );
        read_x(proxy.present_bearer([nonce; 32], &p("S")))
    };
    let good_before = bearer(1, 1);
    let good_after = bearer(2, 2);

    // A marker accept-once id makes the restriction's encoded bytes
    // recognizable: tag 7 followed by eight 0x5A bytes. Rewriting the
    // tag to 99 yields a syntactically intact frame (the CRC is computed
    // over the mutated body) whose restriction set no longer decodes.
    let marked = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new().with(Restriction::AcceptOnce {
            id: 0x5A5A_5A5A_5A5A_5A5A,
        }),
        window(),
        3,
        &mut rng,
    );
    let hostile = read_x(marked.present_bearer([3; 32], &p("S")));
    let mut body = hostile.encode_body();
    let pattern: [u8; 9] = [7, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A, 0x5A];
    let pos = body
        .windows(pattern.len())
        .position(|w| w == pattern)
        .expect("marker restriction bytes present in encoded request");
    body[pos] = 99;

    let mut stream = TcpStream::connect(srv.addr()).expect("connect");
    write_frame(
        &mut stream,
        good_before.msg_type(),
        1,
        &good_before.encode_body(),
    )
    .expect("send frame 1");
    write_frame(&mut stream, hostile.msg_type(), 2, &body).expect("send frame 2");
    write_frame(
        &mut stream,
        good_after.msg_type(),
        3,
        &good_after.encode_body(),
    )
    .expect("send frame 3");

    for _ in 0..3 {
        let (header, reply_body) = read_frame(&mut stream).expect("read reply");
        let reply = Message::decode_body(header.msg_type, &reply_body).expect("decode reply");
        match header.request_id {
            1 | 3 => assert!(
                matches!(reply, Message::EndDecision { .. }),
                "well-formed request {} must be answered: {reply:?}",
                header.request_id
            ),
            2 => assert!(
                matches!(reply, Message::Error { .. }),
                "unknown restriction must be denied: {reply:?}"
            ),
            other => panic!("reply to unsent request id {other}"),
        }
    }
}

/// How one accepted connection of the scripted flaky server behaves.
enum Behavior {
    /// Answer `n` requests, then close the connection.
    Serve(usize),
    /// Answer one request; on the next, send half a reply frame and
    /// close mid-frame.
    ThenPartial,
    /// Answer requests until the client goes away.
    Tail,
}

/// Answers one framed request with an empty `EndDecision` echoing the
/// request's correlation id. Returns false once the peer is gone.
fn serve_one(stream: &mut TcpStream) -> bool {
    use std::io::Write;
    let Ok((header, _body)) = read_frame(stream) else {
        return false;
    };
    let reply = Message::EndDecision {
        principals: vec![],
        groups: vec![],
    };
    let mut out = Vec::new();
    reply.encode_frame_into(&mut out, header.request_id);
    stream.write_all(&out).is_ok()
}

/// A protocol-speaking server that follows `script`, one entry per
/// accepted connection — the controlled way to close connections under
/// the client at precise points.
fn flaky_server(script: Vec<Behavior>) -> (SocketAddr, JoinHandle<()>) {
    use std::io::Write;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || {
        for behavior in script {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            match behavior {
                Behavior::Serve(n) => {
                    for _ in 0..n {
                        if !serve_one(&mut stream) {
                            break;
                        }
                    }
                }
                Behavior::ThenPartial => {
                    serve_one(&mut stream);
                    if let Ok((header, _)) = read_frame(&mut stream) {
                        let reply = Message::EndDecision {
                            principals: vec![],
                            groups: vec![],
                        };
                        let mut out = Vec::new();
                        reply.encode_frame_into(&mut out, header.request_id);
                        let _ = stream.write_all(&out[..out.len() / 2]);
                    }
                }
                Behavior::Tail => while serve_one(&mut stream) {},
            }
        }
    });
    (addr, handle)
}

fn no_retry_client(addr: SocketAddr) -> TcpClient {
    TcpClient::new(
        addr,
        ClientOptions {
            retry: RetryPolicy::none(),
            ..ClientOptions::default()
        },
    )
}

fn ping() -> Message {
    Message::EndRequest {
        operation: Operation::new("read"),
        object: ObjectName::new("X"),
        authenticated: vec![],
        presentations: vec![],
        now: Timestamp(1),
        amounts: vec![],
    }
}

/// A pooled connection the server closed while it sat idle is discarded
/// and redialed transparently — with the retry budget at zero, so the
/// recovery is the pool's, not the retry loop's.
#[test]
fn stale_pooled_connection_is_discarded_and_redialed() {
    let (addr, server) = flaky_server(vec![Behavior::Serve(1), Behavior::Tail]);
    let client = no_retry_client(addr);
    assert!(client.call(&ping()).is_ok(), "first call on a fresh dial");
    // The server has closed the pooled connection; the next call must
    // notice, discard it, and answer over a fresh dial.
    assert!(
        client.call(&ping()).is_ok(),
        "stale pooled connection must be replaced transparently"
    );
    assert!(client.call(&ping()).is_ok(), "the fresh connection pools");
    drop(client);
    server.join().expect("server thread");
}

/// A disconnect landing mid-frame (half a reply on the wire) must not
/// confuse the client: the dead connection is discarded and the request
/// completes over a fresh dial, again with no retry budget.
#[test]
fn mid_frame_disconnect_discards_the_pooled_connection() {
    let (addr, server) = flaky_server(vec![Behavior::ThenPartial, Behavior::Tail]);
    let client = no_retry_client(addr);
    assert!(client.call(&ping()).is_ok(), "first call on a fresh dial");
    assert!(
        client.call(&ping()).is_ok(),
        "mid-frame disconnect must be recovered on a fresh dial"
    );
    assert_eq!(
        client.pooled_connections(),
        1,
        "dead socket never re-pooled"
    );
    drop(client);
    server.join().expect("server thread");
}

/// A whole pipelined batch landing on a stale pooled connection restarts
/// transparently on a fresh dial — no reply was received, so no request
/// can have been executed twice.
#[test]
fn pipelined_batch_recovers_from_a_stale_pooled_connection() {
    let (addr, server) = flaky_server(vec![Behavior::Serve(4), Behavior::Tail]);
    let client = no_retry_client(addr);
    let batch: Vec<Message> = (0..4).map(|_| ping()).collect();
    let first = client.call_pipelined(&batch, 2);
    assert!(first.iter().all(Result::is_ok), "fresh pipeline: {first:?}");
    // The server closed the connection after the fourth reply.
    let second = client.call_pipelined(&batch, 4);
    assert!(
        second.iter().all(Result::is_ok),
        "stale pooled pipeline must restart on a fresh dial: {second:?}"
    );
    drop(client);
    server.join().expect("server thread");
}

/// A **server-initiated** close — the event-loop server's idle reaper —
/// must surface to a pooled client as an ordinary stale connection:
/// discarded on the next call and redialed transparently, with the retry
/// budget at zero. This is the contract that lets the server reap
/// abandoned sockets without clients ever observing an error.
#[test]
fn server_side_idle_reap_surfaces_as_clean_redial() {
    let (mux, authority) = end_world(9);
    let srv = proxy_aa::net::EventLoopServer::spawn_with(
        Arc::new(mux),
        proxy_aa::net::EventLoopOptions {
            idle_timeout: std::time::Duration::from_millis(100),
            tick: std::time::Duration::from_millis(10),
            ..proxy_aa::net::EventLoopOptions::default()
        },
        9,
    )
    .expect("event-loop server");
    let mut rng = StdRng::seed_from_u64(9);
    let proxy = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new(),
        window(),
        1,
        &mut rng,
    );
    let client = no_retry_client(srv.addr());
    let first = client.call(&read_x(proxy.present_bearer([1u8; 32], &p("S"))));
    assert!(first.is_ok(), "first call on a fresh dial: {first:?}");
    assert_eq!(client.pooled_connections(), 1, "connection pooled");

    // Sit idle past the server's reap horizon (sweeps run at timeout/4).
    std::thread::sleep(std::time::Duration::from_millis(400));

    // The pooled socket is now dead server-side; the next call must
    // notice, discard it, and answer over a fresh dial — no error, no
    // retry budget consumed.
    let second = client.call(&read_x(proxy.present_bearer([2u8; 32], &p("S"))));
    assert!(
        second.is_ok(),
        "reaped pooled connection must be replaced transparently: {second:?}"
    );

    // And a pipelined batch after another reap recovers the same way.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let batch: Vec<Message> = (3..7u8)
        .map(|i| read_x(proxy.present_bearer([i; 32], &p("S"))))
        .collect();
    let results = client.call_pipelined(&batch, 4);
    assert!(
        results.iter().all(Result::is_ok),
        "pipelined batch after a server-side reap must restart cleanly: {results:?}"
    );
}
