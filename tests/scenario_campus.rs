//! A randomized campus-scale scenario: many users, a group server, an
//! authorization server, a file server, and two accounting servers, driven
//! by a seeded stream of operations with a policy oracle.
//!
//! The oracle independently decides what *should* be allowed; the system
//! must agree on every operation. Money conservation is asserted after
//! every payment.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use proxy_aa::accounting::{write_check, AccountingServer, ClearingHouse};
use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthorizationServer, EndServer, Request};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

const USERS: [&str; 6] = ["alice", "bob", "carol", "dave", "erin", "frank"];
const STAFF: [&str; 3] = ["alice", "bob", "carol"];

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn usd() -> Currency {
    Currency::new("USD")
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1_000_000))
}

struct Campus {
    rng: StdRng,
    groups: proxy_aa::authz::GroupServer,
    authz: AuthorizationServer<MapResolver>,
    fileserver: EndServer<MapResolver>,
    house: ClearingHouse,
    user_auths: Vec<(PrincipalId, GrantAuthority)>,
}

fn build(seed: u64) -> Campus {
    let mut rng = StdRng::seed_from_u64(seed);
    let gs_key = SymmetricKey::generate(&mut rng);
    let r_key = SymmetricKey::generate(&mut rng);

    let groups =
        proxy_aa::authz::GroupServer::new(p("GS"), GrantAuthority::SharedKey(gs_key.clone()));
    for member in STAFF {
        groups.add_member("staff", p(member));
    }

    let mut authz = AuthorizationServer::new(
        p("R"),
        GrantAuthority::SharedKey(r_key.clone()),
        MapResolver::new().with(p("GS"), GrantorVerifier::SharedKey(gs_key)),
    );
    // Policy: staff may read the course notes at the file server.
    authz.database_mut(p("FS")).set(
        ObjectName::new("course-notes"),
        Acl::new().with(
            AclSubject::Group(GroupName::new(p("GS"), "staff")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );

    let mut fileserver = EndServer::new(
        p("FS"),
        MapResolver::new().with(p("R"), GrantorVerifier::SharedKey(r_key)),
    );
    fileserver.acls.set(
        ObjectName::new("course-notes"),
        Acl::new().with(AclSubject::Principal(p("R")), AclRights::all()),
    );

    // Accounting: campus bank (users) + bookstore bank.
    let mut user_auths = Vec::new();
    let mut campus_bank = AccountingServer::new(
        p("$campus"),
        GrantAuthority::Keypair(SigningKey::generate(&mut rng)),
    );
    let bookstore_bank_key = SigningKey::generate(&mut rng);
    let mut bookstore_bank = AccountingServer::new(
        p("$bookstore"),
        GrantAuthority::Keypair(bookstore_bank_key.clone()),
    );
    bookstore_bank.open_account("bookstore", vec![p("bookstore")]);
    let bookstore_key = SigningKey::generate(&mut rng);
    for user in USERS {
        let key = SigningKey::generate(&mut rng);
        campus_bank.open_account(user, vec![p(user)]);
        campus_bank.account_mut(user).unwrap().credit(usd(), 1_000);
        campus_bank.register_grantor(p(user), GrantorVerifier::PublicKey(key.verifying_key()));
        user_auths.push((p(user), GrantAuthority::Keypair(key)));
    }
    // $campus must verify the depositor's (bookstore) and the clearing
    // bank's ($bookstore) endorsements when checks come home.
    campus_bank.register_grantor(
        p("bookstore"),
        GrantorVerifier::PublicKey(bookstore_key.verifying_key()),
    );
    campus_bank.register_grantor(
        p("$bookstore"),
        GrantorVerifier::PublicKey(bookstore_bank_key.verifying_key()),
    );
    user_auths.push((p("bookstore"), GrantAuthority::Keypair(bookstore_key)));
    let mut house = ClearingHouse::new();
    house.add_server(campus_bank);
    house.add_server(bookstore_bank);
    Campus {
        rng,
        groups,
        authz,
        fileserver,
        house,
        user_auths,
    }
}

fn authority_of<'a>(campus: &'a Campus, who: &PrincipalId) -> &'a GrantAuthority {
    &campus
        .user_auths
        .iter()
        .find(|(name, _)| name == who)
        .expect("known principal")
        .1
}

/// Drives a read attempt through group server → authz server → file
/// server; returns whether it was allowed.
fn attempt_read(campus: &mut Campus, user: &str) -> bool {
    let Ok(membership) =
        campus
            .groups
            .membership_proxy(&p(user), &["staff"], window(), &mut campus.rng)
    else {
        return false;
    };
    let Ok(proxy) = campus.authz.request_authorization(
        &p(user),
        &[membership.present_delegate()],
        &p("FS"),
        &Operation::new("read"),
        &ObjectName::new("course-notes"),
        window(),
        Timestamp(1),
        &mut campus.rng,
    ) else {
        return false;
    };
    let req = Request::new(
        Operation::new("read"),
        ObjectName::new("course-notes"),
        Timestamp(2),
    )
    .authenticated_as(p(user))
    .with_presentation(proxy.present_bearer([7u8; 32], &p("FS")));
    campus.fileserver.authorize(&req).is_ok()
}

fn total_money(campus: &Campus) -> u64 {
    let campus_bank = campus.house.server(&p("$campus")).unwrap();
    let mut total: u64 = USERS
        .iter()
        .map(|u| {
            let a = campus_bank.account(u).unwrap();
            a.balance(&usd()) + a.held(&usd())
        })
        .sum();
    total += campus
        .house
        .server(&p("$bookstore"))
        .unwrap()
        .account("bookstore")
        .unwrap()
        .balance(&usd());
    total
}

#[test]
fn randomized_campus_scenario_agrees_with_oracle() {
    for seed in [1u64, 2, 3] {
        let mut campus = build(seed);
        let staff: HashSet<&str> = STAFF.into_iter().collect();
        let start_money = total_money(&campus);
        let mut spent_per_user = vec![0u64; USERS.len()];
        let mut check_no = 0u64;

        for step in 0..60 {
            let user_idx = campus.rng.gen_range(0..USERS.len());
            let user = USERS[user_idx];
            match campus.rng.gen_range(0..3) {
                // Read attempt: oracle = staff membership.
                0 => {
                    let allowed = attempt_read(&mut campus, user);
                    assert_eq!(
                        allowed,
                        staff.contains(user),
                        "seed {seed} step {step}: {user} read oracle mismatch"
                    );
                }
                // Purchase: oracle = balance covers the price.
                1 => {
                    check_no += 1;
                    let price = campus.rng.gen_range(1..400);
                    let authority = authority_of(&campus, &p(user)).clone();
                    let check = write_check(
                        &p(user),
                        &authority,
                        &p("$campus"),
                        user,
                        p("bookstore"),
                        check_no,
                        usd(),
                        price,
                        window(),
                        &mut campus.rng,
                    );
                    let bookstore_authority = authority_of(&campus, &p("bookstore")).clone();
                    let result = campus.house.deposit_and_clear(
                        &check,
                        &p("bookstore"),
                        &bookstore_authority,
                        &p("$bookstore"),
                        "bookstore",
                        Timestamp(step),
                        &mut campus.rng,
                        None,
                    );
                    let can_afford = 1_000 - spent_per_user[user_idx] >= price;
                    assert_eq!(
                        result.is_ok(),
                        can_afford,
                        "seed {seed} step {step}: {user} purchase oracle mismatch ({result:?})"
                    );
                    if result.is_ok() {
                        spent_per_user[user_idx] += price;
                    } else {
                        // Reverse the pending credit, as the out-of-band
                        // bounce procedure would.
                        campus
                            .house
                            .server_mut(&p("$bookstore"))
                            .unwrap()
                            .bounce(&p(user), check_no)
                            .unwrap();
                    }
                    assert_eq!(total_money(&campus), start_money, "conservation");
                }
                // Group churn: revoke or restore a user's staff membership
                // and confirm reads track it instantly.
                _ => {
                    if staff.contains(user) {
                        campus.groups.remove_member("staff", &p(user));
                        assert!(!attempt_read(&mut campus, user));
                        campus.groups.add_member("staff", p(user));
                        assert!(attempt_read(&mut campus, user));
                    }
                }
            }
        }
    }
}

#[test]
fn cross_bank_purchase_settles_end_to_end() {
    let mut campus = build(9);
    let authority = authority_of(&campus, &p("alice")).clone();
    let bookstore_authority = authority_of(&campus, &p("bookstore")).clone();
    let check = write_check(
        &p("alice"),
        &authority,
        &p("$campus"),
        "alice",
        p("bookstore"),
        500,
        usd(),
        10,
        window(),
        &mut campus.rng,
    );
    let report = campus
        .house
        .deposit_and_clear(
            &check,
            &p("bookstore"),
            &bookstore_authority,
            &p("$bookstore"),
            "bookstore",
            Timestamp(1),
            &mut campus.rng,
            None,
        )
        .expect("clears across banks");
    assert_eq!(report.payment.amount, 10);
    assert_eq!(
        campus
            .house
            .server(&p("$bookstore"))
            .unwrap()
            .account("bookstore")
            .unwrap()
            .balance(&usd()),
        10
    );
}
