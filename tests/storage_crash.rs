//! Crash-injection and corruption tests for the durable accounting
//! path (DESIGN.md §15): kills in the window between the WAL append and
//! the client reply, torn log tails, flipped bits, and multi-restart
//! money conservation — plus revocation/membership mirrors resuming
//! their epochs from the artifact store with zero issuer round trips.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::accounting::{write_check, AccountingServer, AcctError, Check, DepositOutcome};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::proxy::prelude::*;
use proxy_aa::storage::{CorruptKind, FsyncMode, Storage, StorageError, WalOptions, WalStorage};

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn usd() -> Currency {
    Currency::new("USD")
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1_000_000))
}

/// A unique scratch directory per test invocation; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "proxy-aa-crash-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// No-fsync options: these tests exercise ordering and recovery, not
/// the platter, and page-cache durability keeps them fast.
fn fast() -> WalOptions {
    WalOptions {
        fsync: FsyncMode::NoFsync,
        ..WalOptions::default()
    }
}

/// (Re)opens the bank on `dir`: deterministic keys, carol's and the
/// shop's accounts, 500 USD initial float credited only on first boot.
fn boot(dir: &PathBuf) -> (AccountingServer, GrantAuthority, StdRng) {
    let store = Arc::new(WalStorage::open(dir, fast()).expect("open wal"));
    boot_on(store)
}

fn boot_on(store: Arc<WalStorage>) -> (AccountingServer, GrantAuthority, StdRng) {
    let mut rng = StdRng::seed_from_u64(1);
    let bank_key = SigningKey::generate(&mut rng);
    let carol_key = SigningKey::generate(&mut rng);
    let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key))
        .with_storage(store as Arc<dyn Storage>)
        .expect("recovery");
    bank.register_grantor(
        p("carol"),
        GrantorVerifier::PublicKey(carol_key.verifying_key()),
    );
    if bank.account("carol-acct").is_none() {
        bank.open_account("carol-acct", vec![p("carol")]);
        bank.open_account("shop-acct", vec![p("shop")]);
        bank.account_mut("carol-acct").unwrap().credit(usd(), 500);
    }
    (bank, GrantAuthority::Keypair(carol_key), rng)
}

fn carol_check(auth: &GrantAuthority, rng: &mut StdRng, no: u64, amount: u64) -> Check {
    write_check(
        &p("carol"),
        auth,
        &p("bank"),
        "carol-acct",
        p("shop"),
        no,
        usd(),
        amount,
        window(),
        rng,
    )
}

fn total_usd(bank: &AccountingServer) -> u64 {
    ["carol-acct", "shop-acct"]
        .iter()
        .filter_map(|a| bank.account(a))
        .map(|a| a.balance(&usd()) + a.held(&usd()))
        .sum::<u64>()
        + bank.uncollected_total("shop-acct", &usd())
}

#[test]
fn crash_between_append_and_reply_is_exactly_once() {
    let dir = Scratch::new("append-reply");
    let store = Arc::new(WalStorage::open(&dir.0, fast()).expect("open wal"));
    let (bank, auth, mut rng) = boot_on(Arc::clone(&store));
    let check = carol_check(&auth, &mut rng, 1, 100);

    // The settle record reaches the log, then the server dies before
    // any reply: the client sees an error, not an acknowledgement.
    store.crash_after_appends(1);
    let err = bank
        .deposit(
            &check,
            &p("shop"),
            "shop-acct",
            p("bank"),
            Timestamp(1),
            &mut rng,
        )
        .unwrap_err();
    assert!(matches!(err, AcctError::Storage(_)), "got {err:?}");
    drop(bank);
    drop(store);

    // Recovery replays the durable settle exactly once...
    let (bank, _auth, _) = boot(&dir.0);
    assert_eq!(bank.account("carol-acct").unwrap().balance(&usd()), 400);
    assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 100);
    assert_eq!(total_usd(&bank), 500, "conservation");

    // ...and the client's retry of the unacknowledged deposit is a
    // replay of a spent check number, not a second credit.
    let mut rng = StdRng::seed_from_u64(9);
    let err = bank
        .deposit(
            &check,
            &p("shop"),
            "shop-acct",
            p("bank"),
            Timestamp(2),
            &mut rng,
        )
        .unwrap_err();
    assert!(matches!(err, AcctError::Verify(_)), "got {err:?}");
    assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 100);
}

#[test]
fn crash_before_append_loses_nothing_and_retry_succeeds() {
    let dir = Scratch::new("before-append");
    let store = Arc::new(WalStorage::open(&dir.0, fast()).expect("open wal"));
    let (bank, auth, mut rng) = boot_on(Arc::clone(&store));
    let check = carol_check(&auth, &mut rng, 1, 100);

    // Death on the other side of the window: the record never reached
    // the log, so recovery must show the deposit never happened.
    store.crash_before_appends(1);
    let err = bank
        .deposit(
            &check,
            &p("shop"),
            "shop-acct",
            p("bank"),
            Timestamp(1),
            &mut rng,
        )
        .unwrap_err();
    assert!(matches!(err, AcctError::Storage(_)), "got {err:?}");
    drop(bank);
    drop(store);

    let (bank, _auth, _) = boot(&dir.0);
    assert_eq!(bank.account("carol-acct").unwrap().balance(&usd()), 500);
    assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 0);

    // Unlike the post-append crash, the retry now goes through: no
    // durable replay mark exists because no money durably moved.
    let mut rng = StdRng::seed_from_u64(9);
    let outcome = bank
        .deposit(
            &check,
            &p("shop"),
            "shop-acct",
            p("bank"),
            Timestamp(2),
            &mut rng,
        )
        .unwrap();
    assert!(matches!(outcome, DepositOutcome::Settled(_)));
    assert_eq!(total_usd(&bank), 500, "conservation");
}

#[test]
fn torn_tail_is_truncated_and_the_valid_prefix_replays() {
    let dir = Scratch::new("torn-tail");
    {
        let (bank, auth, mut rng) = boot(&dir.0);
        for no in 1..=2 {
            let check = carol_check(&auth, &mut rng, no, 50);
            bank.deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut rng,
            )
            .unwrap();
        }
    }
    // A write died mid-record: a frame header promising more bytes than
    // the file holds.
    let wal = dir.0.join("wal.0");
    let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
    drop(f);

    let (bank, _auth, _) = boot(&dir.0);
    assert_eq!(
        bank.account("carol-acct").unwrap().balance(&usd()),
        400,
        "both complete settles replayed"
    );
    assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 100);
    assert_eq!(total_usd(&bank), 500, "conservation");
}

#[test]
fn bit_flip_refuses_recovery_at_the_exact_record() {
    let dir = Scratch::new("bit-flip");
    {
        let (bank, auth, mut rng) = boot(&dir.0);
        for no in 1..=3 {
            let check = carol_check(&auth, &mut rng, no, 50);
            bank.deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut rng,
            )
            .unwrap();
        }
    }
    // Flip one payload bit in the middle of the log (well past the
    // first records, well before the end).
    let wal = dir.0.join("wal.0");
    let mut bytes = Vec::new();
    OpenOptions::new()
        .read(true)
        .open(&wal)
        .unwrap()
        .read_to_end(&mut bytes)
        .unwrap();
    let mid = bytes.len() / 2;
    let mut f = OpenOptions::new().write(true).open(&wal).unwrap();
    f.seek(SeekFrom::Start(mid as u64)).unwrap();
    f.write_all(&[bytes[mid] ^ 0x01]).unwrap();
    drop(f);

    // Fail closed: the store refuses to open rather than replaying a
    // log it cannot vouch for, and it names the record that failed.
    let err = WalStorage::open(&dir.0, fast()).unwrap_err();
    match err {
        StorageError::Corrupt { record, reason, .. } => {
            assert!(
                matches!(
                    reason,
                    CorruptKind::CrcMismatch | CorruptKind::ImplausibleLength(_)
                ),
                "got {reason:?}"
            );
            assert!(record >= 1, "corruption is past the first record");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn money_is_conserved_across_repeated_restarts() {
    let dir = Scratch::new("conserve");
    let mut next_no = 1;
    for round in 0..3 {
        let (bank, auth, mut rng) = boot(&dir.0);
        assert_eq!(total_usd(&bank), 500, "conservation at boot {round}");
        // A settled deposit, a certified hold, and a bounced attempt
        // per round.
        let check = carol_check(&auth, &mut rng, next_no, 20);
        bank.deposit(
            &check,
            &p("shop"),
            "shop-acct",
            p("bank"),
            Timestamp(1),
            &mut rng,
        )
        .unwrap();
        bank.certify(
            &p("carol"),
            "carol-acct",
            next_no + 1,
            usd(),
            10,
            p("shop"),
            window(),
            &mut rng,
        )
        .unwrap();
        let too_big = carol_check(&auth, &mut rng, next_no + 2, 1_000_000);
        assert!(bank
            .deposit(
                &too_big,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut rng,
            )
            .is_err());
        next_no += 3;
        assert_eq!(total_usd(&bank), 500, "conservation after round {round}");
    }
    let (bank, _auth, _) = boot(&dir.0);
    assert_eq!(total_usd(&bank), 500, "conservation at final boot");
    assert_eq!(
        bank.account("carol-acct").unwrap().held(&usd()),
        30,
        "three rounds of certified holds survive"
    );
    assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 60);
}

#[test]
fn revoked_serial_stays_revoked_across_restart_without_refetch() {
    use proxy_aa::authz::EndServer;
    use proxy_aa::crypto::keys::SymmetricKey;
    use proxy_aa::proxy::membership::{member_digest, MembershipArtifact, MembershipKind};
    use proxy_aa::proxy::revocation::{ArtifactKind, RevocationArtifact};

    let dir = Scratch::new("artifacts");
    let mut rng = StdRng::seed_from_u64(3);
    let alice_key = SymmetricKey::generate(&mut rng);
    let gs_key = SymmetricKey::generate(&mut rng);
    let resolver = || {
        MapResolver::new()
            .with(p("alice"), GrantorVerifier::SharedKey(alice_key.clone()))
            .with(p("gs"), GrantorVerifier::SharedKey(gs_key.clone()))
    };
    let staff = GroupName::new(p("gs"), "staff");

    {
        let store = Arc::new(WalStorage::open(&dir.0, fast()).expect("open wal"));
        let server = EndServer::new(p("fs"), resolver())
            .with_artifact_store(store as Arc<dyn Storage>)
            .expect("empty store");
        // Alice kills serial 7; the group server posts its staff roster.
        let kill = RevocationArtifact::seal(
            p("alice"),
            1,
            ArtifactKind::Snapshot,
            [7u64].into_iter().collect(),
            &GrantAuthority::SharedKey(alice_key.clone()),
        );
        server.apply_revocation(&kill).expect("revocation applies");
        let roster = MembershipArtifact::seal(
            staff.clone(),
            1,
            MembershipKind::Snapshot,
            vec![member_digest(&p("bob"))],
            vec![],
            &GrantAuthority::SharedKey(gs_key.clone()),
        );
        server.apply_membership(&roster).expect("roster applies");
        assert!(server.revocation_directory().is_revoked(&p("alice"), 7));
    }

    // Restart: both mirrors resume their epochs purely from local
    // storage — no issuer or group server is consulted.
    let store = Arc::new(WalStorage::open(&dir.0, fast()).expect("reopen wal"));
    let server = EndServer::new(p("fs"), resolver())
        .with_artifact_store(store as Arc<dyn Storage>)
        .expect("recovery");
    assert!(
        server.revocation_directory().is_revoked(&p("alice"), 7),
        "revoked serial stays revoked with the issuer offline"
    );
    assert_eq!(server.revocation_directory().epoch_of(&p("alice")), 1);
    use proxy_aa::proxy::membership::MembershipAnswer;
    assert_eq!(
        server
            .membership_directory()
            .assert(&staff, &p("bob"), Timestamp(1)),
        MembershipAnswer::Member,
        "membership roster survives too"
    );
}
