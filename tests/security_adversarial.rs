//! Adversarial integration tests: the security claims of §2/§3.1.
//!
//! An eavesdropper records whole presentations off the simulated network
//! and tries to reuse what it saw; forgers strip restrictions, splice
//! chains, and replay checks. Every attack must fail, and the specific
//! failure mode is asserted.

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::netsim::{EndpointId, Network};
use proxy_aa::proxy::prelude::*;
use proxy_crypto::keys::SymmetricKey;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1_000))
}

struct World {
    rng: StdRng,
    shared: SymmetricKey,
    verifier: Verifier<MapResolver>,
}

fn world(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let shared = SymmetricKey::generate(&mut rng);
    let resolver = MapResolver::new().with(p("alice"), GrantorVerifier::SharedKey(shared.clone()));
    World {
        rng,
        shared,
        verifier: Verifier::new(p("fs"), resolver),
    }
}

fn ctx() -> RequestContext {
    RequestContext::new(p("fs"), Operation::new("read"), ObjectName::new("f")).at(Timestamp(5))
}

/// §3.1: "an attacker can not obtain such a capability by tapping the
/// network to observe the presentation of capabilities by legitimate
/// users."
#[test]
fn eavesdropped_presentation_is_useless() {
    let mut w = world(1);
    let cap = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(w.shared.clone()),
        RestrictionSet::new(),
        window(),
        1,
        &mut w.rng,
    );

    // The legitimate bearer presents over a tapped network.
    let mut net = Network::new(0);
    net.enable_tap();
    let pres = cap.present_bearer([10u8; 32], &p("fs"));
    net.transmit(
        &EndpointId::new("bob"),
        &EndpointId::new("fs"),
        &pres.encode(),
    );
    let mut guard = MemoryReplayGuard::new();
    assert!(w.verifier.verify(&pres, &ctx(), &mut guard).is_ok());

    // The attacker reconstructs the presentation from the tap.
    let captured = Presentation::decode(&net.tapped()[0].payload).expect("tap decodes");
    assert_eq!(captured, pres, "attacker has a perfect copy");

    // 1. The captured bytes contain no usable proxy key: the sealed key is
    //    inside the certificate, and only alice's session key opens it.
    let ProxyKey::Symmetric(real_key) = &cap.key else {
        unreachable!()
    };
    let wire = captured.encode();
    assert!(
        !wire.windows(32).any(|w| w == real_key.as_bytes()),
        "raw proxy key must never appear on the wire"
    );

    // 2. A fresh server challenge defeats replay of the captured response.
    let Proof::Possession { response, .. } = &captured.proof else {
        unreachable!()
    };
    let replay = Presentation {
        certs: captured.certs.clone(),
        proof: Proof::Possession {
            challenge: [11u8; 32],
            response: response.clone(),
        },
    };
    assert_eq!(
        w.verifier.verify(&replay, &ctx(), &mut guard),
        Err(VerifyError::BadPossession)
    );
}

#[test]
fn stripping_a_restriction_breaks_the_seal() {
    let mut w = world(2);
    let cap = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(w.shared.clone()),
        RestrictionSet::new().with(Restriction::authorize_op(
            ObjectName::new("only-this"),
            Operation::new("read"),
        )),
        window(),
        1,
        &mut w.rng,
    );
    let mut pres = cap.present_bearer([1u8; 32], &p("fs"));
    pres.certs[0].restrictions = RestrictionSet::new();
    let mut guard = MemoryReplayGuard::new();
    assert_eq!(
        w.verifier.verify(&pres, &ctx(), &mut guard),
        Err(VerifyError::BadSeal { index: 0 })
    );
}

#[test]
fn splicing_certificates_across_chains_fails() {
    let mut w = world(3);
    let authority = GrantAuthority::SharedKey(w.shared.clone());
    // Two independent cascades from alice.
    let a = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new(),
        window(),
        1,
        &mut w.rng,
    )
    .derive(RestrictionSet::new(), window(), 2, &mut w.rng)
    .unwrap();
    let b = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new(),
        window(),
        3,
        &mut w.rng,
    )
    .derive(RestrictionSet::new(), window(), 4, &mut w.rng)
    .unwrap();
    // Attacker splices b's tail onto a's head (the tail is sealed with
    // b's first proxy key, not a's).
    let mut spliced = a.present_bearer([1u8; 32], &p("fs"));
    spliced.certs[1] = b.certs[1].clone();
    let mut guard = MemoryReplayGuard::new();
    let result = w.verifier.verify(&spliced, &ctx(), &mut guard);
    assert!(
        matches!(
            result,
            Err(VerifyError::BadSeal { index: 1 })
                | Err(VerifyError::KeyUnrecoverable { index: 1 })
        ),
        "splice must be detected: {result:?}"
    );
}

#[test]
fn extending_someone_elses_bearer_chain_requires_the_proxy_key() {
    let mut w = world(4);
    let authority = GrantAuthority::SharedKey(w.shared.clone());
    let original = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new(),
        window(),
        1,
        &mut w.rng,
    );
    // The attacker has the *certificates* (public) but not the proxy key;
    // it forges an extension sealed with a key it invents.
    let fake_key = SymmetricKey::generate(&mut w.rng);
    let fake_holder = Proxy {
        certs: original.certs.clone(),
        key: ProxyKey::Symmetric(fake_key),
    };
    let forged = fake_holder
        .derive(RestrictionSet::new(), window(), 2, &mut w.rng)
        .expect("construction succeeds locally");
    let pres = forged.present_bearer([1u8; 32], &p("fs"));
    let mut guard = MemoryReplayGuard::new();
    let result = w.verifier.verify(&pres, &ctx(), &mut guard);
    assert!(
        matches!(result, Err(VerifyError::BadSeal { index: 1 })),
        "forged link must fail: {result:?}"
    );
}

#[test]
fn delegate_proxy_cannot_be_used_by_non_delegates_even_with_possession() {
    // A delegate proxy's key might leak; possession alone must not grant
    // access without the named delegate's identity.
    let mut w = world(5);
    let proxy = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(w.shared.clone()),
        RestrictionSet::new().with(Restriction::grantee_one(p("bob"))),
        window(),
        1,
        &mut w.rng,
    );
    // Mallory stole the proxy (certs + key) and proves possession.
    let pres = proxy.present_bearer([1u8; 32], &p("fs"));
    let mallory_ctx = ctx().authenticated_as(p("mallory"));
    let mut guard = MemoryReplayGuard::new();
    assert!(matches!(
        w.verifier.verify(&pres, &mallory_ctx, &mut guard),
        Err(VerifyError::Denied(Denial::GranteeNotPresent { .. }))
    ));
}

#[test]
fn dropped_traffic_fails_closed() {
    // Fault injection: if the presentation never arrives, nothing is
    // granted — and the tap shows nothing leaked either.
    let mut w = world(6);
    let cap = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(w.shared.clone()),
        RestrictionSet::new(),
        window(),
        1,
        &mut w.rng,
    );
    let mut net = Network::new(0);
    net.enable_tap();
    net.drop_next(1);
    let pres = cap.present_bearer([1u8; 32], &p("fs"));
    let delivery = net.transmit(
        &EndpointId::new("bob"),
        &EndpointId::new("fs"),
        &pres.encode(),
    );
    assert!(!delivery.delivered);
    assert!(net.tapped().is_empty());
}

#[test]
fn expired_chain_rejected_even_with_valid_tail() {
    let mut w = world(7);
    let authority = GrantAuthority::SharedKey(w.shared.clone());
    // Head expires at t10; tail claims validity to t1000 — the derive API
    // clips it, so build the attack manually by decoding and re-deriving.
    let head = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new(),
        Validity::new(Timestamp(0), Timestamp(10)),
        1,
        &mut w.rng,
    );
    let child = head
        .derive(RestrictionSet::new(), window(), 2, &mut w.rng)
        .unwrap();
    assert_eq!(
        child.effective_validity().unwrap().until,
        Timestamp(10),
        "derive clips to parent"
    );
    let pres = child.present_bearer([1u8; 32], &p("fs"));
    let late_ctx = ctx().at(Timestamp(50));
    let mut guard = MemoryReplayGuard::new();
    assert_eq!(
        w.verifier.verify(&pres, &late_ctx, &mut guard),
        Err(VerifyError::NotValidAt {
            index: 0,
            now: Timestamp(50)
        })
    );
}

#[test]
fn wire_corruption_of_any_presentation_byte_never_authorizes_more() {
    let mut w = world(8);
    let cap = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(w.shared.clone()),
        RestrictionSet::new().with(Restriction::authorize_op(
            ObjectName::new("f"),
            Operation::new("read"),
        )),
        window(),
        1,
        &mut w.rng,
    );
    let wire = cap.present_bearer([1u8; 32], &p("fs")).encode();
    let mut guard = MemoryReplayGuard::new();
    for i in 0..wire.len() {
        let mut bad = wire.clone();
        bad[i] ^= 0x01;
        let Ok(pres) = Presentation::decode(&bad) else {
            continue; // malformed on arrival: rejected before crypto
        };
        // Whatever decoded must not verify as something *different* that
        // still passes.
        if let Ok(v) = w.verifier.verify(&pres, &ctx(), &mut guard) {
            // Only acceptable if the flip was a no-op (identical bytes).
            assert_eq!(
                pres.encode(),
                wire,
                "byte {i}: altered presentation verified: {v:?}"
            );
        }
    }
}

/// Builds a public-key world with a seal cache attached, so the tests
/// below can prove the cache never stands in for request-dependent
/// checks.
fn cached_world(seed: u64) -> (StdRng, GrantAuthority, Verifier<MapResolver>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sk = proxy_aa::crypto::ed25519::SigningKey::generate(&mut rng);
    let resolver =
        MapResolver::new().with(p("alice"), GrantorVerifier::PublicKey(sk.verifying_key()));
    let verifier = Verifier::new(p("fs"), resolver).with_seal_cache(128);
    (rng, GrantAuthority::Keypair(sk), verifier)
}

/// The seal cache memoizes signature checks only. An accept-once proxy
/// whose seal is already cached must still be refused on second use: the
/// replay guard runs on every presentation, cache hit or not.
#[test]
fn seal_cache_never_bypasses_accept_once() {
    let (mut rng, auth, verifier) = cached_world(100);
    let cap = grant(
        &p("alice"),
        &auth,
        RestrictionSet::new().with(Restriction::AcceptOnce { id: 7 }),
        window(),
        1,
        &mut rng,
    );
    let mut guard = MemoryReplayGuard::new();
    let first = cap.present_bearer([1u8; 32], &p("fs"));
    assert!(verifier.verify(&first, &ctx(), &mut guard).is_ok());
    // Second presentation: the seal check is a cache hit, yet acceptance
    // is still refused by the replay guard.
    let second = cap.present_bearer([2u8; 32], &p("fs"));
    assert!(matches!(
        verifier.verify(&second, &ctx(), &mut guard),
        Err(VerifyError::Denied(Denial::AlreadyAccepted { id: 7 }))
    ));
    let (hits, _) = verifier.seal_cache().unwrap().stats();
    assert!(hits >= 1, "the rejection happened despite a warm cache");
}

/// A cached seal must not resurrect an expired certificate: validity is
/// checked against the request clock before the cache is ever consulted.
#[test]
fn seal_cache_never_bypasses_expiry() {
    let (mut rng, auth, verifier) = cached_world(101);
    let cap = grant(
        &p("alice"),
        &auth,
        RestrictionSet::new(),
        Validity::new(Timestamp(0), Timestamp(100)),
        1,
        &mut rng,
    );
    let mut guard = MemoryReplayGuard::new();
    let pres = cap.present_bearer([1u8; 32], &p("fs"));
    assert!(verifier.verify(&pres, &ctx(), &mut guard).is_ok());
    assert_eq!(verifier.seal_cache().unwrap().len(), 1, "seal was cached");
    // Same presentation after expiry: rejected on the validity window.
    let late = RequestContext::new(p("fs"), Operation::new("read"), ObjectName::new("f"))
        .at(Timestamp(200));
    let pres2 = cap.present_bearer([2u8; 32], &p("fs"));
    assert_eq!(
        verifier.verify(&pres2, &late, &mut guard),
        Err(VerifyError::NotValidAt {
            index: 0,
            now: Timestamp(200)
        })
    );
}

/// Warm cache or not, every presentation must prove possession against
/// its own fresh challenge: an eavesdropper replaying a recorded response
/// fails even when the seal check itself is skipped via the cache.
#[test]
fn seal_cache_never_bypasses_possession_proof() {
    let (mut rng, auth, verifier) = cached_world(102);
    let cap = grant(
        &p("alice"),
        &auth,
        RestrictionSet::new(),
        window(),
        1,
        &mut rng,
    );
    let mut guard = MemoryReplayGuard::new();
    let recorded = cap.present_bearer([1u8; 32], &p("fs"));
    assert!(verifier.verify(&recorded, &ctx(), &mut guard).is_ok());
    let Proof::Possession { response, .. } = &recorded.proof else {
        unreachable!()
    };
    // Replay the recorded response against a fresh challenge.
    let replayed = Presentation {
        certs: recorded.certs.clone(),
        proof: Proof::Possession {
            challenge: [9u8; 32],
            response: response.clone(),
        },
    };
    let (hits_before, _) = verifier.seal_cache().unwrap().stats();
    assert_eq!(
        verifier.verify(&replayed, &ctx(), &mut guard),
        Err(VerifyError::BadPossession)
    );
    let (hits_after, _) = verifier.seal_cache().unwrap().stats();
    assert!(
        hits_after > hits_before,
        "the seal was served from cache, and possession still failed"
    );
}

/// The §2 hostile-network posture, over real sockets: ten thousand
/// corrupted, truncated, oversized, and garbage frames thrown at a live
/// TCP server must never panic it, never blow up its memory (oversized
/// declared bodies are rejected from the 18-byte header alone), and
/// never stop it answering legitimate requests interleaved throughout.
#[test]
fn frame_mutation_adversary_cannot_kill_the_tcp_server() {
    use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthorizationServer};
    use proxy_aa::net::{api, ClientOptions, ServiceMux, TcpClient, TcpServer};
    use proxy_aa::wire::{Message, MAX_FRAME_BODY};
    use rand::RngCore;
    use std::io::Write;
    use std::net::TcpStream;
    use std::sync::Arc;

    // The Fig. 3 world the legitimate probe client keeps querying.
    let mut setup = StdRng::seed_from_u64(77);
    let r_key = SymmetricKey::generate(&mut setup);
    let mut authz =
        AuthorizationServer::new(p("R"), GrantAuthority::SharedKey(r_key), MapResolver::new());
    authz.database_mut(p("S")).set(
        ObjectName::new("X"),
        Acl::new().with(
            AclSubject::Principal(p("C")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );
    let mux = Arc::new(ServiceMux::new().with_authz(Arc::new(authz)));
    let server = TcpServer::spawn(mux, 4, 77).expect("spawn server");

    let probe = TcpClient::new(server.addr(), ClientOptions::default());
    let assert_serving = |probe: &TcpClient| {
        api::request_authorization(
            probe,
            &p("C"),
            vec![],
            &p("S"),
            &Operation::new("read"),
            &ObjectName::new("X"),
            window(),
            Timestamp(1),
        )
        .expect("server must keep serving legitimate requests");
    };
    assert_serving(&probe);

    // A well-formed frame to mutate.
    let valid = Message::AuthzQuery {
        client: p("C"),
        presentations: vec![],
        end_server: p("S"),
        operation: Operation::new("read"),
        object: ObjectName::new("X"),
        validity: window(),
        now: Timestamp(1),
    }
    .to_frame(1);

    const TARGET: u32 = 10_000;
    let mut rng = StdRng::seed_from_u64(0x0BAD_F00D);
    let mut conn: Option<TcpStream> = None;
    let mut frames_on_conn = 0u32;
    let mut delivered = 0u32;
    let mut attempts = 0u32;
    let mut classes = [0u32; 4];
    while delivered < TARGET {
        attempts += 1;
        assert!(
            attempts < 20 * TARGET,
            "server stopped accepting adversarial connections"
        );
        if conn.is_none() || frames_on_conn >= 64 {
            conn = TcpStream::connect(server.addr()).ok();
            frames_on_conn = 0;
        }
        let Some(stream) = conn.as_mut() else {
            continue;
        };
        let class = rng.next_u32() % 4;
        let bytes: Vec<u8> = match class {
            // Random bit flips: the CRC (or a stricter check before it)
            // must reject every one.
            0 => {
                let mut b = valid.clone();
                for _ in 0..=(rng.next_u32() % 8) {
                    let i = rng.next_u32() as usize % b.len();
                    b[i] ^= 1 << (rng.next_u32() % 8);
                }
                b
            }
            // Truncation at an arbitrary boundary: the server just keeps
            // waiting for the rest (and misparses whatever comes next).
            1 => {
                let cut = rng.next_u32() as usize % valid.len();
                valid[..cut].to_vec()
            }
            // Oversized declared body: must be rejected from the header
            // alone — the claimed megabytes are never allocated or read.
            2 => {
                let mut b = valid.clone();
                let huge = MAX_FRAME_BODY + 1 + (rng.next_u32() % 1_000_000);
                b[14..18].copy_from_slice(&huge.to_le_bytes());
                b
            }
            // Raw garbage of arbitrary length: bad magic, closed stream.
            _ => {
                let len = 1 + rng.next_u32() as usize % 256;
                let mut b = vec![0u8; len];
                rng.fill_bytes(&mut b);
                b
            }
        };
        match stream.write_all(&bytes) {
            Ok(()) => {
                delivered += 1;
                classes[class as usize] += 1;
                frames_on_conn += 1;
                // Frame-level rejections close the connection server-side;
                // dial fresh so the next mutation actually arrives.
                if class != 1 {
                    conn = None;
                }
                // Interleave legitimate traffic: the server must answer
                // correctly *while* under mutation load.
                if delivered.is_multiple_of(1_000) {
                    assert_serving(&probe);
                }
            }
            Err(_) => conn = None,
        }
    }
    assert_eq!(delivered, TARGET);
    assert!(
        classes.iter().all(|&c| c > 0),
        "every mutation class exercised: {classes:?}"
    );
    // And after the storm: still serving, same answers.
    assert_serving(&probe);
}

/// A forged seal inside a server-side verification micro-batch fails
/// only its own request: seven honest depositors and one attacker race
/// through a bank whose Ed25519 seal checks are flushed through one
/// shared batch verifier, and exactly the forged check bounces.
#[test]
fn forged_seal_in_a_micro_batch_fails_only_that_request() {
    use proxy_aa::accounting::{write_check, AccountingServer};
    use proxy_aa::net::{api, ClientOptions, ServiceMux, TcpClient, TcpServer};
    use proxy_crypto::ed25519::SigningKey;
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    const DEPOSITORS: usize = 8;
    const FORGER: usize = 3;
    let usd = || Currency::new("USD");

    let mut rng = StdRng::seed_from_u64(91);
    let bank_key = SigningKey::generate(&mut rng);
    let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key));
    let mut authorities = Vec::new();
    for t in 0..DEPOSITORS {
        let key = SigningKey::generate(&mut rng);
        bank.register_grantor(
            p(&format!("payor{t}")),
            GrantorVerifier::PublicKey(key.verifying_key()),
        );
        bank.open_account(format!("acct{t}"), vec![p(&format!("payor{t}"))]);
        bank.account_mut(&format!("acct{t}"))
            .expect("account just opened")
            .credit(usd(), 100);
        authorities.push(GrantAuthority::Keypair(key));
    }
    bank.open_account("shop", vec![p("shop")]);
    let batcher = Arc::new(SealBatcher::new(DEPOSITORS, Duration::from_micros(500)));
    let bank = Arc::new(bank.with_seal_batcher(Arc::clone(&batcher)));
    let mux: ServiceMux = ServiceMux::new().with_accounting(Arc::clone(&bank));
    let srv = TcpServer::spawn(Arc::new(mux), DEPOSITORS, 91).expect("bank server");

    // The attacker holds payor3's principal name but not payor3's key:
    // its check is sealed with a key the bank has never seen.
    let attacker = GrantAuthority::Keypair(SigningKey::generate(&mut rng));
    let checks: Vec<Proxy> = (0..DEPOSITORS)
        .map(|t| {
            let authority = if t == FORGER {
                &attacker
            } else {
                &authorities[t]
            };
            write_check(
                &p(&format!("payor{t}")),
                authority,
                &p("bank"),
                &format!("acct{t}"),
                p("shop"),
                1,
                usd(),
                5,
                window(),
                &mut rng,
            )
            .proxy
        })
        .collect();

    let barrier = Barrier::new(DEPOSITORS);
    let outcomes: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = checks
            .into_iter()
            .map(|check| {
                let (srv, barrier) = (&srv, &barrier);
                s.spawn(move || {
                    let client = TcpClient::new(srv.addr(), ClientOptions::default());
                    barrier.wait();
                    api::deposit_check(&client, check, &p("shop"), "shop", &p("bank"), Timestamp(3))
                        .is_ok()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("depositor thread"))
            .collect()
    });

    assert!(!outcomes[FORGER], "the forged seal must bounce");
    assert_eq!(
        outcomes.iter().filter(|ok| **ok).count(),
        DEPOSITORS - 1,
        "honest checks are untouched by the forgery: {outcomes:?}"
    );
    assert_eq!(
        bank.account("shop").expect("shop account").balance(&usd()),
        (DEPOSITORS as u64 - 1) * 5,
        "exactly the honest deposits settled"
    );
    let stats = batcher.stats();
    assert!(
        stats.inline_verifies + stats.batched_checks >= DEPOSITORS as u64,
        "every deposit's seal was checked through the batcher: {stats:?}"
    );
}

#[test]
fn forged_and_rolled_back_revocation_artifacts_cannot_resurrect_a_capability() {
    use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthzError, EndServer, Request};
    use proxy_aa::proxy::revocation::{ArtifactError, ArtifactKind, RevocationArtifact, SerialSet};

    let mut rng = StdRng::seed_from_u64(41);
    let issuer_key = SymmetricKey::generate(&mut rng);
    let resolver =
        MapResolver::new().with(p("alice"), GrantorVerifier::SharedKey(issuer_key.clone()));
    let mut server = EndServer::new(p("fs"), resolver);
    server.acls.set(
        ObjectName::new("file1"),
        Acl::new().with(AclSubject::Principal(p("alice")), AclRights::all()),
    );
    let authority = GrantAuthority::SharedKey(issuer_key);
    let cap = grant(
        &p("alice"),
        &authority,
        RestrictionSet::new().with(Restriction::authorize_op(
            ObjectName::new("file1"),
            Operation::new("read"),
        )),
        window(),
        7,
        &mut rng,
    );

    // Epoch 1 lands legitimately: serial 7 is dead mid-validity.
    let kill = RevocationArtifact::seal(
        p("alice"),
        1,
        ArtifactKind::Snapshot,
        [7u64].into_iter().collect(),
        &authority,
    );
    server
        .apply_revocation(&kill)
        .expect("legitimate artifact applies");
    let present = |server: &EndServer<MapResolver>, nonce: u8| {
        let req = Request::new(
            Operation::new("read"),
            ObjectName::new("file1"),
            Timestamp(1),
        )
        .with_presentation(cap.present_bearer([nonce; 32], &p("fs")));
        server.authorize(&req).map(|_| ())
    };
    assert!(matches!(
        present(&server, 1),
        Err(AuthzError::Verify(VerifyError::Revoked { serial: 7, .. }))
    ));

    // Forgery: an attacker who cannot sign as alice publishes an empty
    // snapshot at a higher epoch to "un-revoke" the serial. The seal
    // fails, nothing is applied, and the revocation stands.
    let attacker = GrantAuthority::SharedKey(SymmetricKey::generate(&mut rng));
    let forged = RevocationArtifact::seal(
        p("alice"),
        9,
        ArtifactKind::Snapshot,
        SerialSet::new(),
        &attacker,
    );
    assert!(matches!(
        server.apply_revocation(&forged),
        Err(AuthzError::Artifact(ArtifactError::BadSeal))
    ));
    assert_eq!(server.revocation_directory().epoch_of(&p("alice")), 1);

    // Rollback: replaying the genuinely-sealed pre-revocation state (an
    // empty snapshot alice once published at epoch 0 semantics — here a
    // same-epoch re-seal) must be refused as an epoch regression.
    let rollback = RevocationArtifact::seal(
        p("alice"),
        1,
        ArtifactKind::Snapshot,
        SerialSet::new(),
        &authority,
    );
    assert!(matches!(
        server.apply_revocation(&rollback),
        Err(AuthzError::Artifact(ArtifactError::EpochRegression {
            current: 1,
            offered: 1
        }))
    ));
    assert_eq!(server.revocation_directory().epoch_of(&p("alice")), 1);

    // A delta claiming a base the mirror never held is also refused.
    let wild_delta = RevocationArtifact::seal(
        p("alice"),
        6,
        ArtifactKind::Delta { base_epoch: 5 },
        SerialSet::new(),
        &authority,
    );
    assert!(matches!(
        server.apply_revocation(&wild_delta),
        Err(AuthzError::Artifact(ArtifactError::BaseMismatch {
            current: 1,
            base: 5
        }))
    ));

    // After every attack the capability is still dead.
    assert!(matches!(
        present(&server, 2),
        Err(AuthzError::Verify(VerifyError::Revoked { serial: 7, .. }))
    ));
}

#[test]
fn forged_membership_artifacts_cannot_plant_or_evict_members() {
    use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthzError, EndServer, Request};
    use proxy_aa::proxy::membership::{member_digest, MembershipArtifact, MembershipKind};
    use proxy_aa::proxy::revocation::ArtifactError;

    let mut rng = StdRng::seed_from_u64(42);
    let gs_key = SymmetricKey::generate(&mut rng);
    let resolver = MapResolver::new().with(p("gs"), GrantorVerifier::SharedKey(gs_key.clone()));
    let mut server = EndServer::new(p("fs"), resolver);
    let staff = GroupName::new(p("gs"), "staff");
    server.acls.set(
        ObjectName::new("wiki"),
        Acl::new().with(AclSubject::Group(staff.clone()), AclRights::all()),
    );
    let authority = GrantAuthority::SharedKey(gs_key);

    // Legitimate roster: bob is staff as of epoch 1.
    let roster = MembershipArtifact::seal(
        staff.clone(),
        1,
        MembershipKind::Snapshot,
        vec![member_digest(&p("bob"))],
        vec![],
        &authority,
    );
    server.apply_membership(&roster).expect("roster applies");
    let edit = |server: &EndServer<MapResolver>, who: &str| {
        let req = Request::new(
            Operation::new("edit"),
            ObjectName::new("wiki"),
            Timestamp(1),
        )
        .authenticated_as(p(who));
        server.authorize(&req).map(|_| ())
    };
    assert!(edit(&server, "bob").is_ok());
    assert!(edit(&server, "mallory").is_err());

    // Mallory seals herself into the roster with her own key: rejected,
    // roster unchanged in both directions.
    let attacker = GrantAuthority::SharedKey(SymmetricKey::generate(&mut rng));
    let planted = MembershipArtifact::seal(
        staff.clone(),
        2,
        MembershipKind::Snapshot,
        vec![member_digest(&p("mallory"))],
        vec![],
        &attacker,
    );
    assert!(matches!(
        server.apply_membership(&planted),
        Err(AuthzError::Artifact(ArtifactError::BadSeal))
    ));
    assert!(edit(&server, "mallory").is_err(), "mallory stays out");
    assert!(edit(&server, "bob").is_ok(), "bob stays in");

    // Replaying the genuine epoch-1 roster after the mirror moved on is
    // an epoch regression, not a quiet reset.
    let evict = MembershipArtifact::seal(
        staff.clone(),
        2,
        MembershipKind::Snapshot,
        vec![member_digest(&p("carol"))],
        vec![],
        &authority,
    );
    server.apply_membership(&evict).expect("epoch 2 applies");
    assert!(matches!(
        server.apply_membership(&roster),
        Err(AuthzError::Artifact(ArtifactError::EpochRegression {
            current: 2,
            offered: 1
        }))
    ));
    assert!(edit(&server, "carol").is_ok());
    assert!(
        edit(&server, "bob").is_err(),
        "epoch 2 evicted bob for real"
    );
}

#[test]
fn captured_check_cannot_be_replayed_across_a_server_restart() {
    // The classic attack on a RAM-only replay guard: capture a check
    // presentation, wait for (or force) the server to restart, then
    // re-present it hoping the accept-once state died with the process.
    // With the journaled replay bound (DESIGN.md §15), the marks a
    // settlement consumed ride in its journal record, so the rebuilt
    // server still refuses the capture.
    use proxy_aa::accounting::{write_check, AccountingServer, AcctError};
    use proxy_aa::crypto::ed25519::SigningKey;
    use proxy_aa::storage::{MemStorage, Storage};
    use std::sync::Arc;

    let usd = || Currency::new("USD");
    let store: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let boot = |store: Arc<dyn Storage>| {
        let mut rng = StdRng::seed_from_u64(17);
        let bank_key = SigningKey::generate(&mut rng);
        let carol_key = SigningKey::generate(&mut rng);
        let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key))
            .with_storage(store)
            .expect("recovery");
        bank.register_grantor(
            p("carol"),
            GrantorVerifier::PublicKey(carol_key.verifying_key()),
        );
        if bank.account("carol").is_none() {
            bank.open_account("carol", vec![p("carol")]);
            bank.open_account("shop", vec![p("shop")]);
            bank.account_mut("carol").unwrap().credit(usd(), 300);
        }
        (bank, GrantAuthority::Keypair(carol_key), rng)
    };

    let (bank, carol, mut rng) = boot(Arc::clone(&store));
    let check = write_check(
        &p("carol"),
        &carol,
        &p("bank"),
        "carol",
        p("shop"),
        1,
        usd(),
        100,
        window(),
        &mut rng,
    );
    // The legitimate deposit settles; the adversary has a byte-perfect
    // copy of everything that crossed the wire.
    bank.deposit(
        &check,
        &p("shop"),
        "shop",
        p("bank"),
        Timestamp(1),
        &mut rng,
    )
    .expect("legitimate deposit settles");
    assert_eq!(bank.account("shop").unwrap().balance(&usd()), 100);
    drop(bank);

    // Server restarts; the adversary presents the capture.
    let (bank, _carol, mut rng) = boot(store);
    let err = bank
        .deposit(
            &check,
            &p("shop"),
            "shop",
            p("bank"),
            Timestamp(2),
            &mut rng,
        )
        .unwrap_err();
    assert!(
        matches!(err, AcctError::Verify(_)),
        "replay across restart must fail verification, got {err:?}"
    );
    assert_eq!(
        bank.account("shop").unwrap().balance(&usd()),
        100,
        "no second credit"
    );
    assert_eq!(bank.account("carol").unwrap().balance(&usd()), 200);
}
