//! End-to-end networked protocol flows: the paper's three servers on
//! real TCP loopback sockets, driven through the typed client API, plus
//! the loopback-transport determinism acceptance check.

use std::sync::Arc;

use proxy_aa::accounting::{write_check, AccountingServer};
use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthorizationServer, EndServer};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::net::{api, ClientOptions, Deposit, Loopback, ServiceMux, TcpClient, TcpServer};
use proxy_aa::netsim::{EndpointId, Network};
use proxy_aa::proxy::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1000))
}

/// The full deployment: authorization server "R", end-server "S" that
/// trusts R, and an accounting server "bank" holding carol's and the
/// shop's accounts.
struct World {
    authz: ServiceMux<MapResolver>,
    end: ServiceMux<MapResolver>,
    bank: ServiceMux<MapResolver>,
    carol_authority: GrantAuthority,
}

fn world(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let r_key = SymmetricKey::generate(&mut rng);

    let mut authz = AuthorizationServer::new(
        p("R"),
        GrantAuthority::SharedKey(r_key.clone()),
        MapResolver::new(),
    );
    authz.database_mut(p("S")).set(
        ObjectName::new("X"),
        Acl::new().with(
            AclSubject::Principal(p("C")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );

    let mut end = EndServer::new(
        p("S"),
        MapResolver::new().with(p("R"), GrantorVerifier::SharedKey(r_key)),
    );
    end.acls.set(
        ObjectName::new("X"),
        Acl::new().with(AclSubject::Principal(p("R")), AclRights::all()),
    );

    let carol_key = SigningKey::generate(&mut rng);
    let carol_authority = GrantAuthority::Keypair(carol_key.clone());
    let bank_key = SigningKey::generate(&mut rng);
    let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key));
    bank.register_grantor(
        p("carol"),
        GrantorVerifier::PublicKey(carol_key.verifying_key()),
    );
    bank.open_account("carol", vec![p("carol")]);
    bank.account_mut("carol")
        .unwrap()
        .credit(Currency::new("USD"), 1_000);
    bank.open_account("shop", vec![p("shop")]);

    World {
        authz: ServiceMux::new().with_authz(Arc::new(authz)),
        end: ServiceMux::new().with_end_server(Arc::new(end)),
        bank: ServiceMux::new().with_accounting(Arc::new(bank)),
        carol_authority,
    }
}

fn client(server: &TcpServer) -> TcpClient {
    TcpClient::new(server.addr(), ClientOptions::default())
}

#[test]
fn grant_present_deposit_over_three_tcp_servers() {
    let w = world(1);
    let authz_srv = TcpServer::spawn(Arc::new(w.authz), 2, 1).expect("authz server");
    let end_srv = TcpServer::spawn(Arc::new(w.end), 2, 2).expect("end server");
    let bank_srv = TcpServer::spawn(Arc::new(w.bank), 2, 3).expect("bank server");

    // Step 1 (Fig. 3): C obtains an authorization proxy from R.
    let authz_client = client(&authz_srv);
    let proxy = api::request_authorization(
        &authz_client,
        &p("C"),
        vec![],
        &p("S"),
        &Operation::new("read"),
        &ObjectName::new("X"),
        window(),
        Timestamp(1),
    )
    .expect("authorization granted over TCP");

    // Step 2 (Fig. 4): C presents the proxy to S; S accepts R's claim.
    let end_client = client(&end_srv);
    let (principals, _groups) = api::end_request(
        &end_client,
        &Operation::new("read"),
        &ObjectName::new("X"),
        vec![p("C")],
        vec![proxy.present_bearer([7u8; 32], &p("S"))],
        Timestamp(2),
        vec![],
    )
    .expect("end-server accepts over TCP");
    assert!(principals.contains(&p("R")));

    // The proxy is for reads only: a networked write is denied remotely.
    let denied = api::end_request(
        &end_client,
        &Operation::new("write"),
        &ObjectName::new("X"),
        vec![p("C")],
        vec![proxy.present_bearer([8u8; 32], &p("S"))],
        Timestamp(2),
        vec![],
    );
    assert!(
        matches!(denied, Err(proxy_aa::net::NetError::Remote { .. })),
        "write must be denied: {denied:?}"
    );

    // Step 3 (Fig. 5): carol's check, written locally, deposited over TCP.
    let mut rng = StdRng::seed_from_u64(9);
    let check = write_check(
        &p("carol"),
        &w.carol_authority,
        &p("bank"),
        "carol",
        p("shop"),
        1,
        Currency::new("USD"),
        25,
        window(),
        &mut rng,
    );
    let bank_client = client(&bank_srv);
    let outcome = api::deposit_check(
        &bank_client,
        check.proxy,
        &p("shop"),
        "shop",
        &p("bank"),
        Timestamp(3),
    )
    .expect("deposit settles over TCP");
    match outcome {
        Deposit::Settled {
            payor,
            check_no,
            amount,
            ..
        } => {
            assert_eq!(payor, p("carol"));
            assert_eq!(check_no, 1);
            assert_eq!(amount, 25);
        }
        Deposit::Forwarded { .. } => panic!("same-bank deposit must settle"),
    }

    // Re-depositing the same check must fail (the bank's replay state).
    let replay = write_check(
        &p("carol"),
        &w.carol_authority,
        &p("bank"),
        "carol",
        p("shop"),
        1,
        Currency::new("USD"),
        25,
        window(),
        &mut rng,
    );
    let again = api::deposit_check(
        &bank_client,
        replay.proxy,
        &p("shop"),
        "shop",
        &p("bank"),
        Timestamp(4),
    );
    assert!(
        matches!(again, Err(proxy_aa::net::NetError::Remote { .. })),
        "double deposit must be rejected: {again:?}"
    );
}

#[test]
fn concurrent_clients_share_one_tcp_server() {
    let w = world(2);
    let authz_srv = TcpServer::spawn(Arc::new(w.authz), 4, 5).expect("authz server");
    let c = client(&authz_srv);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..25 {
                    let proxy = api::request_authorization(
                        &c,
                        &p("C"),
                        vec![],
                        &p("S"),
                        &Operation::new("read"),
                        &ObjectName::new("X"),
                        window(),
                        Timestamp(1),
                    )
                    .expect("authorized under concurrency");
                    assert!(!proxy.certs.is_empty());
                }
            });
        }
    });
    // All four workers settled on kept-alive pooled connections.
    assert!(c.pooled_connections() <= 4);
}

/// Acceptance: the in-proc loopback transport keeps netsim tallies
/// deterministic — two identical runs record identical counts.
#[test]
fn loopback_netsim_tallies_are_deterministic() {
    let run = |seed: u64| -> (u64, u64) {
        let w = world(3);
        let net = Arc::new(Network::new(seed));
        let t = Loopback::new(
            Arc::new(w.authz),
            Arc::clone(&net),
            EndpointId::new("C"),
            EndpointId::new("R"),
            seed,
        );
        for _ in 0..10 {
            api::request_authorization(
                &t,
                &p("C"),
                vec![],
                &p("S"),
                &Operation::new("read"),
                &ObjectName::new("X"),
                window(),
                Timestamp(1),
            )
            .expect("authorized over loopback");
        }
        (net.total_messages(), net.total_bytes())
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(a, b, "loopback tallies must be reproducible");
    assert_eq!(a.0, 20, "10 requests, 10 replies");
}
