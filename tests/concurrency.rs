//! Concurrency: servers behind locks stay correct under parallel load.
//!
//! The library's server types are single-threaded state machines by
//! design (deterministic simulation); deployments share them across
//! threads behind a lock. These tests hammer that pattern: many threads
//! verifying proxies and clearing checks concurrently, with the same
//! invariants demanded as in the single-threaded property tests —
//! at-most-once acceptance and money conservation.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::accounting::{write_check, AccountingServer, DepositOutcome};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn usd() -> Currency {
    Currency::new("USD")
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1_000_000))
}

#[test]
fn public_api_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Proxy>();
    assert_send_sync::<Presentation>();
    assert_send_sync::<RestrictionSet>();
    assert_send_sync::<Verifier<MapResolver>>();
    assert_send_sync::<MemoryReplayGuard>();
    assert_send_sync::<AccountingServer>();
    assert_send_sync::<proxy_aa::kerberos::Kdc>();
    assert_send_sync::<proxy_aa::authz::EndServer<MapResolver>>();
    assert_send_sync::<proxy_aa::netsim::Network>();
}

#[test]
fn parallel_verification_shares_one_verifier() {
    // Verifier::verify takes &self: many threads can verify concurrently
    // with per-thread replay guards.
    let mut rng = StdRng::seed_from_u64(1);
    let shared = SymmetricKey::generate(&mut rng);
    let proxy = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(shared.clone()),
        RestrictionSet::new(),
        window(),
        1,
        &mut rng,
    );
    let verifier = Verifier::new(
        p("fs"),
        MapResolver::new().with(p("alice"), GrantorVerifier::SharedKey(shared)),
    );
    let ctx =
        RequestContext::new(p("fs"), Operation::new("read"), ObjectName::new("x")).at(Timestamp(1));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let verifier = &verifier;
            let proxy = &proxy;
            let ctx = &ctx;
            scope.spawn(move || {
                let mut guard = MemoryReplayGuard::new();
                for i in 0..50 {
                    let challenge = [t as u8 + 1; 32];
                    let pres = proxy.present_bearer(challenge, &p("fs"));
                    verifier
                        .verify(&pres, ctx, &mut guard)
                        .unwrap_or_else(|e| panic!("thread {t} iter {i}: {e}"));
                }
            });
        }
    });
}

#[test]
fn concurrent_deposits_settle_each_check_exactly_once() {
    let mut rng = StdRng::seed_from_u64(2);
    let carol_key = SigningKey::generate(&mut rng);
    let mut bank = AccountingServer::new(
        p("bank"),
        GrantAuthority::Keypair(SigningKey::generate(&mut rng)),
    );
    bank.register_grantor(
        p("carol"),
        GrantorVerifier::PublicKey(carol_key.verifying_key()),
    );
    bank.open_account("carol", vec![p("carol")]);
    bank.open_account("shop", vec![p("shop")]);
    bank.account_mut("carol").unwrap().credit(usd(), 10_000);
    let carol_auth = GrantAuthority::Keypair(carol_key);

    // 16 distinct checks, each deposited by 4 racing threads.
    let checks: Vec<_> = (1..=16u64)
        .map(|no| {
            write_check(
                &p("carol"),
                &carol_auth,
                &p("bank"),
                "carol",
                p("shop"),
                no,
                usd(),
                10,
                window(),
                &mut rng,
            )
        })
        .collect();
    let bank = Mutex::new(bank);
    let settled = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..4 {
            let bank = &bank;
            let settled = &settled;
            let checks = &checks;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for check in checks {
                    let result = bank.lock().expect("bank lock").deposit(
                        check,
                        &p("shop"),
                        "shop",
                        p("bank"),
                        Timestamp(1),
                        &mut rng,
                    );
                    if let Ok(DepositOutcome::Settled(payment)) = result {
                        settled.lock().expect("settled lock").push(payment.check_no);
                    }
                }
            });
        }
    });

    let mut settled = settled.into_inner().expect("settled poisoned");
    settled.sort_unstable();
    assert_eq!(
        settled,
        (1..=16u64).collect::<Vec<_>>(),
        "each check exactly once"
    );
    let bank = bank.into_inner().expect("bank poisoned");
    assert_eq!(bank.account("carol").unwrap().balance(&usd()), 10_000 - 160);
    assert_eq!(bank.account("shop").unwrap().balance(&usd()), 160);
}
