//! Concurrency: the service cores stay correct under parallel load.
//!
//! Since the concurrent-runtime rework the servers are internally
//! synchronized: `AuthorizationServer::request_authorization`,
//! `AccountingServer::deposit`, and `Verifier::verify` all take `&self`,
//! backed by lock-striped shards and a sharded replay cache (DESIGN.md
//! §9). These tests hammer the shared-`&self` pattern directly — no
//! external `Mutex` around any server — and demand the same invariants
//! as the single-threaded property tests: at-most-once acceptance and
//! money conservation, now under contention.
//!
//! Run with `RUST_TEST_THREADS=8 cargo test --release --test concurrency`
//! for the full-contention configuration used by `ci.sh`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_aa::accounting::{write_check, AccountingServer, DepositOutcome};
use proxy_aa::authz::{Acl, AclRights, AclSubject, AuthorizationServer};
use proxy_aa::crypto::ed25519::SigningKey;
use proxy_aa::crypto::keys::SymmetricKey;
use proxy_aa::proxy::prelude::*;

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn usd() -> Currency {
    Currency::new("USD")
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1_000_000))
}

#[test]
fn public_api_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Proxy>();
    assert_send_sync::<Presentation>();
    assert_send_sync::<RestrictionSet>();
    assert_send_sync::<Verifier<MapResolver>>();
    assert_send_sync::<MemoryReplayGuard>();
    assert_send_sync::<ReplayCache>();
    assert_send_sync::<ShardMap<String, u64>>();
    assert_send_sync::<VerifiedCertCache>();
    assert_send_sync::<AccountingServer>();
    assert_send_sync::<AuthorizationServer<MapResolver>>();
    assert_send_sync::<proxy_aa::kerberos::Kdc>();
    assert_send_sync::<proxy_aa::authz::EndServer<MapResolver>>();
    assert_send_sync::<proxy_aa::authz::GroupServer>();
    assert_send_sync::<MembershipDirectory>();
    assert_send_sync::<RevocationDirectory>();
    assert_send_sync::<proxy_aa::netsim::Network>();
}

#[test]
fn parallel_verification_shares_one_verifier() {
    // Verifier::verify takes &self: many threads can verify concurrently
    // with per-thread replay guards.
    let mut rng = StdRng::seed_from_u64(1);
    let shared = SymmetricKey::generate(&mut rng);
    let proxy = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(shared.clone()),
        RestrictionSet::new(),
        window(),
        1,
        &mut rng,
    );
    let verifier = Verifier::new(
        p("fs"),
        MapResolver::new().with(p("alice"), GrantorVerifier::SharedKey(shared)),
    );
    let ctx =
        RequestContext::new(p("fs"), Operation::new("read"), ObjectName::new("x")).at(Timestamp(1));
    std::thread::scope(|scope| {
        for t in 0..8 {
            let verifier = &verifier;
            let proxy = &proxy;
            let ctx = &ctx;
            scope.spawn(move || {
                let mut guard = MemoryReplayGuard::new();
                for i in 0..50 {
                    let challenge = [t as u8 + 1; 32];
                    let pres = proxy.present_bearer(challenge, &p("fs"));
                    verifier
                        .verify(&pres, ctx, &mut guard)
                        .unwrap_or_else(|e| panic!("thread {t} iter {i}: {e}"));
                }
            });
        }
    });
}

#[test]
fn accept_once_proxy_is_accepted_exactly_once_across_racing_presenters() {
    // §7.7: an accept-once proxy raced by 8 presenters against ONE shared
    // replay cache must be honored exactly once — the sharded cache's
    // check-and-mark is the single linearization point.
    let mut rng = StdRng::seed_from_u64(2);
    let shared = SymmetricKey::generate(&mut rng);
    let proxy = grant(
        &p("alice"),
        &GrantAuthority::SharedKey(shared.clone()),
        RestrictionSet::new().with(Restriction::AcceptOnce { id: 7 }),
        window(),
        1,
        &mut rng,
    );
    let verifier = Verifier::new(
        p("fs"),
        MapResolver::new().with(p("alice"), GrantorVerifier::SharedKey(shared)),
    );
    let replay = ReplayCache::new();
    let ctx =
        RequestContext::new(p("fs"), Operation::new("read"), ObjectName::new("x")).at(Timestamp(1));
    let accepted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8 {
            let (verifier, proxy, ctx, replay, accepted) =
                (&verifier, &proxy, &ctx, &replay, &accepted);
            scope.spawn(move || {
                let pres = proxy.present_bearer([t as u8 + 1; 32], &p("fs"));
                let mut guard = replay;
                if verifier.verify(&pres, ctx, &mut guard).is_ok() {
                    accepted.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        1,
        "accept-once honored exactly once under a race"
    );
}

#[test]
fn concurrent_deposits_settle_each_check_exactly_once_without_a_server_lock() {
    let mut rng = StdRng::seed_from_u64(3);
    let carol_key = SigningKey::generate(&mut rng);
    let mut bank = AccountingServer::new(
        p("bank"),
        GrantAuthority::Keypair(SigningKey::generate(&mut rng)),
    );
    bank.register_grantor(
        p("carol"),
        GrantorVerifier::PublicKey(carol_key.verifying_key()),
    );
    bank.open_account("carol", vec![p("carol")]);
    bank.open_account("shop", vec![p("shop")]);
    bank.account_mut("carol").unwrap().credit(usd(), 10_000);
    let carol_auth = GrantAuthority::Keypair(carol_key);

    // 16 distinct checks, each deposited by 4 racing threads sharing the
    // bank as plain &self — double-spend prevention is the replay
    // cache's check-and-mark under the payor account's shard.
    let checks: Vec<_> = (1..=16u64)
        .map(|no| {
            write_check(
                &p("carol"),
                &carol_auth,
                &p("bank"),
                "carol",
                p("shop"),
                no,
                usd(),
                10,
                window(),
                &mut rng,
            )
        })
        .collect();
    let bank = bank; // freeze admin state; shared by reference below
    let settled = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for t in 0..4 {
            let (bank, settled, checks) = (&bank, &settled, &checks);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + t);
                for check in checks {
                    let result =
                        bank.deposit(check, &p("shop"), "shop", p("bank"), Timestamp(1), &mut rng);
                    if let Ok(DepositOutcome::Settled(payment)) = result {
                        settled.lock().expect("settled lock").push(payment.check_no);
                    }
                }
            });
        }
    });

    let mut settled = settled.into_inner().expect("settled poisoned");
    settled.sort_unstable();
    assert_eq!(
        settled,
        (1..=16u64).collect::<Vec<_>>(),
        "each check exactly once"
    );
    assert_eq!(bank.account("carol").unwrap().balance(&usd()), 10_000 - 160);
    assert_eq!(bank.account("shop").unwrap().balance(&usd()), 160);
}

#[test]
fn concurrent_check_writing_and_deposits_conserve_currency() {
    // N payor threads each write and deposit their own stream of checks
    // against one shared bank; every unit debited must surface in the
    // shop's account and nowhere else.
    const THREADS: u64 = 8;
    const CHECKS_PER_THREAD: u64 = 50;
    const AMOUNT: u64 = 3;
    let mut rng = StdRng::seed_from_u64(4);
    let mut bank = AccountingServer::new(
        p("bank"),
        GrantAuthority::Keypair(SigningKey::generate(&mut rng)),
    );
    bank.open_account("shop", vec![p("shop")]);
    let mut authorities = Vec::new();
    for t in 0..THREADS {
        let key = SigningKey::generate(&mut rng);
        let payor = p(&format!("payor{t}"));
        bank.register_grantor(
            payor.clone(),
            GrantorVerifier::PublicKey(key.verifying_key()),
        );
        bank.open_account(format!("acct{t}"), vec![payor]);
        bank.account_mut(&format!("acct{t}"))
            .unwrap()
            .credit(usd(), CHECKS_PER_THREAD * AMOUNT);
        authorities.push(GrantAuthority::Keypair(key));
    }
    let bank = bank;
    let settled = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for (t, authority) in authorities.iter().enumerate() {
            let (bank, settled) = (&bank, &settled);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(200 + t as u64);
                let payor = p(&format!("payor{t}"));
                for no in 1..=CHECKS_PER_THREAD {
                    let check = write_check(
                        &payor,
                        authority,
                        &p("bank"),
                        &format!("acct{t}"),
                        p("shop"),
                        no,
                        usd(),
                        AMOUNT,
                        window(),
                        &mut rng,
                    );
                    let outcome = bank
                        .deposit(
                            &check,
                            &p("shop"),
                            "shop",
                            p("bank"),
                            Timestamp(1),
                            &mut rng,
                        )
                        .unwrap_or_else(|e| panic!("payor {t} check {no}: {e}"));
                    assert!(matches!(outcome, DepositOutcome::Settled(_)));
                    settled.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert_eq!(settled.load(Ordering::Relaxed), THREADS * CHECKS_PER_THREAD);
    let total = THREADS * CHECKS_PER_THREAD * AMOUNT;
    assert_eq!(
        bank.account("shop").unwrap().balance(&usd()),
        total,
        "every debited unit landed in the shop account"
    );
    for t in 0..THREADS {
        assert_eq!(
            bank.account(&format!("acct{t}")).unwrap().balance(&usd()),
            0,
            "payor {t} fully debited"
        );
    }
    assert_eq!(
        bank.uncollected_total("shop", &usd()),
        0,
        "no funds in flight"
    );
}

#[test]
fn concurrent_authorization_queries_share_one_server() {
    // Fig. 3's query path under contention: one authorization server,
    // 8 clients requesting proxies with no external lock. Every grant
    // must verify, and the serial counter must never repeat.
    let mut rng = StdRng::seed_from_u64(5);
    let r_key = SymmetricKey::generate(&mut rng);
    let mut authz = AuthorizationServer::new(
        p("R"),
        GrantAuthority::SharedKey(r_key.clone()),
        MapResolver::new(),
    );
    authz.database_mut(p("S")).set(
        ObjectName::new("X"),
        Acl::new().with(
            AclSubject::Principal(p("C")),
            AclRights::ops(vec![Operation::new("read")]),
        ),
    );
    let authz = authz;
    let serials = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let (authz, serials) = (&authz, &serials);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(300 + t);
                for _ in 0..25 {
                    let proxy = authz
                        .request_authorization(
                            &p("C"),
                            &[],
                            &p("S"),
                            &Operation::new("read"),
                            &ObjectName::new("X"),
                            window(),
                            Timestamp(1),
                            &mut rng,
                        )
                        .expect("authorized");
                    serials.lock().expect("serials").push(proxy.certs[0].serial);
                }
            });
        }
    });
    let mut serials = serials.into_inner().expect("serials poisoned");
    serials.sort_unstable();
    serials.dedup();
    assert_eq!(serials.len(), 200, "serials unique under contention");
}

#[test]
fn contended_group_roster_updates_and_asserts_stay_coherent() {
    // The group server's roster lives on a sharded map: adds, removes,
    // membership grants, and mirror syncs all race on one shared &self
    // instance. The mirror applies only seal-verified artifacts, and at
    // quiescence it must agree exactly with the issuer's roster.
    let mut rng = StdRng::seed_from_u64(6);
    let key = SymmetricKey::generate(&mut rng);
    let gs = proxy_aa::authz::GroupServer::new(p("GS"), GrantAuthority::SharedKey(key.clone()));
    let verifier = GrantorVerifier::SharedKey(key);
    gs.create_group("staff");
    // Stable members that no writer ever removes: queries against them
    // must succeed at every interleaving.
    for i in 0..8u64 {
        gs.add_member("staff", p(&format!("stable-{i}")));
    }
    let staff = GroupName::new(p("GS"), "staff");
    let mirror = MembershipDirectory::new();

    std::thread::scope(|scope| {
        // Writers: each owns a disjoint slice of members and churns it.
        for t in 0..4u64 {
            let gs = &gs;
            scope.spawn(move || {
                for i in 0..50u64 {
                    let member = p(&format!("member-{t}-{i}"));
                    gs.add_member("staff", member.clone());
                    if i % 3 == 0 {
                        gs.remove_member("staff", &member);
                    }
                }
            });
        }
        // Readers: membership grants and point queries under churn. The
        // stable members are never removed, so their grants must always
        // succeed; churned members are merely probed (their membership
        // races with the writers by design).
        for t in 0..2u64 {
            let gs = &gs;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(600 + t);
                for i in 0..50u64 {
                    gs.membership_proxy(
                        &p(&format!("stable-{}", i % 8)),
                        &["staff"],
                        window(),
                        &mut rng,
                    )
                    .expect("stable member always gets a grant");
                    let _ = gs.is_member("staff", &p(&format!("member-{t}-{i}")));
                }
            });
        }
        // Mirror: pulls delta chains mid-churn and applies the verified
        // ones; every intermediate state it holds is some epoch the
        // issuer actually published.
        {
            let (gs, mirror, verifier, staff) = (&gs, &mirror, &verifier, &staff);
            scope.spawn(move || {
                for _ in 0..20 {
                    let have = mirror.epoch_of(staff);
                    for artifact in gs.updates_since("staff", have) {
                        assert!(artifact.verify_seal(verifier), "issuer seals verify");
                        // A racing pull may already have applied this
                        // epoch; only ordering errors are fatal.
                        let _ = mirror.apply_verified(&artifact);
                    }
                }
            });
        }
    });

    // Drain the final pending changes, then the mirror must agree with
    // the issuer member-for-member.
    for artifact in gs.updates_since("staff", mirror.epoch_of(&staff)) {
        assert!(artifact.verify_seal(&verifier));
        mirror
            .apply_verified(&artifact)
            .expect("final sync applies");
    }
    assert_eq!(mirror.epoch_of(&staff), gs.epoch_of("staff"));
    assert_eq!(mirror.member_count(&staff), gs.member_count("staff"));
    for t in 0..4u64 {
        for i in 0..50u64 {
            let member = p(&format!("member-{t}-{i}"));
            assert_eq!(
                mirror.assert(&staff, &member, Timestamp(1)) == MembershipAnswer::Member,
                gs.is_member("staff", &member),
                "mirror and issuer agree on {member}"
            );
        }
    }
}
