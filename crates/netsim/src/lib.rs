//! # netsim
//!
//! A deterministic simulated network fabric for the proxy-aa workspace.
//!
//! Protocol code in the other crates calls plain Rust methods on servers;
//! this crate supplies the *measurable* part of a network: a logical
//! clock, per-link latency, message/byte accounting, an eavesdropper tap
//! (for the capture-resistance experiments), and seeded fault injection.
//! Every benchmark that reports "messages" or "latency" reads them from a
//! [`Network`].
//!
//! Determinism: all randomness comes from the seed passed to
//! [`Network::new`], and time is a logical tick counter — the same program
//! produces the same trace on every run.
//!
//! ```
//! use netsim::{EndpointId, Network};
//! let mut net = Network::new(0);
//! net.set_default_latency(5);
//! let d = net.transmit(&EndpointId::new("a"), &EndpointId::new("b"), b"hello");
//! assert!(d.delivered);
//! assert_eq!(net.now(), 5);
//! assert_eq!(net.total_bytes(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A network endpoint name (maps 1:1 to a principal in higher layers).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(String);

impl EndpointId {
    /// Creates an endpoint name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "endpoint name must be non-empty");
        Self(name)
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EndpointId({})", self.0)
    }
}

impl From<&str> for EndpointId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// Per-link traffic counters (a read-out snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages transmitted over the link.
    pub messages: u64,
    /// Payload bytes transmitted over the link.
    pub bytes: u64,
    /// Messages lost to fault injection.
    pub dropped: u64,
}

/// Live per-link tallies: atomics, so concurrent benchmark workers can
/// account traffic through a shared [`Network`] without a lock on the
/// hot path.
#[derive(Debug, Default)]
struct LinkCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
    dropped: AtomicU64,
}

impl LinkCounters {
    fn snapshot(&self) -> LinkStats {
        LinkStats {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// One recorded transmission (the eavesdropper's view).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TapRecord {
    /// Sender.
    pub from: EndpointId,
    /// Receiver.
    pub to: EndpointId,
    /// The full payload as it crossed the wire.
    pub payload: Vec<u8>,
    /// Logical send time.
    pub sent_at: u64,
}

/// Outcome of a transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// False when fault injection dropped the message.
    pub delivered: bool,
    /// Logical time at which the message arrives (sender clock + latency).
    pub arrives_at: u64,
}

/// Deterministic network fabric.
///
/// Traffic counters are atomic tallies behind an `RwLock`'d link table,
/// so concurrent benchmark workers can account traffic via
/// [`Self::record`] from `&self` while the single-threaded experiment
/// path ([`Self::transmit`], `&mut self` — clock, tap, fault injection,
/// seeded RNG) stays exactly as deterministic as before.
#[derive(Debug)]
pub struct Network {
    now: u64,
    default_latency: u64,
    link_latency: HashMap<(EndpointId, EndpointId), u64>,
    stats: RwLock<HashMap<(EndpointId, EndpointId), Arc<LinkCounters>>>,
    tap: Option<Vec<TapRecord>>,
    drop_probability: f64,
    drop_next: u64,
    duplicate_next: u64,
    rng: StdRng,
}

impl Network {
    /// Creates a network with the given RNG seed and a default link
    /// latency of 1 tick.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            now: 0,
            default_latency: 1,
            link_latency: HashMap::new(),
            stats: RwLock::new(HashMap::new()),
            tap: None,
            drop_probability: 0.0,
            drop_next: 0,
            duplicate_next: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current logical time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `ticks` (e.g. to model server think time).
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }

    /// Sets the latency used for links without an explicit override.
    pub fn set_default_latency(&mut self, ticks: u64) {
        self.default_latency = ticks;
    }

    /// Sets the latency of the directed link `from → to`.
    pub fn set_link_latency(&mut self, from: EndpointId, to: EndpointId, ticks: u64) {
        self.link_latency.insert((from, to), ticks);
    }

    /// Starts recording every transmission (the eavesdropper tap).
    pub fn enable_tap(&mut self) {
        if self.tap.is_none() {
            self.tap = Some(Vec::new());
        }
    }

    /// Everything recorded since [`enable_tap`](Self::enable_tap).
    #[must_use]
    pub fn tapped(&self) -> &[TapRecord] {
        self.tap.as_deref().unwrap_or(&[])
    }

    /// Sets a probabilistic drop rate in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.drop_probability = p;
    }

    /// Forces the next `n` transmissions to be dropped (deterministic
    /// fault injection).
    pub fn drop_next(&mut self, n: u64) {
        self.drop_next += n;
    }

    /// Forces the next `n` delivered transmissions to be duplicated: the
    /// link carries the payload twice (counted and tapped twice), modeling
    /// at-least-once delivery. Replay caches exist for exactly this.
    pub fn duplicate_next(&mut self, n: u64) {
        self.duplicate_next += n;
    }

    /// Transmits `payload` from `from` to `to`: advances the clock by the
    /// link latency, updates counters and the tap, and applies fault
    /// injection. Returns whether the message was delivered.
    pub fn transmit(&mut self, from: &EndpointId, to: &EndpointId, payload: &[u8]) -> Delivery {
        let latency = *self
            .link_latency
            .get(&(from.clone(), to.clone()))
            .unwrap_or(&self.default_latency);
        let sent_at = self.now;
        let arrives_at = sent_at.saturating_add(latency);
        let dropped = if self.drop_next > 0 {
            self.drop_next -= 1;
            true
        } else {
            self.drop_probability > 0.0 && self.rng.gen::<f64>() < self.drop_probability
        };
        let copies = if !dropped && self.duplicate_next > 0 {
            self.duplicate_next -= 1;
            2
        } else {
            1
        };
        let counters = self.counters(from, to);
        counters.messages.fetch_add(copies, Ordering::Relaxed);
        counters
            .bytes
            .fetch_add(payload.len() as u64 * copies, Ordering::Relaxed);
        if dropped {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
        } else if let Some(tap) = &mut self.tap {
            for _ in 0..copies {
                tap.push(TapRecord {
                    from: from.clone(),
                    to: to.clone(),
                    payload: payload.to_vec(),
                    sent_at,
                });
            }
        }
        self.now = arrives_at;
        Delivery {
            delivered: !dropped,
            arrives_at,
        }
    }

    /// The live counter block for a link, creating it on first use. The
    /// write lock is taken only the first time a link is seen.
    fn counters(&self, from: &EndpointId, to: &EndpointId) -> Arc<LinkCounters> {
        let key = (from.clone(), to.clone());
        if let Some(c) = self.stats.read().expect("stats lock").get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.stats
                .write()
                .expect("stats lock")
                .entry(key)
                .or_default(),
        )
    }

    /// Accounts one message of `bytes` payload bytes on the link
    /// `from → to`, from `&self` — the concurrent-benchmark path.
    ///
    /// Unlike [`Self::transmit`], this touches *only* the atomic
    /// tallies: no clock, no tap, no fault injection, no RNG, so calling
    /// it from many threads cannot perturb the deterministic
    /// single-threaded experiments sharing the same `Network`.
    pub fn record(&self, from: &EndpointId, to: &EndpointId, bytes: u64) {
        let counters = self.counters(from, to);
        counters.messages.fetch_add(1, Ordering::Relaxed);
        counters.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counters for the directed link `from → to`.
    #[must_use]
    pub fn link_stats(&self, from: &EndpointId, to: &EndpointId) -> LinkStats {
        self.stats
            .read()
            .expect("stats lock")
            .get(&(from.clone(), to.clone()))
            .map(|c| c.snapshot())
            .unwrap_or_default()
    }

    /// Total messages across all links.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.stats
            .read()
            .expect("stats lock")
            .values()
            .map(|s| s.messages.load(Ordering::Relaxed))
            .sum()
    }

    /// Total payload bytes across all links.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.stats
            .read()
            .expect("stats lock")
            .values()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Total dropped messages across all links.
    #[must_use]
    pub fn total_dropped(&self) -> u64 {
        self.stats
            .read()
            .expect("stats lock")
            .values()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets counters, tap, and clock, keeping topology configuration.
    pub fn reset_measurements(&mut self) {
        self.now = 0;
        self.stats.write().expect("stats lock").clear();
        if let Some(tap) = &mut self.tap {
            tap.clear();
        }
    }

    /// Draws random bytes from the network's deterministic RNG (handy for
    /// challenges in protocol drivers).
    pub fn random_bytes<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.rng.fill_bytes(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(name: &str) -> EndpointId {
        EndpointId::new(name)
    }

    #[test]
    fn transmit_advances_clock_by_latency() {
        let mut net = Network::new(0);
        net.set_default_latency(5);
        let d = net.transmit(&e("a"), &e("b"), b"hello");
        assert_eq!(
            d,
            Delivery {
                delivered: true,
                arrives_at: 5
            }
        );
        assert_eq!(net.now(), 5);
        net.set_link_latency(e("a"), e("b"), 2);
        let d = net.transmit(&e("a"), &e("b"), b"hi");
        assert_eq!(d.arrives_at, 7);
    }

    #[test]
    fn counters_accumulate_per_link() {
        let mut net = Network::new(0);
        net.transmit(&e("a"), &e("b"), b"12345");
        net.transmit(&e("a"), &e("b"), b"678");
        net.transmit(&e("b"), &e("a"), b"9");
        let ab = net.link_stats(&e("a"), &e("b"));
        assert_eq!(ab.messages, 2);
        assert_eq!(ab.bytes, 8);
        assert_eq!(net.link_stats(&e("b"), &e("a")).messages, 1);
        assert_eq!(net.total_messages(), 3);
        assert_eq!(net.total_bytes(), 9);
    }

    #[test]
    fn tap_records_payloads() {
        let mut net = Network::new(0);
        net.enable_tap();
        net.transmit(&e("a"), &e("b"), b"secret-ish");
        assert_eq!(net.tapped().len(), 1);
        assert_eq!(net.tapped()[0].payload, b"secret-ish");
        assert_eq!(net.tapped()[0].from, e("a"));
    }

    #[test]
    fn deterministic_drops() {
        let mut net = Network::new(0);
        net.drop_next(2);
        assert!(!net.transmit(&e("a"), &e("b"), b"x").delivered);
        assert!(!net.transmit(&e("a"), &e("b"), b"y").delivered);
        assert!(net.transmit(&e("a"), &e("b"), b"z").delivered);
        assert_eq!(net.total_dropped(), 2);
    }

    #[test]
    fn probabilistic_drops_are_seed_deterministic() {
        let run = |seed| {
            let mut net = Network::new(seed);
            net.set_drop_probability(0.5);
            (0..100)
                .map(|_| net.transmit(&e("a"), &e("b"), b"m").delivered)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        let delivered = run(7).iter().filter(|d| **d).count();
        assert!((20..80).contains(&delivered), "roughly half delivered");
    }

    #[test]
    fn dropped_messages_do_not_reach_the_tap() {
        let mut net = Network::new(0);
        net.enable_tap();
        net.drop_next(1);
        net.transmit(&e("a"), &e("b"), b"lost");
        net.transmit(&e("a"), &e("b"), b"kept");
        assert_eq!(net.tapped().len(), 1);
        assert_eq!(net.tapped()[0].payload, b"kept");
    }

    #[test]
    fn reset_measurements_keeps_topology() {
        let mut net = Network::new(0);
        net.set_link_latency(e("a"), e("b"), 9);
        net.transmit(&e("a"), &e("b"), b"x");
        net.reset_measurements();
        assert_eq!(net.total_messages(), 0);
        assert_eq!(net.now(), 0);
        let d = net.transmit(&e("a"), &e("b"), b"x");
        assert_eq!(d.arrives_at, 9, "latency override survived reset");
    }

    #[test]
    fn random_bytes_deterministic_per_seed() {
        let mut a = Network::new(3);
        let mut b = Network::new(3);
        assert_eq!(a.random_bytes::<32>(), b.random_bytes::<32>());
    }

    #[test]
    fn concurrent_record_tallies_exactly() {
        let net = Network::new(0);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let net = &net;
                scope.spawn(move || {
                    for _ in 0..500 {
                        net.record(&e("client"), &e("server"), 100 + t);
                    }
                });
            }
        });
        let link = net.link_stats(&e("client"), &e("server"));
        assert_eq!(link.messages, 4000);
        assert_eq!(link.bytes, (0..8u64).map(|t| 500 * (100 + t)).sum::<u64>());
        // The concurrent path leaves the deterministic machinery alone.
        assert_eq!(net.now(), 0);
        assert_eq!(net.total_dropped(), 0);
    }

    #[test]
    fn record_does_not_perturb_transmit_determinism() {
        let run = |with_records: bool| {
            let mut net = Network::new(7);
            net.set_drop_probability(0.5);
            if with_records {
                for _ in 0..100 {
                    net.record(&e("x"), &e("y"), 1);
                }
            }
            (0..50)
                .map(|_| net.transmit(&e("a"), &e("b"), b"m").delivered)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true), "record() must not touch the RNG");
    }

    #[test]
    fn duplication_doubles_counts_and_tap() {
        let mut net = Network::new(0);
        net.enable_tap();
        net.duplicate_next(1);
        net.transmit(&e("a"), &e("b"), b"dup");
        net.transmit(&e("a"), &e("b"), b"single");
        assert_eq!(net.link_stats(&e("a"), &e("b")).messages, 3);
        assert_eq!(net.tapped().len(), 3);
        assert_eq!(net.tapped()[0].payload, b"dup");
        assert_eq!(net.tapped()[1].payload, b"dup");
    }
}
