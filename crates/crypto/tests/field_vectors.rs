//! Cross-implementation test vectors for GF(2^255−19) and mod-ℓ scalar
//! arithmetic, generated independently with Python's arbitrary-precision
//! integers (see the generator note at the bottom). Each case checks
//! add/mul/invert against the reference results.

use proxy_crypto::ed25519::field::Fe;
use proxy_crypto::ed25519::scalar::Scalar;

fn fe(hex: &str) -> Fe {
    let mut bytes = [0u8; 32];
    for i in 0..32 {
        bytes[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap();
    }
    Fe::from_bytes(&bytes)
}

fn sc(hex: &str) -> Scalar {
    let mut bytes = [0u8; 32];
    for i in 0..32 {
        bytes[i] = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).unwrap();
    }
    Scalar::from_bytes_mod_order(&bytes)
}

struct FieldCase {
    a: &'static str,
    b: &'static str,
    sum: &'static str,
    prod: &'static str,
    a_inv: &'static str,
}

const FIELD_CASES: &[FieldCase] = &[
    FieldCase {
        a: "b12f71db1b897a94f8f12026cc0f478ebbe9788e0edfe8d1d4aa8291a503e036",
        b: "7bada6202fc7ab179d883943f45a0beac6fbab097e09eb61da46cd5cd2c3da2b",
        sum: "2cdd17fc4a5026ac957a5a69c06a527882e524988ce8d333aff14fee77c7ba62",
        prod: "c9def5011307f79788a49ca3fb7c8351b1d9bfbbbdaeb59931753e1f9706456e",
        a_inv: "6e59748df4bc0a50a80cea37db0ee522a2828e70b802b1e158510473f627fa2a",
    },
    FieldCase {
        a: "ddac2028254eb7bfcb7378758cecece8a9711170d3e3970fa37e0b531abbf053",
        b: "c4c58ac517020186cedbf829776778b28b7089f9127c88385418800458e0b14d",
        sum: "b472abed3c50b8459a4f719f0354659b35e29a69e65f2048f7968b57729ba221",
        prod: "2b010ba6f450a0835da34f8ba51e7f251776c5df59137b4164f8ec40b302e20b",
        a_inv: "d39e0b8ddeee748256d4e15c56e32e7fce118c448524e8b71ebad7b92716a76c",
    },
    FieldCase {
        a: "a8e7cabe2363d9874a7d65c77867f1a4ff83f444e3eab63302de232892679431",
        b: "10a04b0d5af8abeceed4bbdd159f51c500f3b980ee3b5394347e1c32c6d79b5b",
        sum: "cb8716cc7d5b8574395221a58e06436a0077aec5d1260ac8365c405a583f300d",
        prod: "ad93aa7c4d78715d1bb0389b61b24886821ee1beeb93b1809b76f9dca342516f",
        a_inv: "1e8b9125e0a7f83d2d17140a50be502fd42bcc4aeba8cf14a892aa68c15c9659",
    },
    FieldCase {
        a: "759c4d4886af80e07504c0e178b63eb6c5c81b8e2b997bffd2295b34ab85377a",
        b: "b475245f08ecf97d9d883048a801dd9f495b8b3dccbdfc27c9147bd72c941206",
        sum: "3c1272a78e9b7a5e138df02921b81b560f24a7cbf75678279c3ed60bd8194a00",
        prod: "3fa83c89e71df249d1cc0a3cc6e4f1602cf279a994f69f972d81e9df20341b60",
        a_inv: "7a9dad72b5045ff88a9f14478d8a4edd2d81cbc110be4a36fad76baf4ecf8421",
    },
    FieldCase {
        a: "9799bca9bd0f53ca72dfcb27214fb87aa69b8869685ec149cbcf6889a0152d6b",
        b: "f45f8090371ca9212b11188d62c1c4d31ccab24df3bcad1daad2d619b245b000",
        sum: "8bf93c3af52bfceb9df0e3b483107d4ec3653bb75b1b6f6775a23fa3525bdd6b",
        prod: "451a6ab0457db4142d2848a74fc9f3c653ec98e68ab2a25eac60cad56cb8a53c",
        a_inv: "9ccafffe2ca8dcc1af524c9add0da0e4d353293a387ffa8cc6e39bb082d0750e",
    },
    FieldCase {
        a: "063c4f3f21a8fe615efaa6fb95976c906775109cbfda1b734207abdd29bfea54",
        b: "4b1fdb9befa5a52173aac8cd81f93afcf3e7cd07f35532aad70d5bc4ed844a04",
        sum: "515b2adb104ea483d1a46fc91791a78c5b5ddea3b2304e1d1a1506a217443559",
        prod: "12c828bb62697073b6ee50e49600d6bb4982dd8a3cab048ed3aedac32fb95661",
        a_inv: "fa5914704a44ee32ee2503b89dab790f64e1c89da4f7aec34d8383171c826d5c",
    },
    FieldCase {
        a: "cde917e1b4d78040cc4707bd80307e60c5356a96d68a090388a22bdde5c9fe39",
        b: "05c01c249d7f7214f0da0d10162a3c1e725559270a2c4267532cdae810f24d36",
        sum: "d2a934055257f354bc2215cd965aba7e378bc3bde0b64b6adbce05c6f6bb4c70",
        prod: "486f85ac939f0c8504b258a36674a89b8587999c47b38c291a4caefd761f7257",
        a_inv: "fbcd6a996ea37c7638d0856679c3831c6d77f01c69b103315e49c3848b873321",
    },
    FieldCase {
        a: "e4c2e95d1e252349b635126b142eb72f290233671c198c50984d4e51bc299c45",
        b: "873fb4c66506ae25c37bf25d98d6f32d33c2e208e8e75af8130622a2e1902037",
        sum: "6b029e24842bd16e79b104c9ac04ab5d5cc415700401e748ac5370f39dbabc7c",
        prod: "5ea1f96dee2be8733ae137bf20731948a64bc7f374f9593cbb1d850cfbd1514f",
        a_inv: "e180cb84151e2e6d60f60eebe7f7f32f102575ebdd040f90573e649af8d9d306",
    },
    FieldCase {
        a: "c780c728b6dc35df2530d8d2b11975112ccd693033bcf1dd8ac0b21a4751375d",
        b: "add1a73c66df04e902762a4e45210b6bc88d1f79dce5adc7b9f29e541d2fa45d",
        sum: "87526f651cbc3ac828a60221f73a807cf45a89a90fa29fa544b3516f6480db3a",
        prod: "5d7a3af767117d17c2e2ba3a3910f0a3608ea961e3a231cd0c3f9b30a7ef044f",
        a_inv: "c243f355b290e863e6e73279f9148888ce4bd3c6b14db00247098923eec93178",
    },
    FieldCase {
        a: "48d41f2f78d3ad40372dfe906c741b7ad59923857e5703edcf43bd0e96eee40f",
        b: "1e2d3509a845d058c4d0cfd8dad1f5601eb2505c5a2ed3727321d446b83d8f4a",
        sum: "6601553820197e99fbfdcd69474611dbf34b74e1d885d65f436591554e2c745a",
        prod: "eb2a967ba8fe560bf76127a62e54bf9fa919e4aa172dd674a4c0d4d89a20e939",
        a_inv: "b62766e62f7ddac5df9a0940abafeeb199361304f450097732aec1cc28a1d759",
    },
    FieldCase {
        a: "1c1654e04fe31de55bba7ad5c026dbf7ad7d41506c2d9f2e395be0aff9033d02",
        b: "4d9c2b25f299582d4965ac7f0b35ec557a1583d83694fbd400b06c9b89635217",
        sum: "69b27f05427d7612a51f2755cc5bc74d2893c428a3c19a033a0b4d4b83678f19",
        prod: "9358aac9ace6db8159f2befcfe796c8a3c7e4e277ec1d4f3c140fcec9439f247",
        a_inv: "860ec5e91daf314499b80882742c21fe9abfb64c178351526552cea1d07cf44e",
    },
    FieldCase {
        a: "11cd9601e70c2cdf2eb7c8e81e2482d41e70b007c758c1893245238dbd55676b",
        b: "8dc418398c26b9f366242d47f377093d32c5eff77a5693e88ab199e8343e137c",
        sum: "b191af3a7333e5d295dbf52f129c8b115135a0ff41af5472bdf6bc75f2937a67",
        prod: "390c1b1e384a6822077781ce4b95c6bcd2880e384de975d44bc274fef5886778",
        a_inv: "84382837a3c731baadd221355dd695819bb4da0793bf0378a385b6f006adcd1b",
    },
    FieldCase {
        a: "b13dcdafad5eff016332f8333147ce38616a81a4445de234b4c17090d884080c",
        b: "12997d086b7efc13d3d996b00f9b2af90b511974670727ed360f91c28c6a4133",
        sum: "c3d64ab818ddfb15360c8fe440e2f8316dbb9a18ac640922ebd0015365ef493f",
        prod: "4759c1936fd5796ed7d1ac2402169ade103c3fa13784095888e4fbd1ee4d6457",
        a_inv: "5c6f5bcbc077887d5cedb995e946a4323e508ba185d96ba5dea15aa1ad4d3b6a",
    },
    FieldCase {
        a: "1bb7a0eb7baac62b3216ac7ad219c83104af4fe5ed3720d8abc2353ecfe92e4d",
        b: "2c3c3d3ce0e5a3062639e595ec66b6d26c96565a82ff4701f588913ba07bef1d",
        sum: "47f3dd275c906a32584f9110bf807e047145a63f703768d9a04bc7796f651e6b",
        prod: "4e86e17e7839e05a9d9ae23af25ad44044585273b18c27331face00cff9bc22d",
        a_inv: "cf57fea5e64cead467285d8e5348c714f826b0872b8f798ced04f922686e845e",
    },
    FieldCase {
        a: "d91b8c2fa7597a2d3dd0e2dec36b91d40e34bd4c80e35f6102d06acbf17f762d",
        b: "26ba0dbff9e2d01ad0181da77c30e783aaf55dcd3213f26eb43a4a6f0bd85271",
        sum: "12d699eea03c4b480de9ff85409c7858b9291b1ab3f651d0b60ab53afd57c91e",
        prod: "1b868b2a47ed45872e1fef17c9af07ac77451b5d508687ae5e8443f07bfcde50",
        a_inv: "b20bca3390a794e3c2a4705cc0e327d7146fb09cb29755b51c145538565a9d4e",
    },
    FieldCase {
        a: "3173b1ba562fadbc99cbd1140d61b5e84bc18c0299f361411af74dc6a956a34b",
        b: "0c8d40cac4545307f80cd5d6ace020456b2f9214ee05ef970f56ced7f480cb7d",
        sum: "5000f2841b8400c491d8a6ebb941d62db7f01e1787f950d9294d1c9e9ed76e49",
        prod: "10498eab49feb5407c7a96135761eda89027d04ea8dafda236586efaf05e2e2a",
        a_inv: "6114cce3448a7dc448eec9e484cf1cd4efdab6fad067cf4a1a8082f1936a3d59",
    },
    FieldCase {
        a: "6dcc4f242b692a4ba826d3e7b5aa70e396b6016987d25600aa34d58097886621",
        b: "3c2f16420ac4d4a9ec1004fd28e2f59e34e80286be95dc11e93f3d86adfb6619",
        sum: "a9fb6566352dfff49437d7e4de8c6682cb9e04ef45683312937412074584cd3a",
        prod: "4ee8f6998dd4deb8587e737b20648887a18e60747ac0c4308a01453f40440443",
        a_inv: "ec549702bd28726ef94d4795d9f6399b3b8f8243110c20ff8e82ae83fb8dbd42",
    },
    FieldCase {
        a: "457a8bd67bdfbd805ff08de47ed3369cfeca134842d7930d9169d1b27f96ae64",
        b: "2643d0b8ffee058df46858282a3ddebf795ef53cd9c1d06ce89bc71b8317e01d",
        sum: "7ebd5b8f7bcec30d5459e60ca910155c782909851b99647a790599ce02ae8e02",
        prod: "787cf47bca7c5a2e401962c64792b08d11077f3a1e4366c6f2e91a4555f48517",
        a_inv: "696fc5d48bea6fb9f9d0fdf6f3db285421da0fe80e85e7fedc70d621ad285038",
    },
    FieldCase {
        a: "b714a14199a55a9d255530906bd73aa9a73220b58f50f14eeb02e43b2c403648",
        b: "832daafd4739d4c455e7c4ebee263265ee9c24e1b81c049106954d562060ef6a",
        sum: "4d424b3fe1de2e627b3cf57b5afe6c0e96cf4496486df5dff19731924ca02533",
        prod: "df9332b86a2c715120957ed0d1f8facd3472f9f2cbd28806a277a94c59411b0f",
        a_inv: "d8e3d535d683aa51f064f99b2dc30af393674f2836e333dd66ed4ad6342d0518",
    },
    FieldCase {
        a: "e17529139a64168965b2154eb3857f3a1ac382318b14605324a3eafabbb45c3c",
        b: "081f1fdad21995d1bcfd780641a03458a34f3d865d4daa419289e382e69e523d",
        sum: "e99448ed6c7eab5a22b08e54f425b492bd12c0b7e8610a95b62cce7da253af79",
        prod: "1f1574ba723aa09ef8db839e161b3f355ea3569c52c303cbfeecb85b395dfe55",
        a_inv: "a8926c97d20d97baa0ff14025e40839f0ed9f1780729105f937cdd0835c93a5e",
    },
    FieldCase {
        a: "76d2fe22e2dff1a624f40e411c85b3c4cd5a4d098b1bbf1d7fe86878ccfe4053",
        b: "a88bc4d4bb60a1bee6e3ab8742a1f7c170ed50c8548318c473bfb576387c402a",
        sum: "1e5ec3f79d4093650bd8bac85e26ab863e489ed1df9ed7e1f2a71eef047b817d",
        prod: "e7384bbd9ea93af23c9219e97be9c406a64942e414c8f05d515a6eff673c7156",
        a_inv: "ef0231f51e0156f74bcb92f6863fdcef95b4d3e06409bc9910f7f0f16d3e4660",
    },
    FieldCase {
        a: "51333bad63cdec22e89922081cff3de4be10cc8a42fb885d7eabd72414ddd25f",
        b: "b72cb1d4184d12b38c3c552a9923a0dc32f6ed72870c89eb9be072561cc64f33",
        sum: "1b60ec817c1affd574d67732b522dec0f106bafdc90712491a8c4a7b30a32213",
        prod: "2b27459646f50da607524f30d85e3295851ff14713c3c9b982b902abaa4ae304",
        a_inv: "d26e6a1166153bb40c8ec6d1ca56a2710839c2c31862c99621fd7eedb7630f5d",
    },
    FieldCase {
        a: "0b34fcb62675eb347fa8bf79c508e7d96322b900202b11247846d233a2ff452f",
        b: "9bca80874d552ffcd333255645d5ccaf0f6537845ee1221c2e99c75d7e214475",
        sum: "b9fe7c3e74ca1a3153dce4cf0adeb3897387f0847e0c3440a6df999120218a24",
        prod: "2eae0f15073f8c7da1bd06ea9b98ebde99e5f2f1afb40ca1a0d5df7a2105426a",
        a_inv: "26b7c57759d3d7212fe272222b01064181689d42fd7cdde1ee167fd3cf987374",
    },
    FieldCase {
        a: "0c146d235320d63532d51d21a1c4a7f34ad40cb4e38a0a4d4495c52a50cded48",
        b: "b9444aa7725601ea56ac3081ca37f39f80813fb75fbb85b1c0454c8b70ba067d",
        sum: "d858b7cac576d71f89814ea26bfc9a93cb554c6b434690fe04db11b6c087f445",
        prod: "bce326d841b318014844aa4ce5c49d6fa12b47222fbd43c968aee39b58196d48",
        a_inv: "a004bc22ca64e1afd94555f92596c63f204985f7ef4572c0db0a67613617bc07",
    },
];

struct ScalarCase {
    a: &'static str,
    b: &'static str,
    sum: &'static str,
    prod: &'static str,
}

const SCALAR_CASES: &[ScalarCase] = &[
    ScalarCase {
        a: "9d3a6fc4ef703c62705b84968e4f06193f840eb3c5f392c01359ec0df392d90d",
        b: "244de45026bf72971e0e6fac2d1b9f0d424e94ba68c209e817b314e436ed850e",
        sum: "d4b35db8fbcc9ca1b8ccfb9fdd70c61181d2a26d2eb69ca82b0c01f229805f0c",
        prod: "a8f8fe3022898aa271494200c484b225152e2babc1fed612199c6071a7dc3b0b",
    },
    ScalarCase {
        a: "ee322995dc8a55fd953b8e8fc86b19e4d07a68965e5890f398cb15a89eec0808",
        b: "4f5cad0510e6c1c2e6cbb9a26b9b0a37887f4f6dcdbc8c6589cbee66cd37910a",
        sum: "50bbe03dd20d0568a66a508f550d450659fab7032c151d592297040f6c249a02",
        prod: "51eaba94e7611741e4266abe5bfc7f5155c921704df5784a4f906bc71d952d08",
    },
    ScalarCase {
        a: "5f35fe57305edcd898a8d6e22b8639c9b8b290fc9e8ff60f6f31bd5cd35f0008",
        b: "94b65d47610f9a3f40ae4499552efb329480cbd558a47f64e2882bbb975e3b05",
        sum: "f3eb5b9f916d7618d9561b7c81b434fc4c335cd2f733767451bae8176bbe3b0d",
        prod: "cc79e0f615adcc702dc1d2e61c3e392d1f5d7e6909135639c80b39848b0c6808",
    },
    ScalarCase {
        a: "2243949e841bd541a39af47a0e3eefd19e4798cb52b9cd2900c21995c2964c0c",
        b: "f7cc5c41b7f332164d5175b2de08015fb0a4c4ab1bd3e0b1eeffd128c62a0a0b",
        sum: "2c3cfb8221acf5ff194f728a0e4d111c4fec5c776e8caedbeec1ebbd88c15607",
        prod: "2eedd57f059f946c08b0f75ae027a395f632543ddf6c6ef0fc5a228aa786a90e",
    },
    ScalarCase {
        a: "f7953897d3b46e767c53aad2009a4ae33b835cd315108e4d71d5ac8d8d48e301",
        b: "018ce2489338c09d1423f7847e3091707f7044071a500c9bfdaec607be8a7807",
        sum: "f8211be066ed2e149176a1577fcadb53bbf3a0da2f609ae86e8473954bd35b09",
        prod: "b1dc916033392783ee5c4bbe38a8a9dfeccecd3a0ccacfe3fda6e75f8b2e3504",
    },
    ScalarCase {
        a: "2d58ee35abd9abbc5ab19ed9e559adea03b8cbbdee6198c1b6a2d795e720c407",
        b: "743058509e2c644f416afd57a372854f3c9630def2b6b0fa9655cd3b5a43500b",
        sum: "b4b450292fa3fdb3c57ea48eaad25325404efc9be11849bc4df8a4d141641403",
        prod: "7cd7bd32d013b25cc97f852590655bea3de8f592460d0aa152ae81f859107b08",
    },
    ScalarCase {
        a: "094b8babcee35d3337cbe7c418ea64a86ca5b15c1342313531ebbe13c593f506",
        b: "1c124d694660f64afcfcf797acbd77ffafb9b643da344725929ae345da5c5f05",
        sum: "255dd8141544547e33c8df5cc5a7dca71c5f68a0ed76785ac385a2599ff0540c",
        prod: "284a83a7d39d860557bfc1f99fb5b2fa56c5d1794fde4628c1e24f3b8173b302",
    },
    ScalarCase {
        a: "89b2e64fbed15fab95dd419de72e8f28dd85eb879b3058e547454053d4fa4a0b",
        b: "502265e9b2802458039e841d82a8d3a0161694621fb9ac72855302db16554a07",
        sum: "ec0056dc56ef71abc2dece178bdd83b4f39b7feabae90458cd98422eeb4f9502",
        prod: "8cbd7e0eb4c681498b5ef2ff4c79bfed3869d9a3cc4ce00e110cfa38560d0a05",
    },
    ScalarCase {
        a: "265670b53ffed1c9bc3c455dcb2eba33fb353db8053ad8453064d2665bb24105",
        b: "561200a661035e0ec51363df98aadeaa358023a741875ec7972c25f1c2398603",
        sum: "7c68705ba10130d88150a83c64d998de30b6605f47c1360dc890f7571eecc708",
        prod: "cefcbdc8c54c9c2e20f1ce581fa0a530cc051e25db0ac574bfe3f03d863b6002",
    },
    ScalarCase {
        a: "72f15e3c18bd44508561f0c2a12bed695c942f7297bed0f5a41621f3b761dd0c",
        b: "76e6f38a4b2846d082cb90c765b96bac774309c9b7bdb91e1706ad9f33ec6903",
        sum: "fb035d6a498278c8319089e728eb7901d4d7383b4f7c8a14bc1cce92eb4d4700",
        prod: "1d1616a8167f95bcf2779a8cbbf50b6da2cf4c07c0a813adb2b77d7e3a69f30f",
    },
    ScalarCase {
        a: "862a49424695e3064dcae5b16f88c545e85a18be615ed2e3832164064f7d1409",
        b: "f3c6bc11b68842f76b09b606e1f6aa9245fd36dcd46926879d2cf6384ee6e403",
        sum: "79f10554fc1d26feb8d39bb8507f70d82d584f9a36c8f86a214e5a3f9d63f90c",
        prod: "0c6003a27c5bf54066df248932b2f2151ee579b5bdea9e67ae0edb4de9ff8f0d",
    },
    ScalarCase {
        a: "09ac141d8d1107da49ef7735570f04ac1894e75fcfdec0415c4d1e57f88a030a",
        b: "152391c94d47604c225804d72dbc494a6d0afa1ac88204e1a8fa3befe46b6800",
        sum: "1ecfa5e6da5867266c477c0c85cb4df6859ee17a9761c52205485a46ddf66b0a",
        prod: "c7e663405aca16b051b7774cf9740a48590e802b28ab240f9123aadbde45ea04",
    },
    ScalarCase {
        a: "cc864fde323eca3be35c773bef018f8437e71fe05b5cc5e49e5c3d88eda66d0d",
        b: "a150f657e087dc3a55e5317ec7e2fa817d5f90a70a4c14e1ff0725b7c1e4c30e",
        sum: "800350d9f862941e62a5b116d8eaaaf1b446b08766a8d9c59e64623faf8b310c",
        prod: "0ac43620b7bbefa8ffe21d24a76be86ab1eea3aa987c91bc9c865e8e7d6eac0e",
    },
    ScalarCase {
        a: "abc0a47ccc1753052d73273768f4a559435c48f29327817e93fbc83c201e900c",
        b: "0a1c4fa9cbd34e017411113fe5685a9e7b5a25755792d6b40e23abda98385e08",
        sum: "c808fec87d888faecae740d36e6321e3beb66d67ebb95733a21e7417b956ee04",
        prod: "f944afb299414d1f7a98fcab73bc0d900e3264ab8bc9e81ea73fe69d5d97b500",
    },
    ScalarCase {
        a: "5947934b9a739859b9e925d4c1a5ad6514aea9256bf55210e65596d30110790c",
        b: "56df7decca2b950cf7a7a9cea1db955c3c4b19cb164704ccb33a9c6f8fc8cd0a",
        sum: "c2521bdb4a3c1b0edaf4d7ff848764ad50f9c2f0813c57dc9990324391d84607",
        prod: "f6e616c6c32c128866bbee16a55c9fa14328233af700888925193469d748430d",
    },
    ScalarCase {
        a: "ec85424e57f17eacdfa5a75c3412e30fc16a5dc609c0466a01fc28b0195b0704",
        b: "542cce4053d1d465d0ad4b614807dac3e1b8829f99cafe87ad25449cf023a60b",
        sum: "40b2108faac25312b053f3bd7c19bdd3a223e065a38a45f2ae216d4c0a7fad0f",
        prod: "f66add2db5cf7818f550a2558a4ab590342ed1d5e22167adaf5b79a77e69a900",
    },
    ScalarCase {
        a: "6cdcfc43bfde3fb29d9d6d8b28ec622ab1c19aef177240fdfc9644176cfa2e06",
        b: "76101c63d693e6ad72da529b35f2483b9192409aa76fa0bd1ad1c03d7124eb04",
        sum: "e2ec18a7957226601078c0265edeab654254db89bfe1e0ba17680555dd1e1a0b",
        prod: "2f5b6ebb799488fd764141989397fb31131cb300957bac33258989ad8e16000b",
    },
    ScalarCase {
        a: "869b4443c882127de99d200f264c69a406b6e0329f18271b2b8d46052fe7000b",
        b: "6667571498cae5aab7b511facbc3026a6d97f2744475192d3e581d28bb17ef03",
        sum: "ec029c57604df827a1533209f20f6c0e744dd3a7e38d404869e5632deafeef0e",
        prod: "d94aa5f0b767b60709eb1803b0e7afeeae2c96f3cf903f68367d0e99272a7804",
    },
    ScalarCase {
        a: "8fc9f855748e88dfee001db658e1d7a574f3defbe366fd380450412333c04f0f",
        b: "4c97bd9886ef1dcde5a5c8c0f2f704d7890ad65006c99b787a83c770cb7fd80a",
        sum: "ee8cc091e01a9454fe09eed36cdffd67fefdb44cea2f99b17ed30894fe3f280a",
        prod: "36007f18d3d49afbdee95d8cefd4a461e755ad75d4b1fdb18d5533d7abb8fb05",
    },
    ScalarCase {
        a: "864438baf585b0ba4e138e6560bd729c5036a7d2d1ed09055baea1a67f32f90b",
        b: "754fe6a0edf6d73987b5f7eae854f7ea55be53862bd31b2d3d32ca7b526c3403",
        sum: "fb931e5be37c88f4d5c8855049126a87a6f4fa58fdc0253298e06b22d29e2d0f",
        prod: "3de7da510e60291de9c2f72537bd7a4e44f13a5992a86599e278e0733c4ba608",
    },
    ScalarCase {
        a: "bf9f038f1e33304a7220d4c55391c3134910f59a25739b214b43a6d1c602df02",
        b: "038274d4c28e411518561aba03b2157e6ac3297f446f14cf920412590afbba08",
        sum: "c2217863e1c1715f8a76ee7f5743d991b3d31e1a6ae2aff0dd47b82ad1fd990b",
        prod: "a25a50002efed093016d7f217ed23906ac60794e1e8749f86623b53e893da805",
    },
    ScalarCase {
        a: "2583905dedf4ac4555993d2daff2c9928e1efd40585c3f6ef54b1c2b57eb630f",
        b: "86e8f8059258315223347a236db245502a2168d498c9f10cb18f98f130a0350f",
        sum: "be97930665eacb3fa230c0ad3dab30ceb83f6515f125317ba6dbb41c888b990e",
        prod: "538a4528cf42c7d9ad6e60738f43dabfdf99397695547c6054e13c598a9f2904",
    },
    ScalarCase {
        a: "5fc0557847c719647ab3ef0d71f65c37dd45e1d387be25d7c53ac3810e3db000",
        b: "a67c49b8dd88e84a2de14bac5e7e2a640b37cacf452893928d464785ab238d03",
        sum: "053d9f30255002afa7943bbacf74879be87caba3cde6b86953810a07ba603d04",
        prod: "3c07bf12da49232e12375e92792f4d64beb200c1e1c86996aa95741f0e64a10f",
    },
    ScalarCase {
        a: "0ce4d58b550b18ae9f5c49964670bf52d3464e9c4a4a2f053d6ae05e9243ef01",
        b: "948fcef362088f9316b9c04a071a66c2a9cdc4029f7e58a0e39790c266796904",
        sum: "a073a47fb813a741b6150ae14d8a25157d14139fe9c887a520027121f9bc5806",
        prod: "64df8ef3df692cfc5ee7d1b88c318d17571a65a3a3e9e940b82a2f09fdb3f90b",
    },
];

#[test]
fn field_arithmetic_matches_reference_bigints() {
    for (i, case) in FIELD_CASES.iter().enumerate() {
        let (a, b) = (fe(case.a), fe(case.b));
        assert!(a.add(b).ct_eq(fe(case.sum)), "case {i}: sum");
        assert!(a.mul(b).ct_eq(fe(case.prod)), "case {i}: prod");
        assert!(a.invert().ct_eq(fe(case.a_inv)), "case {i}: invert");
        // And the encodings are canonical round-trips.
        assert_eq!(fe(case.prod).to_bytes().to_vec(), {
            let mut bytes = [0u8; 32];
            for (j, byte) in bytes.iter_mut().enumerate() {
                *byte = u8::from_str_radix(&case.prod[2 * j..2 * j + 2], 16).unwrap();
            }
            bytes.to_vec()
        });
    }
}

#[test]
fn scalar_arithmetic_matches_reference_bigints() {
    for (i, case) in SCALAR_CASES.iter().enumerate() {
        let (a, b) = (sc(case.a), sc(case.b));
        assert_eq!(a.add(b), sc(case.sum), "case {i}: sum");
        assert_eq!(a.mul(b), sc(case.prod), "case {i}: prod");
    }
}

// Generator (Python 3, seed 20260704):
//   p = 2**255 - 19; L = 2**252 + 27742317777372353535851937790883648493
//   sum/prod/inv computed with native bigints and serialized little-endian.
