//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;

use proxy_crypto::ct::ct_eq;
use proxy_crypto::ed25519::edwards::Point;
use proxy_crypto::ed25519::field::Fe;
use proxy_crypto::ed25519::scalar::Scalar;
use proxy_crypto::ed25519::SigningKey;
use proxy_crypto::hmac::HmacSha256;
use proxy_crypto::keys::{Nonce, SymmetricKey};
use proxy_crypto::seal;
use proxy_crypto::sha256::Sha256;
use proxy_crypto::{chacha20, sha512::Sha512};

proptest! {
    #[test]
    fn ct_eq_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                              b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                         split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                         split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha512::digest(&data));
    }

    #[test]
    fn hmac_distinguishes_keys(key1 in proptest::collection::vec(any::<u8>(), 1..64),
                               key2 in proptest::collection::vec(any::<u8>(), 1..64),
                               data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let t1 = HmacSha256::mac(&key1, &data);
        let t2 = HmacSha256::mac(&key2, &data);
        if key1 == key2 {
            prop_assert_eq!(t1, t2);
        } else {
            // Collisions are cryptographically negligible.
            prop_assert_ne!(t1, t2);
        }
    }

    #[test]
    fn chacha20_round_trips(key in any::<[u8; 32]>(),
                            nonce in any::<[u8; 12]>(),
                            data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let ct = chacha20::encrypt(&key, &nonce, &data);
        prop_assert_eq!(chacha20::decrypt(&key, &nonce, &ct), data);
    }

    #[test]
    fn seal_round_trips_and_rejects_tampering(key in any::<[u8; 32]>(),
                                              nonce in any::<[u8; 12]>(),
                                              aad in proptest::collection::vec(any::<u8>(), 0..32),
                                              data in proptest::collection::vec(any::<u8>(), 0..128),
                                              flip in any::<(usize, u8)>()) {
        let k = SymmetricKey::from_bytes(key);
        let sealed = seal::seal_with_nonce(&k, &Nonce::from_bytes(nonce), &aad, &data);
        prop_assert_eq!(seal::open(&k, &aad, &sealed).unwrap(), data);
        let (pos, bit) = flip;
        let mut bad = sealed.clone();
        let idx = pos % bad.len();
        let mask = 1u8 << (bit % 8);
        bad[idx] ^= mask;
        prop_assert!(seal::open(&k, &aad, &bad).is_err());
    }

    #[test]
    fn field_add_mul_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (fa, fb, fc) = (Fe::from_u64(a), Fe::from_u64(b), Fe::from_u64(c));
        prop_assert!(fa.add(fb).ct_eq(fb.add(fa)));
        prop_assert!(fa.mul(fb).ct_eq(fb.mul(fa)));
        prop_assert!(fa.mul(fb.add(fc)).ct_eq(fa.mul(fb).add(fa.mul(fc))));
        prop_assert!(fa.sub(fa).ct_eq(Fe::ZERO));
    }

    #[test]
    fn field_bytes_round_trip(bytes in any::<[u8; 32]>()) {
        // Canonicalize once, then the encoding must be a fixed point.
        let x = Fe::from_bytes(&bytes);
        let canon = x.to_bytes();
        prop_assert_eq!(Fe::from_bytes(&canon).to_bytes(), canon);
    }

    #[test]
    fn scalar_ring_laws(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let sa = Scalar::from_bytes_mod_order(&a);
        let sb = Scalar::from_bytes_mod_order(&b);
        prop_assert_eq!(sa.add(sb), sb.add(sa));
        prop_assert_eq!(sa.mul(sb), sb.mul(sa));
        prop_assert_eq!(sa.mul(Scalar::ONE), sa);
        prop_assert_eq!(sa.mul(Scalar::ZERO), Scalar::ZERO);
    }

    #[test]
    fn scalar_mul_distributes_over_point_add(a in 1u64..10_000, b in 1u64..10_000) {
        let base = Point::basepoint();
        let lhs = base.mul_scalar(&Scalar::from_u64(a).add(Scalar::from_u64(b)));
        let rhs = base.mul_scalar(&Scalar::from_u64(a)).add(&base.mul_scalar(&Scalar::from_u64(b)));
        prop_assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn signatures_verify_and_bind_message(seed in any::<[u8; 32]>(),
                                          msg in proptest::collection::vec(any::<u8>(), 0..64),
                                          other in proptest::collection::vec(any::<u8>(), 0..64)) {
        let sk = SigningKey::from_seed(&seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
        if msg != other {
            prop_assert!(sk.verifying_key().verify(&other, &sig).is_err());
        }
    }

    /// The windowed paths are exactly the double-and-add reference: wNAF
    /// single-scalar, the fixed-base table, and both Straus variants all
    /// agree with `mul_scalar` on arbitrary scalars.
    #[test]
    fn windowed_scalar_mul_matches_double_and_add(ka in any::<[u8; 32]>(),
                                                  kb in any::<[u8; 32]>(),
                                                  point_seed in 1u64..1_000_000) {
        let sa = Scalar::from_bytes_mod_order(&ka);
        let sb = Scalar::from_bytes_mod_order(&kb);
        let b = Point::basepoint();
        let p = b.mul_scalar(&Scalar::from_u64(point_seed));

        prop_assert!(p.mul_wnaf(&sa).eq_point(&p.mul_scalar(&sa)));
        prop_assert!(Point::mul_basepoint(&sa).eq_point(&b.mul_scalar(&sa)));

        let separate = b.mul_scalar(&sa).add(&p.mul_scalar(&sb));
        prop_assert!(Point::double_scalar_mul(&sa, &b, &sb, &p).eq_point(&separate));
        prop_assert!(Point::double_scalar_mul_basepoint(&sa, &sb, &p).eq_point(&separate));
    }

    /// wNAF and radix-16 digit decompositions reconstruct the scalar.
    #[test]
    fn scalar_decompositions_reconstruct(bytes in any::<[u8; 32]>(), w in 2usize..9) {
        let s = Scalar::from_bytes_mod_order(&bytes);
        let naf = s.non_adjacent_form(w);
        let mut acc = Scalar::ZERO;
        for &d in naf.iter().rev() {
            acc = acc.add(acc);
            let mag = Scalar::from_u64(u64::from(d.unsigned_abs()));
            acc = if d >= 0 { acc.add(mag) } else { acc.sub(mag) };
        }
        prop_assert_eq!(acc, s);

        let digits = s.to_radix16();
        let mut acc = Scalar::ZERO;
        for &d in digits.iter().rev() {
            for _ in 0..4 { acc = acc.add(acc); }
            let mag = Scalar::from_u64(u64::from(d.unsigned_abs()));
            acc = if d >= 0 { acc.add(mag) } else { acc.sub(mag) };
        }
        prop_assert_eq!(acc, s);
    }

    /// Batch verification agrees with sequential verification: a batch of
    /// valid signatures passes, and corrupting any single signature,
    /// message, or key in the batch makes it fail.
    #[test]
    fn batch_agrees_with_sequential(seeds in proptest::collection::vec(any::<[u8; 32]>(), 2..6),
                                    corrupt in any::<(bool, usize, u8)>()) {
        let keys: Vec<SigningKey> = seeds.iter().map(SigningKey::from_seed).collect();
        let messages: Vec<Vec<u8>> = seeds.iter().map(|s| s[..8].to_vec()).collect();
        let mut sigs: Vec<proxy_crypto::ed25519::Signature> =
            keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let vks: Vec<proxy_crypto::ed25519::VerifyingKey> =
            keys.iter().map(SigningKey::verifying_key).collect();

        let (do_corrupt, idx, byte) = corrupt;
        let idx = idx % sigs.len();
        if do_corrupt {
            // Flip one bit somewhere in one signature.
            sigs[idx].0[usize::from(byte) % 64] ^= 1 << (byte % 8);
        }

        let items: Vec<(&[u8], &proxy_crypto::ed25519::Signature, &proxy_crypto::ed25519::VerifyingKey)> =
            messages.iter().zip(&sigs).zip(&vks)
                .map(|((m, s), k)| (m.as_slice(), s, k))
                .collect();
        let sequential_ok = items.iter().all(|(m, s, k)| k.verify(m, s).is_ok());
        prop_assert_eq!(proxy_crypto::ed25519::verify_batch(&items).is_ok(), sequential_ok);
    }
}
