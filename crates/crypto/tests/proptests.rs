//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;

use proxy_crypto::ct::ct_eq;
use proxy_crypto::ed25519::edwards::Point;
use proxy_crypto::ed25519::field::Fe;
use proxy_crypto::ed25519::scalar::Scalar;
use proxy_crypto::ed25519::SigningKey;
use proxy_crypto::hmac::HmacSha256;
use proxy_crypto::keys::{Nonce, SymmetricKey};
use proxy_crypto::seal;
use proxy_crypto::sha256::Sha256;
use proxy_crypto::{chacha20, sha512::Sha512};

proptest! {
    #[test]
    fn ct_eq_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                              b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                         split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512),
                                         split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha512::digest(&data));
    }

    #[test]
    fn hmac_distinguishes_keys(key1 in proptest::collection::vec(any::<u8>(), 1..64),
                               key2 in proptest::collection::vec(any::<u8>(), 1..64),
                               data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let t1 = HmacSha256::mac(&key1, &data);
        let t2 = HmacSha256::mac(&key2, &data);
        if key1 == key2 {
            prop_assert_eq!(t1, t2);
        } else {
            // Collisions are cryptographically negligible.
            prop_assert_ne!(t1, t2);
        }
    }

    #[test]
    fn chacha20_round_trips(key in any::<[u8; 32]>(),
                            nonce in any::<[u8; 12]>(),
                            data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let ct = chacha20::encrypt(&key, &nonce, &data);
        prop_assert_eq!(chacha20::decrypt(&key, &nonce, &ct), data);
    }

    #[test]
    fn seal_round_trips_and_rejects_tampering(key in any::<[u8; 32]>(),
                                              nonce in any::<[u8; 12]>(),
                                              aad in proptest::collection::vec(any::<u8>(), 0..32),
                                              data in proptest::collection::vec(any::<u8>(), 0..128),
                                              flip in any::<(usize, u8)>()) {
        let k = SymmetricKey::from_bytes(key);
        let sealed = seal::seal_with_nonce(&k, &Nonce::from_bytes(nonce), &aad, &data);
        prop_assert_eq!(seal::open(&k, &aad, &sealed).unwrap(), data);
        let (pos, bit) = flip;
        let mut bad = sealed.clone();
        let idx = pos % bad.len();
        let mask = 1u8 << (bit % 8);
        bad[idx] ^= mask;
        prop_assert!(seal::open(&k, &aad, &bad).is_err());
    }

    #[test]
    fn field_add_mul_laws(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (fa, fb, fc) = (Fe::from_u64(a), Fe::from_u64(b), Fe::from_u64(c));
        prop_assert!(fa.add(fb).ct_eq(fb.add(fa)));
        prop_assert!(fa.mul(fb).ct_eq(fb.mul(fa)));
        prop_assert!(fa.mul(fb.add(fc)).ct_eq(fa.mul(fb).add(fa.mul(fc))));
        prop_assert!(fa.sub(fa).ct_eq(Fe::ZERO));
    }

    #[test]
    fn field_bytes_round_trip(bytes in any::<[u8; 32]>()) {
        // Canonicalize once, then the encoding must be a fixed point.
        let x = Fe::from_bytes(&bytes);
        let canon = x.to_bytes();
        prop_assert_eq!(Fe::from_bytes(&canon).to_bytes(), canon);
    }

    #[test]
    fn scalar_ring_laws(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let sa = Scalar::from_bytes_mod_order(&a);
        let sb = Scalar::from_bytes_mod_order(&b);
        prop_assert_eq!(sa.add(sb), sb.add(sa));
        prop_assert_eq!(sa.mul(sb), sb.mul(sa));
        prop_assert_eq!(sa.mul(Scalar::ONE), sa);
        prop_assert_eq!(sa.mul(Scalar::ZERO), Scalar::ZERO);
    }

    #[test]
    fn scalar_mul_distributes_over_point_add(a in 1u64..10_000, b in 1u64..10_000) {
        let base = Point::basepoint();
        let lhs = base.mul_scalar(&Scalar::from_u64(a).add(Scalar::from_u64(b)));
        let rhs = base.mul_scalar(&Scalar::from_u64(a)).add(&base.mul_scalar(&Scalar::from_u64(b)));
        prop_assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn signatures_verify_and_bind_message(seed in any::<[u8; 32]>(),
                                          msg in proptest::collection::vec(any::<u8>(), 0..64),
                                          other in proptest::collection::vec(any::<u8>(), 0..64)) {
        let sk = SigningKey::from_seed(&seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
        if msg != other {
            prop_assert!(sk.verifying_key().verify(&other, &sig).is_err());
        }
    }
}
