//! Authenticated symmetric sealing (encrypt-then-MAC).
//!
//! This is the workspace's equivalent of Kerberos "encrypt under the session
//! key": confidentiality from ChaCha20, integrity from HMAC-SHA-256, with
//! independent subkeys derived from the master key. Used to seal tickets,
//! proxy certificates (paper §6.2), and proxy keys in transit (Fig. 3's
//! `{K_proxy}K_session`).

use rand::RngCore;

use crate::chacha20;
use crate::ct::ct_eq;
use crate::hmac::{derive_key, HmacSha256};
use crate::keys::{Nonce, SymmetricKey};

/// Length of the integrity tag appended to sealed messages.
pub const TAG_LEN: usize = 32;

/// Errors from [`open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// Ciphertext too short to contain nonce and tag.
    Truncated,
    /// Integrity tag did not verify: wrong key or tampered ciphertext.
    BadTag,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Truncated => write!(f, "sealed message truncated"),
            SealError::BadTag => write!(f, "seal integrity check failed"),
        }
    }
}

impl std::error::Error for SealError {}

fn subkeys(key: &SymmetricKey) -> ([u8; 32], [u8; 32]) {
    (
        derive_key(key.as_bytes(), b"proxy-aa seal enc"),
        derive_key(key.as_bytes(), b"proxy-aa seal mac"),
    )
}

/// Seals `plaintext` (+ authenticated `aad`) under `key` with a fresh nonce
/// drawn from `rng`.
///
/// Wire layout: `nonce (12) || ciphertext || tag (32)` where
/// `tag = HMAC(mac_key, nonce || aad_len_le64 || aad || ciphertext)`.
pub fn seal<R: RngCore>(key: &SymmetricKey, aad: &[u8], plaintext: &[u8], rng: &mut R) -> Vec<u8> {
    let nonce = Nonce::generate(rng);
    seal_with_nonce(key, &nonce, aad, plaintext)
}

/// Deterministic variant of [`seal`] for tests and derived-nonce protocols.
#[must_use]
pub fn seal_with_nonce(key: &SymmetricKey, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let (enc_key, mac_key) = subkeys(key);
    let ct = chacha20::encrypt(&enc_key, nonce.as_bytes(), plaintext);
    let mut out = Vec::with_capacity(chacha20::NONCE_LEN + ct.len() + TAG_LEN);
    out.extend_from_slice(nonce.as_bytes());
    out.extend_from_slice(&ct);
    let mut mac = HmacSha256::new(&mac_key);
    mac.update(nonce.as_bytes());
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(aad);
    mac.update(&ct);
    out.extend_from_slice(&mac.finalize());
    out
}

/// Wire length of a sealed 32-byte key: `nonce || ciphertext(32) || tag`.
pub const SEALED_KEY32_LEN: usize = chacha20::NONCE_LEN + 32 + TAG_LEN;

/// Seals a fixed 32-byte key under `key` without heap allocation.
///
/// Byte-identical to `seal(key, aad, key32, rng)` for the same nonce; the
/// fixed-width output lets hot paths that seal proxy keys (one per grant)
/// keep the sealed form inline instead of boxing it. [`open`] accepts the
/// result unchanged.
pub fn seal_key32<R: RngCore>(
    key: &SymmetricKey,
    aad: &[u8],
    key32: &[u8; 32],
    rng: &mut R,
) -> [u8; SEALED_KEY32_LEN] {
    let nonce = Nonce::generate(rng);
    seal_key32_with_nonce(key, &nonce, aad, key32)
}

/// Deterministic variant of [`seal_key32`] for tests and derived-nonce
/// protocols.
#[must_use]
pub fn seal_key32_with_nonce(
    key: &SymmetricKey,
    nonce: &Nonce,
    aad: &[u8],
    key32: &[u8; 32],
) -> [u8; SEALED_KEY32_LEN] {
    let (enc_key, mac_key) = subkeys(key);
    let mut out = [0u8; SEALED_KEY32_LEN];
    out[..chacha20::NONCE_LEN].copy_from_slice(nonce.as_bytes());
    let ct_end = chacha20::NONCE_LEN + 32;
    out[chacha20::NONCE_LEN..ct_end].copy_from_slice(key32);
    chacha20::xor_stream(
        &enc_key,
        1,
        nonce.as_bytes(),
        &mut out[chacha20::NONCE_LEN..ct_end],
    );
    let mut mac = HmacSha256::new(&mac_key);
    mac.update(nonce.as_bytes());
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(aad);
    mac.update(&out[chacha20::NONCE_LEN..ct_end]);
    let tag = mac.finalize();
    out[ct_end..].copy_from_slice(&tag);
    out
}

/// Opens a message produced by [`seal`], verifying integrity before
/// returning the plaintext.
///
/// # Errors
///
/// * [`SealError::Truncated`] — `sealed` shorter than nonce + tag.
/// * [`SealError::BadTag`] — wrong key, wrong `aad`, or tampering.
pub fn open(key: &SymmetricKey, aad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, SealError> {
    if sealed.len() < chacha20::NONCE_LEN + TAG_LEN {
        return Err(SealError::Truncated);
    }
    let (nonce_bytes, rest) = sealed.split_at(chacha20::NONCE_LEN);
    let (ct, tag) = rest.split_at(rest.len() - TAG_LEN);
    let (enc_key, mac_key) = subkeys(key);
    let mut mac = HmacSha256::new(&mac_key);
    mac.update(nonce_bytes);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(aad);
    mac.update(ct);
    if !ct_eq(&mac.finalize(), tag) {
        return Err(SealError::BadTag);
    }
    let nonce: [u8; chacha20::NONCE_LEN] = nonce_bytes.try_into().expect("split length");
    Ok(chacha20::decrypt(&enc_key, &nonce, ct))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> SymmetricKey {
        SymmetricKey::from_bytes([9u8; 32])
    }

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        let sealed = seal(&key(), b"ticket", b"session key material", &mut rng);
        let opened = open(&key(), b"ticket", &sealed).unwrap();
        assert_eq!(opened, b"session key material");
    }

    #[test]
    fn seal_key32_matches_generic_seal_and_opens() {
        let nonce = Nonce::from_bytes([3u8; 12]);
        let key32 = [0x42u8; 32];
        let fixed = seal_key32_with_nonce(&key(), &nonce, b"aad", &key32);
        let generic = seal_with_nonce(&key(), &nonce, b"aad", &key32);
        assert_eq!(fixed.as_slice(), generic.as_slice());
        assert_eq!(open(&key(), b"aad", &fixed).unwrap(), key32);
        let mut rng = StdRng::seed_from_u64(7);
        let sealed = seal_key32(&key(), b"aad", &key32, &mut rng);
        assert_eq!(sealed.len(), SEALED_KEY32_LEN);
        assert_eq!(open(&key(), b"aad", &sealed).unwrap(), key32);
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let sealed = seal(&key(), b"", b"secret", &mut rng);
        let other = SymmetricKey::from_bytes([8u8; 32]);
        assert_eq!(open(&other, b"", &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn wrong_aad_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let sealed = seal(&key(), b"context-a", b"secret", &mut rng);
        assert_eq!(open(&key(), b"context-b", &sealed), Err(SealError::BadTag));
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut sealed = seal(&key(), b"", b"secret payload", &mut rng);
        // Flip one bit in each position and ensure every mutation is caught.
        for i in 0..sealed.len() {
            sealed[i] ^= 1;
            assert_eq!(
                open(&key(), b"", &sealed),
                Err(SealError::BadTag),
                "byte {i}"
            );
            sealed[i] ^= 1;
        }
        assert!(open(&key(), b"", &sealed).is_ok());
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(open(&key(), b"", &[0u8; 10]), Err(SealError::Truncated));
        assert_eq!(open(&key(), b"", &[]), Err(SealError::Truncated));
    }

    #[test]
    fn empty_plaintext_allowed() {
        let mut rng = StdRng::seed_from_u64(1);
        let sealed = seal(&key(), b"aad", b"", &mut rng);
        assert_eq!(open(&key(), b"aad", &sealed).unwrap(), b"");
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = seal(&key(), b"", b"same message", &mut rng);
        let b = seal(&key(), b"", b"same message", &mut rng);
        assert_ne!(a, b);
        assert_eq!(
            open(&key(), b"", &a).unwrap(),
            open(&key(), b"", &b).unwrap()
        );
    }
}
