//! HMAC (RFC 2104 / FIPS 198-1) over SHA-256 and SHA-512.
//!
//! HMAC-SHA-256 is the *conventional cryptography* seal of the paper's §6.2:
//! a proxy certificate signed under a shared or session key. The tag doubles
//! as the proof-of-possession primitive for bearer proxies (signing a
//! challenge with the proxy key).

use crate::ct::ct_eq;
use crate::sha256::{self, Sha256};
use crate::sha512::{self, Sha512};

/// Size of an HMAC-SHA-256 tag in bytes.
pub const TAG_LEN_256: usize = sha256::DIGEST_LEN;
/// Size of an HMAC-SHA-512 tag in bytes.
pub const TAG_LEN_512: usize = sha512::DIGEST_LEN;

/// Incremental HMAC-SHA-256.
///
/// ```
/// use proxy_crypto::hmac::HmacSha256;
/// let tag = HmacSha256::mac(b"key", b"message");
/// assert!(HmacSha256::verify(b"key", b"message", &tag));
/// assert!(!HmacSha256::verify(b"key", b"tampered", &tag));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; sha256::BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a MAC context keyed with `key` (any length; long keys are
    /// pre-hashed per the RFC).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block = [0u8; sha256::BLOCK_LEN];
        if key.len() > sha256::BLOCK_LEN {
            let digest = Sha256::digest(key);
            block[..digest.len()].copy_from_slice(&digest);
        } else {
            block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = block;
        let mut opad = block;
        for b in ipad.iter_mut() {
            *b ^= 0x36;
        }
        for b in opad.iter_mut() {
            *b ^= 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        Self {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the final tag, consuming the context.
    #[must_use]
    pub fn finalize(self) -> [u8; TAG_LEN_256] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; TAG_LEN_256] {
        let mut m = Self::new(key);
        m.update(data);
        m.finalize()
    }

    /// Constant-time verification of `tag` over `data` under `key`.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        ct_eq(&Self::mac(key, data), tag)
    }
}

/// Incremental HMAC-SHA-512.
#[derive(Clone, Debug)]
pub struct HmacSha512 {
    inner: Sha512,
    opad_key: [u8; sha512::BLOCK_LEN],
}

impl HmacSha512 {
    /// Creates a MAC context keyed with `key`.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block = [0u8; sha512::BLOCK_LEN];
        if key.len() > sha512::BLOCK_LEN {
            let digest = Sha512::digest(key);
            block[..digest.len()].copy_from_slice(&digest);
        } else {
            block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = block;
        let mut opad = block;
        for b in ipad.iter_mut() {
            *b ^= 0x36;
        }
        for b in opad.iter_mut() {
            *b ^= 0x5c;
        }
        let mut inner = Sha512::new();
        inner.update(&ipad);
        Self {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the final tag, consuming the context.
    #[must_use]
    pub fn finalize(self) -> [u8; TAG_LEN_512] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha512::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot MAC of `data` under `key`.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> [u8; TAG_LEN_512] {
        let mut m = Self::new(key);
        m.update(data);
        m.finalize()
    }

    /// Constant-time verification of `tag` over `data` under `key`.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        ct_eq(&Self::mac(key, data), tag)
    }
}

/// Derives a subkey from `key` with domain separation label `label`
/// (single-block HKDF-like expand; sufficient for the fixed-size keys used
/// throughout this workspace).
#[must_use]
pub fn derive_key(key: &[u8], label: &[u8]) -> [u8; 32] {
    let mut m = HmacSha256::new(key);
    m.update(label);
    m.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        let tag512 = HmacSha512::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag512),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_repeated_bytes() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_prehashed() {
        // RFC 4231 case 6: 131-byte key.
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"proxy key";
        let data: Vec<u8> = (0u8..200).collect();
        let mut m = HmacSha256::new(key);
        for chunk in data.chunks(13) {
            m.update(chunk);
        }
        assert_eq!(m.finalize(), HmacSha256::mac(key, &data));
    }

    #[test]
    fn verify_rejects_wrong_key_and_data() {
        let tag = HmacSha256::mac(b"k1", b"data");
        assert!(HmacSha256::verify(b"k1", b"data", &tag));
        assert!(!HmacSha256::verify(b"k2", b"data", &tag));
        assert!(!HmacSha256::verify(b"k1", b"Data", &tag));
        assert!(!HmacSha256::verify(b"k1", b"data", &tag[..31]));
    }

    #[test]
    fn derive_key_separates_domains() {
        let a = derive_key(b"master", b"enc");
        let b = derive_key(b"master", b"mac");
        assert_ne!(a, b);
        assert_eq!(a, derive_key(b"master", b"enc"));
    }
}
