//! ChaCha20 stream cipher (RFC 8439).
//!
//! Used to protect proxy keys in transit — the paper's
//! `{K_proxy}K_session` in Fig. 3 — and as the confidentiality half of
//! [`crate::seal`].

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte keystream block for (`key`, `counter`, `nonce`).
#[must_use]
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865; // "expa"
    state[1] = 0x3320_646e; // "nd 3"
    state[2] = 0x7962_2d32; // "2-by"
    state[3] = 0x6b20_6574; // "te k"
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream into `data` in place, starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
///
/// # Panics
///
/// Panics if the keystream would exceed the 32-bit block counter
/// (`data.len() > (2^32 - initial_counter) * 64`); callers in this workspace
/// encrypt short certificates and keys, far below the limit.
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    initial_counter: u32,
    nonce: &[u8; NONCE_LEN],
    data: &mut [u8],
) {
    let blocks_needed = data.len().div_ceil(BLOCK_LEN) as u64;
    assert!(
        blocks_needed <= (u32::MAX as u64 - initial_counter as u64) + 1,
        "chacha20 counter overflow"
    );
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience: returns the encryption of `data` (counter starts at 1 as in
/// RFC 8439's AEAD construction, reserving block 0 for MAC subkeys).
#[must_use]
pub fn encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_stream(key, 1, nonce, &mut out);
    out
}

/// Convenience: decrypts data produced by [`encrypt`].
#[must_use]
pub fn decrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, data) // XOR stream is an involution
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, plaintext);
        assert_eq!(
            hex(&ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d"
        );
        assert_eq!(decrypt(&key, &nonce, &ct), plaintext);
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [0x42u8; KEY_LEN];
        let nonce = [0x24u8; NONCE_LEN];
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = encrypt(&key, &nonce, &data);
            assert_eq!(decrypt(&key, &nonce, &ct), data, "len {len}");
            if len > 0 {
                assert_ne!(ct, data, "ciphertext differs from plaintext, len {len}");
            }
        }
    }

    #[test]
    fn different_nonce_different_stream() {
        let key = [1u8; KEY_LEN];
        let a = encrypt(&key, &[0u8; NONCE_LEN], &[0u8; 64]);
        let b = encrypt(&key, &[1u8; NONCE_LEN], &[0u8; 64]);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [2u8; KEY_LEN];
        let nonce = [3u8; NONCE_LEN];
        // Encrypting 128 zero bytes must produce two *different* keystream blocks.
        let ct = encrypt(&key, &nonce, &[0u8; 128]);
        assert_ne!(ct[..64], ct[64..]);
    }
}
