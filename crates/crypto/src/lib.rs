//! # proxy-crypto
//!
//! Self-contained cryptographic substrate for the restricted-proxy
//! reproduction of Neuman's *Proxy-Based Authorization and Accounting for
//! Distributed Systems* (ICDCS 1993).
//!
//! The paper's mechanism is applied cryptography: a proxy is a certificate
//! *sealed* by its grantor plus a *proxy key* proven by the bearer. Rather
//! than pulling in external crypto crates, this crate implements everything
//! the protocols need from primary sources:
//!
//! * [`sha256`] / [`sha512`] — FIPS 180-4 hash functions.
//! * [`hmac`] — RFC 2104 keyed MACs over both hashes.
//! * [`chacha20`] — RFC 8439 stream cipher, used to protect proxy keys in
//!   transit (the paper's "{K_proxy}K_session").
//! * [`seal`] — encrypt-then-MAC authenticated sealing, the moral
//!   equivalent of encrypting a certificate under a session key in
//!   Kerberos-style proxies (paper §6.2).
//! * [`ed25519`] — RFC 8032 signatures (field, scalar, and point
//!   arithmetic implemented here), the public-key backend of paper §6.1.
//! * [`keys`] — key and nonce newtypes shared by the higher layers.
//! * [`ct`] — constant-time comparison helpers.
//!
//! Conventional (shared-key) proxies sign certificates with HMAC; public-key
//! proxies sign with Ed25519. Higher layers choose via the backend
//! abstraction in the `restricted-proxy` crate.
//!
//! ## Example
//!
//! ```
//! use proxy_crypto::{ed25519::SigningKey, sha256::Sha256};
//!
//! let seed = [7u8; 32];
//! let sk = SigningKey::from_seed(&seed);
//! let sig = sk.sign(b"grant: read file f");
//! assert!(sk.verifying_key().verify(b"grant: read file f", &sig).is_ok());
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest[0], 0xba);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod ct;
pub mod ed25519;
pub mod hmac;
pub mod keys;
pub mod seal;
pub mod sha256;
pub mod sha512;

pub use keys::{KeyError, Nonce, SymmetricKey};
