//! Key and nonce newtypes shared by the higher protocol layers.
//!
//! Using distinct types for session keys, proxy keys, and nonces keeps the
//! protocol code honest about *which* secret is being used where — a proxy
//! key must never be confused with the session key protecting it in transit
//! (paper Fig. 3).

use std::fmt;

use rand::RngCore;

use crate::chacha20;

/// Error type for key material parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyError {
    /// Provided byte slice had the wrong length.
    WrongLength {
        /// Expected number of bytes.
        expected: usize,
        /// Actual number of bytes supplied.
        actual: usize,
    },
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::WrongLength { expected, actual } => {
                write!(
                    f,
                    "wrong key material length: expected {expected}, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for KeyError {}

/// A 256-bit symmetric key (session key, proxy key, or long-term key).
///
/// The `Debug` impl redacts the key bytes, and equality is constant-time
/// (see the manual [`PartialEq`] below) so comparing an attacker-supplied
/// key against a real one cannot leak matching-prefix length.
#[derive(Clone, Eq)]
pub struct SymmetricKey([u8; 32]);

impl PartialEq for SymmetricKey {
    fn eq(&self, other: &Self) -> bool {
        crate::ct::ct_eq(&self.0, &other.0)
    }
}

// Hash must stay consistent with the manual PartialEq above; ct_eq is plain
// byte equality with constant-time evaluation, so hashing the bytes agrees.
impl std::hash::Hash for SymmetricKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl SymmetricKey {
    /// Wraps raw key bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Parses a key from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::WrongLength`] if `bytes` is not 32 bytes.
    pub fn try_from_slice(bytes: &[u8]) -> Result<Self, KeyError> {
        let arr: [u8; 32] = bytes.try_into().map_err(|_| KeyError::WrongLength {
            expected: 32,
            actual: bytes.len(),
        })?;
        Ok(Self(arr))
    }

    /// Generates a fresh random key from `rng`.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill_bytes(&mut bytes);
        Self(bytes)
    }

    /// Exposes the raw key bytes (needed to feed MACs and ciphers).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymmetricKey(<redacted>)")
    }
}

/// A 96-bit nonce for [`crate::chacha20`] / [`crate::seal`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Nonce([u8; chacha20::NONCE_LEN]);

impl Nonce {
    /// Wraps raw nonce bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; chacha20::NONCE_LEN]) -> Self {
        Self(bytes)
    }

    /// Generates a fresh random nonce from `rng`.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; chacha20::NONCE_LEN];
        rng.fill_bytes(&mut bytes);
        Self(bytes)
    }

    /// Exposes the raw nonce bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; chacha20::NONCE_LEN] {
        &self.0
    }
}

impl fmt::Debug for Nonce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nonce(")?;
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_debug_redacts() {
        let key = SymmetricKey::from_bytes([7u8; 32]);
        let s = format!("{key:?}");
        assert!(s.contains("redacted"));
        assert!(!s.contains('7'));
    }

    #[test]
    fn key_equality_is_constant_time_byte_equality() {
        let a = SymmetricKey::from_bytes([7u8; 32]);
        let b = SymmetricKey::from_bytes([7u8; 32]);
        assert_eq!(a, b);
        // A single differing byte — anywhere, including the last —
        // must compare unequal through the ct_eq-backed impl.
        for i in [0usize, 15, 31] {
            let mut bytes = [7u8; 32];
            bytes[i] ^= 0x01;
            assert_ne!(a, SymmetricKey::from_bytes(bytes));
        }
    }

    #[test]
    fn try_from_slice_validates_length() {
        assert!(SymmetricKey::try_from_slice(&[0u8; 32]).is_ok());
        let err = SymmetricKey::try_from_slice(&[0u8; 31]).unwrap_err();
        assert_eq!(
            err,
            KeyError::WrongLength {
                expected: 32,
                actual: 31
            }
        );
        assert!(err.to_string().contains("31"));
    }

    #[test]
    fn generate_is_seeded_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(
            SymmetricKey::generate(&mut a).as_bytes(),
            SymmetricKey::generate(&mut b).as_bytes()
        );
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(
            SymmetricKey::generate(&mut StdRng::seed_from_u64(1)).as_bytes(),
            SymmetricKey::generate(&mut c).as_bytes()
        );
    }

    #[test]
    fn nonce_debug_is_hex() {
        let n = Nonce::from_bytes([0xab; 12]);
        assert_eq!(format!("{n:?}"), format!("Nonce({})", "ab".repeat(12)));
    }
}
