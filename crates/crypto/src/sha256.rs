//! SHA-256 (FIPS 180-4).
//!
//! Incremental and one-shot interfaces. Used by [`crate::hmac`] for
//! conventional-key proxy certificate seals and by the canonical encoding
//! layer for content digests.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes (relevant to HMAC key preparation).
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use proxy_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot digest of `data`.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pads and produces the final digest, consuming the hasher.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian length.
        self.update_padding(bit_len);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self, bit_len: u64) {
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let rem = self.buf_len;
        // Number of zero bytes so that rem + 1 + zeros + 8 ≡ 0 (mod 64).
        let pad_len = if rem < 56 { 56 - rem } else { 120 - rem };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // Feed padding through `update` without double-counting length.
        let saved = self.total_len;
        self.update(&pad[..pad_len + 8]);
        self.total_len = saved;
        debug_assert_eq!(self.buf_len, 0);
    }

    // Fully unrolled rounds with a rolling 16-word message schedule.
    // The textbook formulation (`h = g; g = f; …` in a 64-iteration
    // loop) defeats the optimizer's register allocation; assigning the
    // rotated variable roles per call site keeps the working state in
    // registers and roughly halves the per-block cost, which the
    // HMAC-sealed grant/verify hot paths feel directly.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        #[inline(always)]
        fn lo0(x: u32) -> u32 {
            x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
        }
        #[inline(always)]
        fn lo1(x: u32) -> u32 {
            x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
        }

        let mut w = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        /// One round, with the eight working variables in rotated
        /// positions so nothing is shuffled between rounds.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident,
             $kw:expr) => {{
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 = $h.wrapping_add(s1).wrapping_add(ch).wrapping_add($kw);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0.wrapping_add(maj));
            }};
        }
        /// Sixteen rounds against the current schedule window.
        macro_rules! sixteen {
            ($base:expr) => {{
                round!(a, b, c, d, e, f, g, h, K[$base].wrapping_add(w[0]));
                round!(h, a, b, c, d, e, f, g, K[$base + 1].wrapping_add(w[1]));
                round!(g, h, a, b, c, d, e, f, K[$base + 2].wrapping_add(w[2]));
                round!(f, g, h, a, b, c, d, e, K[$base + 3].wrapping_add(w[3]));
                round!(e, f, g, h, a, b, c, d, K[$base + 4].wrapping_add(w[4]));
                round!(d, e, f, g, h, a, b, c, K[$base + 5].wrapping_add(w[5]));
                round!(c, d, e, f, g, h, a, b, K[$base + 6].wrapping_add(w[6]));
                round!(b, c, d, e, f, g, h, a, K[$base + 7].wrapping_add(w[7]));
                round!(a, b, c, d, e, f, g, h, K[$base + 8].wrapping_add(w[8]));
                round!(h, a, b, c, d, e, f, g, K[$base + 9].wrapping_add(w[9]));
                round!(g, h, a, b, c, d, e, f, K[$base + 10].wrapping_add(w[10]));
                round!(f, g, h, a, b, c, d, e, K[$base + 11].wrapping_add(w[11]));
                round!(e, f, g, h, a, b, c, d, K[$base + 12].wrapping_add(w[12]));
                round!(d, e, f, g, h, a, b, c, K[$base + 13].wrapping_add(w[13]));
                round!(c, d, e, f, g, h, a, b, K[$base + 14].wrapping_add(w[14]));
                round!(b, c, d, e, f, g, h, a, K[$base + 15].wrapping_add(w[15]));
            }};
        }
        /// Advances the rolling schedule window by sixteen words:
        /// `w[t] += σ0(w[t+1]) + w[t+9] + σ1(w[t+14])` (indices mod 16).
        macro_rules! advance {
            () => {{
                let mut t = 0;
                while t < 16 {
                    w[t] = w[t]
                        .wrapping_add(lo0(w[(t + 1) & 15]))
                        .wrapping_add(w[(t + 9) & 15])
                        .wrapping_add(lo1(w[(t + 14) & 15]));
                    t += 1;
                }
            }};
        }

        sixteen!(0);
        advance!();
        sixteen!(16);
        advance!();
        sixteen!(32);
        advance!();
        sixteen!(48);

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let expect = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding across the 55/56/63/64-byte boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "len {len}");
        }
    }
}
