//! Ed25519 signatures (RFC 8032), implemented from the ground up.
//!
//! This is the *public-key cryptography* backend of the paper's §6.1: a
//! grantor signs a proxy certificate with its private key, and any
//! end-server that can obtain the grantor's public key (from a name or
//! authentication server) verifies the proxy offline.
//!
//! Submodules: [`field`] (GF(2^255−19)), [`scalar`] (mod-ℓ arithmetic),
//! [`edwards`] (curve points). The signing interface lives here.
//!
//! Scalar multiplication is variable-time and windowed: signing uses a
//! precomputed radix-16 basepoint table, verification a width-8/width-5
//! wNAF Straus double-scalar multiplication, and [`verify_batch`] folds
//! many signatures into one random-coefficient multiscalar equation. The
//! plain double-and-add ladder survives as the tested-against reference
//! ([`edwards::Point::mul_scalar`]). None of this is hardened against
//! local side-channel observers — appropriate for a research simulation,
//! not production TLS (see DESIGN.md, "Crypto performance").

pub mod edwards;
pub mod field;
pub mod scalar;

use std::sync::atomic::{AtomicU64, Ordering};

use rand::RngCore;

use crate::sha512::Sha512;
use edwards::{DecompressError, Point};
use scalar::Scalar;

/// Length of an Ed25519 signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a secret seed in bytes.
pub const SEED_LEN: usize = 32;

/// Error returned when a signature fails to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ed25519 signature verification failed")
    }
}

impl std::error::Error for SignatureError {}

/// A detached Ed25519 signature (R ‖ s).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl Signature {
    /// Parses a signature from a slice.
    ///
    /// # Errors
    ///
    /// Fails when `bytes` is not exactly 64 bytes (content validation
    /// happens at verification time).
    pub fn try_from_slice(bytes: &[u8]) -> Result<Self, SignatureError> {
        let arr: [u8; SIGNATURE_LEN] = bytes.try_into().map_err(|_| SignatureError)?;
        Ok(Self(arr))
    }

    /// The raw signature bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; SIGNATURE_LEN] {
        &self.0
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature(")?;
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey([u8; PUBLIC_KEY_LEN]);

impl VerifyingKey {
    /// Wraps raw public-key bytes (validated lazily at verification).
    #[must_use]
    pub fn from_bytes(bytes: [u8; PUBLIC_KEY_LEN]) -> Self {
        Self(bytes)
    }

    /// The raw encoded point.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; PUBLIC_KEY_LEN] {
        &self.0
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError`] when the public key or `R` fail to
    /// decompress, `s` is non-canonical (≥ ℓ), or the verification equation
    /// `[s]B = R + [k]A` does not hold.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let a = Point::decompress(&self.0).map_err(|DecompressError| SignatureError)?;
        let r_bytes: [u8; 32] = signature.0[..32].try_into().expect("split");
        let s_bytes: [u8; 32] = signature.0[32..].try_into().expect("split");
        let r = Point::decompress(&r_bytes).map_err(|DecompressError| SignatureError)?;
        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(SignatureError)?;
        let k = challenge_scalar(&r_bytes, &self.0, message);
        // [s]B == R + [k]A, rearranged to one double-scalar multiplication
        // (Straus–Shamir): [s]B + [k](−A) == R. B rides the static wNAF
        // table; only A pays for a table build.
        let lhs = Point::double_scalar_mul_basepoint(&s, &k, &a.neg());
        if lhs.eq_point(&r) {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey(")?;
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

/// An Ed25519 signing (private) key.
///
/// Holds the RFC 8032 expanded secret: the clamped scalar `a` and the
/// 32-byte `prefix` used to derive deterministic nonces. The originating
/// seed is retained so the key can be serialized (e.g. proxy-key material
/// crossing the wire inside a protected channel) and re-expanded on the
/// other side.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; SEED_LEN],
    scalar: Scalar,
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed per RFC 8032 §5.1.5.
    #[must_use]
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> Self {
        let h = Sha512::digest(seed);
        let mut scalar_bytes: [u8; 32] = h[..32].try_into().expect("split");
        // Clamp.
        scalar_bytes[0] &= 0b1111_1000;
        scalar_bytes[31] &= 0b0111_1111;
        scalar_bytes[31] |= 0b0100_0000;
        let scalar = Scalar::from_bytes_mod_order(&scalar_bytes);
        let prefix: [u8; 32] = h[32..].try_into().expect("split");
        let public_point = Point::mul_basepoint(&scalar);
        let public = VerifyingKey::from_bytes(public_point.compress());
        Self {
            seed: *seed,
            scalar,
            prefix,
            public,
        }
    }

    /// The 32-byte seed this key expands from (RFC 8032 private key).
    ///
    /// This **is** the secret: expose it only to serialize the key into a
    /// confidentiality-protected channel.
    #[must_use]
    pub fn seed(&self) -> &[u8; SEED_LEN] {
        &self.seed
    }

    /// Generates a signing key from `rng`.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut seed = [0u8; SEED_LEN];
        rng.fill_bytes(&mut seed);
        Self::from_seed(&seed)
    }

    /// The corresponding public key.
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message` (deterministic per RFC 8032).
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        // r = H(prefix ‖ M) mod ℓ
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_mod_order_wide(&h.finalize());
        let r_point = Point::mul_basepoint(&r);
        let r_bytes = r_point.compress();
        // k = H(R ‖ A ‖ M) mod ℓ
        let k = challenge_scalar(&r_bytes, &self.public.0, message);
        // s = r + k·a mod ℓ
        let s = k.mul_add(self.scalar, r);
        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_bytes);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(<redacted>, public: {:?})", self.public)
    }
}

/// Counter mixed into batch coefficients so no two batches in a process
/// share them, even for identical contents.
static BATCH_NONCE: AtomicU64 = AtomicU64::new(0);

/// Verifies many `(message, signature, key)` triples at once.
///
/// Folds all verification equations into a single multiscalar
/// multiplication with random 128-bit coefficients `z_i`:
///
/// ```text
/// [−∑ z_i·s_i] B  +  ∑ [z_i] R_i  +  ∑ [z_i·k_i] A_i  ==  identity
/// ```
///
/// which holds for independently random `z_i` exactly when every
/// individual equation `[s_i]B = R_i + [k_i]A_i` holds, except with
/// probability ~2⁻¹²⁸. Because the doubling chain is shared across all
/// 2n+1 terms, the marginal cost per signature is roughly a third of a
/// standalone verification.
///
/// The coefficients are derived by hashing the whole batch together with
/// a process-local nonce (Fiat–Shamir style), so they are unpredictable
/// before the batch is fixed; each is forced odd so a single
/// small-torsion-mangled `R` or `A` can never cancel out of the combined
/// equation. If the combined equation fails, the batch falls back to
/// sequential verification, so the result is always exactly "every
/// signature verifies individually" — a batch rejection costs time, never
/// correctness.
///
/// # Errors
///
/// Returns [`SignatureError`] when any key or `R` fails to decompress,
/// any `s` is non-canonical, or any signature fails its individual
/// verification equation.
pub fn verify_batch(items: &[(&[u8], &Signature, &VerifyingKey)]) -> Result<(), SignatureError> {
    match items {
        [] => return Ok(()),
        [(message, signature, key)] => return key.verify(message, signature),
        _ => {}
    }
    let mut rs = Vec::with_capacity(items.len());
    let mut as_ = Vec::with_capacity(items.len());
    let mut ss = Vec::with_capacity(items.len());
    let mut ks = Vec::with_capacity(items.len());
    for (message, signature, key) in items {
        let a = Point::decompress(key.as_bytes()).map_err(|DecompressError| SignatureError)?;
        let r_bytes: [u8; 32] = signature.0[..32].try_into().expect("split");
        let s_bytes: [u8; 32] = signature.0[32..].try_into().expect("split");
        let r = Point::decompress(&r_bytes).map_err(|DecompressError| SignatureError)?;
        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(SignatureError)?;
        rs.push(r);
        as_.push(a);
        ss.push(s);
        ks.push(challenge_scalar(&r_bytes, key.as_bytes(), message));
    }

    // Seed = H(domain ‖ nonce ‖ every signature, key, and message).
    let mut h = Sha512::new();
    h.update(b"proxy-aa.ed25519.batch.v1");
    h.update(&BATCH_NONCE.fetch_add(1, Ordering::Relaxed).to_le_bytes());
    for (message, signature, key) in items {
        h.update(signature.as_bytes());
        h.update(key.as_bytes());
        h.update(&(message.len() as u64).to_le_bytes());
        h.update(message);
    }
    let seed = h.finalize();

    let mut scalars = Vec::with_capacity(2 * items.len() + 1);
    let mut points = Vec::with_capacity(2 * items.len() + 1);
    let mut b_coeff = Scalar::ZERO;
    for i in 0..items.len() {
        let mut zh = Sha512::new();
        zh.update(&seed);
        zh.update(&(i as u64).to_le_bytes());
        let digest = zh.finalize();
        let z_bytes: [u8; 16] = digest[..16].try_into().expect("split");
        let z = Scalar::from_u128(u128::from_le_bytes(z_bytes) | 1);
        b_coeff = b_coeff.add(z.mul(ss[i]));
        scalars.push(z);
        points.push(rs[i]);
        scalars.push(z.mul(ks[i]));
        points.push(as_[i]);
    }
    scalars.push(b_coeff.neg());
    points.push(Point::basepoint());

    if Point::multiscalar_mul(&scalars, &points).is_identity() {
        return Ok(());
    }
    // Combined equation failed: at least one signature is (almost surely)
    // bad. Re-verify sequentially for an exact answer.
    for (message, signature, key) in items {
        key.verify(message, signature)?;
    }
    Ok(())
}

fn challenge_scalar(r: &[u8; 32], a: &[u8; 32], message: &[u8]) -> Scalar {
    let mut h = Sha512::new();
    h.update(r);
    h.update(a);
    h.update(message);
    Scalar::from_bytes_mod_order_wide(&h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(hex: &str) -> Vec<u8> {
        let hex: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
        (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
            .collect()
    }

    fn seed32(hex: &str) -> [u8; 32] {
        from_hex(hex).try_into().unwrap()
    }

    /// RFC 8032 §7.1 TEST 1 (empty message).
    #[test]
    fn rfc8032_test_1() {
        let sk = SigningKey::from_seed(&seed32(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            sk.verifying_key().as_bytes().to_vec(),
            from_hex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let sig = sk.sign(b"");
        assert_eq!(
            sig.as_bytes().to_vec(),
            from_hex(
                "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                 5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
            )
        );
        assert!(sk.verifying_key().verify(b"", &sig).is_ok());
    }

    /// RFC 8032 §7.1 TEST 2 (one-byte message).
    #[test]
    fn rfc8032_test_2() {
        let sk = SigningKey::from_seed(&seed32(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            sk.verifying_key().as_bytes().to_vec(),
            from_hex("3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
        );
        let msg = [0x72u8];
        let sig = sk.sign(&msg);
        assert_eq!(
            sig.as_bytes().to_vec(),
            from_hex(
                "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                 085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
            )
        );
        assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
    }

    /// RFC 8032 §7.1 TEST 3 (two-byte message).
    #[test]
    fn rfc8032_test_3() {
        let sk = SigningKey::from_seed(&seed32(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        assert_eq!(
            sk.verifying_key().as_bytes().to_vec(),
            from_hex("fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025")
        );
        let msg = [0xafu8, 0x82];
        let sig = sk.sign(&msg);
        assert_eq!(
            sig.as_bytes().to_vec(),
            from_hex(
                "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                 18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
            )
        );
        assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn tampered_message_rejected() {
        let sk = SigningKey::from_seed(&[1u8; 32]);
        let sig = sk.sign(b"authentic message");
        assert!(sk
            .verifying_key()
            .verify(b"authentic message", &sig)
            .is_ok());
        assert_eq!(
            sk.verifying_key().verify(b"authentic messagE", &sig),
            Err(SignatureError)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SigningKey::from_seed(&[2u8; 32]);
        let msg = b"msg";
        let sig = sk.sign(msg);
        for i in 0..SIGNATURE_LEN {
            let mut bad = *sig.as_bytes();
            bad[i] ^= 0x40;
            let bad_sig = Signature(bad);
            assert!(
                sk.verifying_key().verify(msg, &bad_sig).is_err(),
                "flipping byte {i} must invalidate"
            );
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let sk1 = SigningKey::from_seed(&[3u8; 32]);
        let sk2 = SigningKey::from_seed(&[4u8; 32]);
        let sig = sk1.sign(b"hello");
        assert!(sk2.verifying_key().verify(b"hello", &sig).is_err());
    }

    #[test]
    fn noncanonical_s_rejected() {
        // Take a valid signature and add ℓ to s, producing an equivalent
        // but non-canonical scalar; verification must reject it.
        let sk = SigningKey::from_seed(&[5u8; 32]);
        let sig = sk.sign(b"m");
        let s_bytes: [u8; 32] = sig.as_bytes()[32..].try_into().unwrap();
        let mut s_limbs = [0u64; 4];
        for (i, chunk) in s_bytes.chunks_exact(8).enumerate() {
            s_limbs[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // s + ℓ (may carry into bit 255+ — only usable when it fits; the
        // high limb of ℓ is 2^60 so the sum fits u64 unless s is huge).
        let mut carry = 0u128;
        let mut sum = [0u64; 4];
        for i in 0..4 {
            let acc = s_limbs[i] as u128 + super::scalar::L[i] as u128 + carry;
            sum[i] = acc as u64;
            carry = acc >> 64;
        }
        assert_eq!(carry, 0, "s + L fits in 256 bits for this fixture");
        let mut bad = *sig.as_bytes();
        for (i, limb) in sum.iter().enumerate() {
            bad[32 + 8 * i..32 + 8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert!(sk.verifying_key().verify(b"m", &Signature(bad)).is_err());
    }

    #[test]
    fn signature_is_deterministic() {
        let sk = SigningKey::from_seed(&[6u8; 32]);
        assert_eq!(sk.sign(b"x").as_bytes(), sk.sign(b"x").as_bytes());
        assert_ne!(sk.sign(b"x").as_bytes(), sk.sign(b"y").as_bytes());
    }

    #[test]
    fn generate_roundtrip_with_rng() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(42);
        let sk = SigningKey::generate(&mut rng);
        let sig = sk.sign(b"generated");
        assert!(sk.verifying_key().verify(b"generated", &sig).is_ok());
    }

    #[test]
    fn batch_accepts_valid_signatures() {
        let keys: Vec<SigningKey> = (0u8..8)
            .map(|i| SigningKey::from_seed(&[i + 10; 32]))
            .collect();
        let messages: Vec<Vec<u8>> = (0..8)
            .map(|i| format!("message {i}").into_bytes())
            .collect();
        let sigs: Vec<Signature> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let vks: Vec<VerifyingKey> = keys.iter().map(SigningKey::verifying_key).collect();
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = messages
            .iter()
            .zip(&sigs)
            .zip(&vks)
            .map(|((m, s), k)| (m.as_slice(), s, k))
            .collect();
        assert!(verify_batch(&items).is_ok());
        // Empty and singleton batches degrade gracefully.
        assert!(verify_batch(&[]).is_ok());
        assert!(verify_batch(&items[..1]).is_ok());
    }

    #[test]
    fn batch_rejects_any_corruption() {
        let keys: Vec<SigningKey> = (0u8..4)
            .map(|i| SigningKey::from_seed(&[i + 30; 32]))
            .collect();
        let messages: Vec<Vec<u8>> = (0..4)
            .map(|i| format!("payload {i}").into_bytes())
            .collect();
        let mut sigs: Vec<Signature> = keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let vks: Vec<VerifyingKey> = keys.iter().map(SigningKey::verifying_key).collect();
        // Corrupt one signature's s-half; the combined equation must fail
        // and the sequential fallback must pinpoint the error.
        sigs[2].0[40] ^= 0x01;
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = messages
            .iter()
            .zip(&sigs)
            .zip(&vks)
            .map(|((m, s), k)| (m.as_slice(), s, k))
            .collect();
        assert_eq!(verify_batch(&items), Err(SignatureError));

        // A wrong message in an otherwise valid batch also fails.
        let good_sigs: Vec<Signature> =
            keys.iter().zip(&messages).map(|(k, m)| k.sign(m)).collect();
        let mut bad_messages = messages.clone();
        bad_messages[1][0] ^= 0xff;
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = bad_messages
            .iter()
            .zip(&good_sigs)
            .zip(&vks)
            .map(|((m, s), k)| (m.as_slice(), s, k))
            .collect();
        assert_eq!(verify_batch(&items), Err(SignatureError));
    }

    #[test]
    fn batch_rejects_malformed_points_and_noncanonical_s() {
        let sk = SigningKey::from_seed(&[50u8; 32]);
        let msg: &[u8] = b"ok";
        let sig = sk.sign(msg);
        let vk = sk.verifying_key();
        let other = SigningKey::from_seed(&[51u8; 32]);
        let other_sig = other.sign(msg);
        let other_vk = other.verifying_key();

        // A key that is not a curve point.
        let bad_key = VerifyingKey::from_bytes([0x02; 32]);
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> =
            vec![(msg, &sig, &bad_key), (msg, &other_sig, &other_vk)];
        assert_eq!(verify_batch(&items), Err(SignatureError));

        // s ≥ ℓ must be rejected before any curve math.
        let mut bad_sig = sig;
        bad_sig.0[32..].copy_from_slice(&[0xff; 32]);
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> =
            vec![(msg, &bad_sig, &vk), (msg, &other_sig, &other_vk)];
        assert_eq!(verify_batch(&items), Err(SignatureError));
    }

    #[test]
    fn signature_parsing_validates_length() {
        assert!(Signature::try_from_slice(&[0u8; 64]).is_ok());
        assert!(Signature::try_from_slice(&[0u8; 63]).is_err());
        assert!(Signature::try_from_slice(&[]).is_err());
    }
}
