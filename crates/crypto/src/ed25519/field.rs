//! Arithmetic in GF(2^255 − 19) with 51-bit limbs.
//!
//! Representation: five `u64` limbs, value = Σ limb\[i\]·2^(51·i). The
//! public operations accept inputs with limbs < 2^57 and return outputs
//! with limbs < 2^52 ("weakly reduced"); [`Fe::to_bytes`] performs the
//! canonical strong reduction. This is the classic donna-style
//! representation; multiplication folds the 2^255 overflow back with the
//! factor 19.
//!
//! The crate-internal `add_lazy`/`sub_lazy` variants skip the carry pass
//! entirely and may return limbs up to 2^55; the point formulas in
//! `edwards.rs` chain at most two of them between multiplications, which
//! the 2^57 input bound absorbs (worst-case u128 accumulators stay below
//! 2^121 — see the bound notes on [`Fe::mul`] and [`Fe::square`]).

// The arithmetic methods deliberately mirror mathematical notation
// (`add`, `mul`, …) rather than the operator traits, keeping reduction
// behavior explicit at call sites; index-based limb loops follow the
// reference implementations they are checked against.
#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

use std::sync::OnceLock;

pub(crate) const MASK: u64 = (1 << 51) - 1;

/// A field element of GF(2^255 − 19).
#[derive(Clone, Copy, Debug)]
pub struct Fe(pub(crate) [u64; 5]);

/// 4p in limb form; added before subtraction so limbs never underflow for
/// inputs with limbs < 2^54... (inputs are kept < 2^52 by every public op).
const FOUR_P: [u64; 5] = [
    (1u64 << 53) - 76,
    (1u64 << 53) - 4,
    (1u64 << 53) - 4,
    (1u64 << 53) - 4,
    (1u64 << 53) - 4,
];

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Constructs the field element for a small integer.
    #[inline]
    pub fn from_u64(x: u64) -> Fe {
        let mut out = Fe::ZERO;
        out.0[0] = x & MASK;
        out.0[1] = x >> 51;
        out
    }

    /// Parses 32 little-endian bytes, ignoring the top (sign) bit as RFC
    /// 8032 prescribes.
    #[inline]
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| -> u64 {
            let mut le = [0u8; 8];
            le.copy_from_slice(&b[..8]);
            u64::from_le_bytes(le)
        };
        let mut limbs = [0u64; 5];
        limbs[0] = load(&bytes[0..8]) & MASK;
        limbs[1] = (load(&bytes[6..14]) >> 3) & MASK;
        limbs[2] = (load(&bytes[12..20]) >> 6) & MASK;
        limbs[3] = (load(&bytes[19..27]) >> 1) & MASK;
        limbs[4] = (load(&bytes[24..32]) >> 12) & MASK;
        Fe(limbs)
    }

    /// Serializes to 32 little-endian bytes in canonical (fully reduced)
    /// form; the top bit is always zero.
    pub fn to_bytes(self) -> [u8; 32] {
        // Weak reduce so limbs < 2^52, then strong reduce mod p.
        let mut t = self.weak_reduce().0;
        // Compute the quotient q = 1 iff value >= p, via trial propagation
        // of (value + 19) through the limbs.
        let mut q = (t[0].wrapping_add(19)) >> 51;
        q = (t[1] + q) >> 51;
        q = (t[2] + q) >> 51;
        q = (t[3] + q) >> 51;
        q = (t[4] + q) >> 51;
        // value mod p = value + 19q, dropping bit 255.
        t[0] += 19 * q;
        t[1] += t[0] >> 51;
        t[0] &= MASK;
        t[2] += t[1] >> 51;
        t[1] &= MASK;
        t[3] += t[2] >> 51;
        t[2] &= MASK;
        t[4] += t[3] >> 51;
        t[3] &= MASK;
        t[4] &= MASK; // discard 2^255
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut acc_bits = 0u32;
        let mut idx = 0usize;
        for limb in t {
            acc |= (limb as u128) << acc_bits;
            acc_bits += 51;
            while acc_bits >= 8 {
                out[idx] = (acc & 0xff) as u8;
                acc >>= 8;
                acc_bits -= 8;
                idx += 1;
            }
        }
        while idx < 32 {
            out[idx] = (acc & 0xff) as u8;
            acc >>= 8;
            idx += 1;
        }
        out
    }

    #[inline]
    fn weak_reduce(self) -> Fe {
        let mut t = self.0;
        let c = t[4] >> 51;
        t[4] &= MASK;
        t[0] += 19 * c;
        let c = t[0] >> 51;
        t[0] &= MASK;
        t[1] += c;
        let c = t[1] >> 51;
        t[1] &= MASK;
        t[2] += c;
        let c = t[2] >> 51;
        t[2] &= MASK;
        t[3] += c;
        let c = t[3] >> 51;
        t[3] &= MASK;
        t[4] += c;
        // One more fold in case t[4] overflowed again (it cannot exceed
        // 2^51 + small, so a single extra fold suffices).
        let c = t[4] >> 51;
        t[4] &= MASK;
        t[0] += 19 * c;
        Fe(t)
    }

    /// Field addition.
    #[inline]
    pub fn add(self, other: Fe) -> Fe {
        let mut t = self.0;
        for i in 0..5 {
            t[i] += other.0[i];
        }
        Fe(t).weak_reduce()
    }

    /// Field subtraction (adds 4p before subtracting to avoid underflow).
    #[inline]
    pub fn sub(self, other: Fe) -> Fe {
        let mut t = self.0;
        for i in 0..5 {
            t[i] = t[i] + FOUR_P[i] - other.0[i];
        }
        Fe(t).weak_reduce()
    }

    /// Field negation.
    #[inline]
    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Addition without the carry pass: a plain limb-wise sum.
    ///
    /// Contract: callers must keep the *sum* of the two inputs' limb
    /// bounds below 2^57 (in practice, at most two lazy ops are chained
    /// on weakly-reduced values before a `mul`/`square` absorbs them).
    #[inline]
    pub(crate) fn add_lazy(self, other: Fe) -> Fe {
        let mut t = self.0;
        for i in 0..5 {
            t[i] += other.0[i];
        }
        Fe(t)
    }

    /// Subtraction without the carry pass: `self + 4p − other`, limb-wise.
    ///
    /// Contract: `other` must be weakly reduced (limbs < 2^52 < the 4p
    /// limbs, so no underflow); `self` may carry up to 2^55 of lazy slack.
    /// The result's limbs are below `self`'s bound + 2^53.
    #[inline]
    pub(crate) fn sub_lazy(self, other: Fe) -> Fe {
        let mut t = self.0;
        for i in 0..5 {
            t[i] = t[i] + FOUR_P[i] - other.0[i];
        }
        Fe(t)
    }

    /// Field multiplication. Accepts limbs < 2^57 (covering lazy inputs):
    /// the 19-folded operand limbs stay below 19·2^57 < 2^62, each widening
    /// product below 2^119, and the five-term accumulators below 2^121.
    #[inline]
    pub fn mul(self, other: Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        // Pre-fold 19·b into u64 so no u128 product needs scaling.
        let b1_19 = 19 * b[1];
        let b2_19 = 19 * b[2];
        let b3_19 = 19 * b[3];
        let b4_19 = 19 * b[4];
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let r0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let r1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let r2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let r3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let r4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);
        Fe::carry_wide([r0, r1, r2, r3, r4])
    }

    /// Field squaring. Exploits symmetry of the schoolbook product: the 10
    /// cross terms `a_i·a_j` (i≠j) each appear twice, so 15 widening
    /// multiplies suffice where `mul` needs 25. The doubled (< 2^58) and
    /// 19-folded (< 2^62) limbs are precomputed in u64; with inputs below
    /// 2^57 every three-term accumulator stays below 2^121.
    #[inline]
    pub fn square(self) -> Fe {
        let a = self.0;
        let d0 = 2 * a[0];
        let d1 = 2 * a[1];
        let d2 = 2 * a[2];
        let d3 = 2 * a[3];
        let a3_19 = 19 * a[3];
        let a4_19 = 19 * a[4];
        let m = |x: u64, y: u64| -> u128 { (x as u128) * (y as u128) };
        let r0 = m(a[0], a[0]) + m(d1, a4_19) + m(d2, a3_19);
        let r1 = m(d0, a[1]) + m(d2, a4_19) + m(a[3], a3_19);
        let r2 = m(d0, a[2]) + m(a[1], a[1]) + m(d3, a4_19);
        let r3 = m(d0, a[3]) + m(d1, a[2]) + m(a[4], a4_19);
        let r4 = m(d0, a[4]) + m(d1, a[3]) + m(a[2], a[2]);
        Fe::carry_wide([r0, r1, r2, r3, r4])
    }

    /// Squares `self` `k` times.
    #[inline]
    pub fn pow2k(self, k: u32) -> Fe {
        let mut x = self;
        for _ in 0..k {
            x = x.square();
        }
        x
    }

    #[inline]
    fn carry_wide(mut t: [u128; 5]) -> Fe {
        let mask = MASK as u128;
        t[1] += t[0] >> 51;
        t[0] &= mask;
        t[2] += t[1] >> 51;
        t[1] &= mask;
        t[3] += t[2] >> 51;
        t[2] &= mask;
        t[4] += t[3] >> 51;
        t[3] &= mask;
        t[0] += 19 * (t[4] >> 51);
        t[4] &= mask;
        t[1] += t[0] >> 51;
        t[0] &= mask;
        Fe([
            t[0] as u64,
            t[1] as u64,
            t[2] as u64,
            t[3] as u64,
            t[4] as u64,
        ])
    }

    /// Multiplies by a small constant.
    #[inline]
    pub fn mul_small(self, c: u64) -> Fe {
        let mut t = [0u128; 5];
        for i in 0..5 {
            t[i] = (self.0[i] as u128) * (c as u128);
        }
        Fe::carry_wide(t)
    }

    /// Multiplicative inverse via Fermat: self^(p−2). The zero element maps
    /// to zero (callers check for zero where it matters).
    pub fn invert(self) -> Fe {
        // Addition chain computing z^(2^255 - 21).
        let z = self;
        let z2 = z.square(); // 2
        let z9 = z2.pow2k(2).mul(z); // 9
        let z11 = z9.mul(z2); // 11
        let z2_5_0 = z11.square().mul(z9); // 2^5 - 1
        let z2_10_0 = z2_5_0.pow2k(5).mul(z2_5_0); // 2^10 - 1
        let z2_20_0 = z2_10_0.pow2k(10).mul(z2_10_0); // 2^20 - 1
        let z2_40_0 = z2_20_0.pow2k(20).mul(z2_20_0); // 2^40 - 1
        let z2_50_0 = z2_40_0.pow2k(10).mul(z2_10_0); // 2^50 - 1
        let z2_100_0 = z2_50_0.pow2k(50).mul(z2_50_0); // 2^100 - 1
        let z2_200_0 = z2_100_0.pow2k(100).mul(z2_100_0); // 2^200 - 1
        let z2_250_0 = z2_200_0.pow2k(50).mul(z2_50_0); // 2^250 - 1
        z2_250_0.pow2k(5).mul(z11) // 2^255 - 21 = p - 2
    }

    /// Computes self^((p−5)/8) = self^(2^252 − 3), used by [`sqrt_ratio`].
    pub fn pow_p58(self) -> Fe {
        let z = self;
        let z2 = z.square();
        let z9 = z2.pow2k(2).mul(z);
        let z11 = z9.mul(z2);
        let z2_5_0 = z11.square().mul(z9);
        let z2_10_0 = z2_5_0.pow2k(5).mul(z2_5_0);
        let z2_20_0 = z2_10_0.pow2k(10).mul(z2_10_0);
        let z2_40_0 = z2_20_0.pow2k(20).mul(z2_20_0);
        let z2_50_0 = z2_40_0.pow2k(10).mul(z2_10_0);
        let z2_100_0 = z2_50_0.pow2k(50).mul(z2_50_0);
        let z2_200_0 = z2_100_0.pow2k(100).mul(z2_100_0);
        let z2_250_0 = z2_200_0.pow2k(50).mul(z2_50_0);
        z2_250_0.pow2k(2).mul(z) // 2^252 - 3
    }

    /// True if the canonical encoding is all zeros.
    pub fn is_zero(self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Sign of the field element: the least-significant bit of the canonical
    /// encoding (RFC 8032's definition of "negative").
    pub fn is_negative(self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// Equality on canonical encodings.
    pub fn ct_eq(self, other: Fe) -> bool {
        crate::ct::ct_eq(&self.to_bytes(), &other.to_bytes())
    }
}

/// √−1 mod p, computed once as 2^((p−1)/4).
pub fn sqrt_m1() -> Fe {
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| {
        // Exponent (p−1)/4 = 2^253 − 5: binary has ones at bits 0,1,3..252.
        let base = Fe::from_u64(2);
        let mut acc = Fe::ONE;
        for bit in (0..253).rev() {
            acc = acc.square();
            if bit != 2 {
                acc = acc.mul(base);
            }
        }
        acc
    })
}

/// The twisted Edwards curve constant d = −121665/121666.
pub fn d() -> Fe {
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| {
        Fe::from_u64(121665)
            .neg()
            .mul(Fe::from_u64(121666).invert())
    })
}

/// 2d, used by the extended-coordinates addition formulas.
pub fn d2() -> Fe {
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| d().add(d()))
}

/// Computes `sqrt(u/v)` when it exists.
///
/// Returns `(was_square, root)`: `root` is the nonnegative square root of
/// `u/v` when `was_square`, otherwise undefined junk the caller must ignore.
pub fn sqrt_ratio(u: Fe, v: Fe) -> (bool, Fe) {
    let v3 = v.square().mul(v);
    let v7 = v3.square().mul(v);
    let mut r = u.mul(v3).mul(u.mul(v7).pow_p58());
    let check = v.mul(r.square());
    let correct = check.ct_eq(u);
    let flipped = check.ct_eq(u.neg());
    if flipped {
        r = r.mul(sqrt_m1());
    }
    (correct || flipped, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> Fe {
        Fe::from_u64(n)
    }

    #[test]
    fn add_sub_round_trip() {
        let a = fe(1234567);
        let b = fe(7654321);
        assert!(a.add(b).sub(b).ct_eq(a));
        assert!(a.sub(b).add(b).ct_eq(a));
    }

    #[test]
    fn mul_matches_small_integers() {
        assert!(fe(7).mul(fe(6)).ct_eq(fe(42)));
        assert!(fe(0).mul(fe(99)).ct_eq(Fe::ZERO));
        assert!(fe(1).mul(fe(99)).ct_eq(fe(99)));
    }

    #[test]
    fn p_reduces_to_zero() {
        // p = 2^255 - 19 encoded little-endian.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = Fe::from_bytes(&p_bytes);
        // from_bytes does not reduce, but to_bytes must canonicalize.
        assert_eq!(p.to_bytes(), [0u8; 32]);
        // p + 1 ≡ 1
        p_bytes[0] = 0xee;
        assert!(Fe::from_bytes(&p_bytes).ct_eq(Fe::ONE));
    }

    #[test]
    fn bytes_round_trip_canonical_values() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0x42;
        bytes[20] = 0x99;
        bytes[31] = 0x55; // below 2^255 - 19, canonical
        let x = Fe::from_bytes(&bytes);
        assert_eq!(x.to_bytes(), bytes);
    }

    #[test]
    fn invert_is_inverse() {
        for n in [1u64, 2, 5, 121665, 0xffff_ffff] {
            let x = fe(n);
            assert!(x.mul(x.invert()).ct_eq(Fe::ONE), "n = {n}");
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert!(i.square().ct_eq(Fe::ONE.neg()));
    }

    #[test]
    fn d_satisfies_definition() {
        // d * 121666 + 121665 == 0
        assert!(d().mul(fe(121666)).add(fe(121665)).ct_eq(Fe::ZERO));
    }

    #[test]
    fn sqrt_ratio_finds_roots() {
        // 4/1 has root 2 (or -2; take canonical nonnegative result squared).
        let (ok, r) = sqrt_ratio(fe(4), Fe::ONE);
        assert!(ok);
        assert!(r.square().ct_eq(fe(4)));
        // 2 is a non-residue mod p (p ≡ 5 mod 8), so sqrt(2) must fail.
        let (ok, _) = sqrt_ratio(fe(2), Fe::ONE);
        assert!(!ok);
    }

    #[test]
    fn negate_and_sign() {
        let x = fe(3);
        assert!(x.is_negative()); // 3 is odd
        assert!(!fe(4).is_negative());
        assert!(x.neg().add(x).ct_eq(Fe::ZERO));
    }

    #[test]
    fn mul_small_matches_mul() {
        let x = fe(0xdead_beef);
        assert!(x.mul_small(19).ct_eq(x.mul(fe(19))));
    }

    #[test]
    fn distributive_law_spot_check() {
        let a = fe(111_111_111);
        let b = fe(222_222_222);
        let c = fe(333_333_333);
        assert!(a.add(b).mul(c).ct_eq(a.mul(c).add(b.mul(c))));
    }
}
