//! Arithmetic modulo the Ed25519 group order
//! ℓ = 2^252 + 27742317777372353535851937790883648493.
//!
//! Scalars are four little-endian `u64` limbs, always kept < ℓ. Reduction
//! uses bitwise restoring division — a few hundred word operations, which is
//! noise next to the point arithmetic that consumes these scalars.

// The arithmetic methods deliberately mirror mathematical notation
// (`add`, `mul`, …) rather than the operator traits, keeping reduction
// behavior explicit at call sites; index-based limb loops follow the
// reference implementations they are checked against.
#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

/// The group order ℓ as little-endian limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar modulo ℓ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

/// Compares a 5-limb value with ℓ (extended to 5 limbs).
fn geq_l(rem: &[u64; 5]) -> bool {
    if rem[4] != 0 {
        return true;
    }
    for i in (0..4).rev() {
        if rem[i] != L[i] {
            return rem[i] > L[i];
        }
    }
    true // equal
}

fn sub_l(rem: &mut [u64; 5]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d, b1) = rem[i].overflowing_sub(L[i]);
        let (d, b2) = d.overflowing_sub(borrow);
        rem[i] = d;
        borrow = u64::from(b1) + u64::from(b2);
    }
    rem[4] -= borrow;
}

/// Reduces a little-endian multi-limb value modulo ℓ by restoring division.
fn mod_l(limbs: &[u64]) -> [u64; 4] {
    let mut rem = [0u64; 5];
    for i in (0..limbs.len() * 64).rev() {
        // rem <<= 1
        for j in (1..5).rev() {
            rem[j] = (rem[j] << 1) | (rem[j - 1] >> 63);
        }
        rem[0] <<= 1;
        rem[0] |= (limbs[i / 64] >> (i % 64)) & 1;
        if geq_l(&rem) {
            sub_l(&mut rem);
        }
    }
    [rem[0], rem[1], rem[2], rem[3]]
}

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The scalar 1.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Builds a scalar from a small integer.
    #[must_use]
    pub fn from_u64(x: u64) -> Scalar {
        Scalar([x, 0, 0, 0])
    }

    /// Interprets 32 little-endian bytes, reducing modulo ℓ.
    #[must_use]
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            limbs[i] = u64::from_le_bytes(le);
        }
        Scalar(mod_l(&limbs))
    }

    /// Interprets 64 little-endian bytes (a SHA-512 digest), reducing mod ℓ.
    #[must_use]
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Scalar {
        let mut limbs = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            limbs[i] = u64::from_le_bytes(le);
        }
        Scalar(mod_l(&limbs))
    }

    /// Parses a canonical scalar encoding, rejecting values ≥ ℓ.
    ///
    /// Used when verifying signatures: RFC 8032 requires rejecting
    /// non-canonical `s` to prevent malleability.
    #[must_use]
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 5];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(chunk);
            limbs[i] = u64::from_le_bytes(le);
        }
        if geq_l(&limbs) {
            return None;
        }
        Some(Scalar([limbs[0], limbs[1], limbs[2], limbs[3]]))
    }

    /// Serializes to 32 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Scalar addition mod ℓ.
    #[must_use]
    pub fn add(self, other: Scalar) -> Scalar {
        let mut limbs = [0u64; 5];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s, c1) = self.0[i].overflowing_add(other.0[i]);
            let (s, c2) = s.overflowing_add(carry);
            limbs[i] = s;
            carry = u64::from(c1) + u64::from(c2);
        }
        limbs[4] = carry;
        if geq_l(&limbs) {
            sub_l(&mut limbs);
        }
        Scalar([limbs[0], limbs[1], limbs[2], limbs[3]])
    }

    /// Scalar multiplication mod ℓ.
    #[must_use]
    pub fn mul(self, other: Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let acc = wide[i + j] as u128 + (self.0[i] as u128) * (other.0[j] as u128) + carry;
                wide[i + j] = acc as u64;
                carry = acc >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        Scalar(mod_l(&wide))
    }

    /// Fused multiply-add `self * b + c mod ℓ` (the `s = r + k·a` of RFC
    /// 8032 signing).
    #[must_use]
    pub fn mul_add(self, b: Scalar, c: Scalar) -> Scalar {
        self.mul(b).add(c)
    }

    /// Additive inverse mod ℓ.
    #[must_use]
    pub fn neg(self) -> Scalar {
        if self.is_zero() {
            return self;
        }
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d, b1) = L[i].overflowing_sub(self.0[i]);
            let (d, b2) = d.overflowing_sub(borrow);
            out[i] = d;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "scalar is < ℓ, so ℓ − scalar cannot borrow");
        Scalar(out)
    }

    /// Scalar subtraction mod ℓ.
    #[must_use]
    pub fn sub(self, other: Scalar) -> Scalar {
        self.add(other.neg())
    }

    /// Builds a scalar from a 128-bit integer (always canonical: 2¹²⁸ < ℓ).
    ///
    /// Batch signature verification draws its random coefficients from this
    /// range.
    #[must_use]
    pub fn from_u128(x: u128) -> Scalar {
        Scalar([x as u64, (x >> 64) as u64, 0, 0])
    }

    /// True when the scalar is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Iterates the 256 bits little-endian (used by double-and-add).
    #[must_use]
    pub fn bit(&self, i: usize) -> u8 {
        ((self.0[i / 64] >> (i % 64)) & 1) as u8
    }

    /// Width-`w` non-adjacent form: signed digits `d[i]` with
    /// `∑ d[i]·2^i = self`, each nonzero digit odd with `|d[i]| < 2^(w-1)`,
    /// and any two nonzero digits at least `w` positions apart.
    ///
    /// The sparse signed representation is what makes windowed scalar
    /// multiplication fast: ~256/(w+1) point additions instead of ~128,
    /// with negative digits served by (free) point negation.
    ///
    /// # Panics
    ///
    /// Panics when `w` is outside `2..=8` (digits must fit an `i8`).
    #[must_use]
    pub fn non_adjacent_form(&self, w: usize) -> [i8; 256] {
        assert!((2..=8).contains(&w), "wNAF width must be in 2..=8");
        let mut naf = [0i8; 256];
        let x = [self.0[0], self.0[1], self.0[2], self.0[3], 0u64];
        let width = 1u64 << w;
        let mask = width - 1;
        let mut pos = 0usize;
        let mut carry = 0u64;
        while pos < 256 {
            let idx = pos / 64;
            let shift = pos % 64;
            // The w-bit window starting at `pos`, possibly spanning limbs.
            let bits = if shift < 64 - w {
                x[idx] >> shift
            } else {
                (x[idx] >> shift) | (x[idx + 1] << (64 - shift))
            };
            let window = carry + (bits & mask);
            if window & 1 == 0 {
                pos += 1;
                continue;
            }
            if window < width / 2 {
                carry = 0;
                naf[pos] = window as i8;
            } else {
                // Subtract 2^w here and carry it into the next window.
                carry = 1;
                naf[pos] = (window as i8).wrapping_sub(width as i8);
            }
            pos += w;
        }
        debug_assert_eq!(carry, 0, "scalars < 2^253 leave no final carry");
        naf
    }

    /// Signed radix-16 digits `d[i] ∈ [−8, 8]` with `∑ d[i]·16^i = self`.
    ///
    /// Feeds fixed-base multiplication from the precomputed basepoint
    /// table: 64 table additions replace a 256-step doubling ladder.
    #[must_use]
    pub fn to_radix16(&self) -> [i8; 64] {
        let bytes = self.to_bytes();
        let mut digits = [0i8; 64];
        for i in 0..32 {
            digits[2 * i] = (bytes[i] & 15) as i8;
            digits[2 * i + 1] = (bytes[i] >> 4) as i8;
        }
        // Recenter each digit into [−8, 8], carrying upward. The top digit
        // absorbs at most a single carry: scalars are < 2^253.
        for i in 0..63 {
            let carry = (digits[i] + 8) >> 4;
            digits[i] -= carry << 4;
            digits[i + 1] += carry;
        }
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_reduces_to_zero() {
        let mut l_bytes = [0u8; 32];
        for (i, limb) in L.iter().enumerate() {
            l_bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(Scalar::from_bytes_mod_order(&l_bytes), Scalar::ZERO);
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_none());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let mut bytes = [0u8; 32];
        let mut limbs = L;
        limbs[0] -= 1;
        for (i, limb) in limbs.iter().enumerate() {
            bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&bytes).unwrap();
        // (ℓ-1) + 1 ≡ 0
        assert_eq!(s.add(Scalar::ONE), Scalar::ZERO);
        // (ℓ-1) * (ℓ-1) = ℓ² - 2ℓ + 1 ≡ 1
        assert_eq!(s.mul(s), Scalar::ONE);
    }

    #[test]
    fn small_arithmetic() {
        let a = Scalar::from_u64(1_000_000);
        let b = Scalar::from_u64(2_000_000);
        assert_eq!(a.add(b), Scalar::from_u64(3_000_000));
        assert_eq!(
            Scalar::from_u64(6).mul(Scalar::from_u64(7)),
            Scalar::from_u64(42)
        );
        assert_eq!(
            Scalar::from_u64(3).mul_add(Scalar::from_u64(4), Scalar::from_u64(5)),
            Scalar::from_u64(17)
        );
    }

    #[test]
    fn wide_reduction_matches_narrow_for_small_values() {
        let mut wide = [0u8; 64];
        wide[0] = 77;
        assert_eq!(
            Scalar::from_bytes_mod_order_wide(&wide),
            Scalar::from_u64(77)
        );
    }

    #[test]
    fn wide_reduction_of_all_ones() {
        // 2^512 - 1 mod ℓ, cross-checked against the identity
        // x ≡ ((x mod ℓ) ) by re-reducing the result.
        let wide = [0xffu8; 64];
        let s = Scalar::from_bytes_mod_order_wide(&wide);
        let again = Scalar::from_bytes_mod_order(&s.to_bytes());
        assert_eq!(s, again);
        assert!(Scalar::from_canonical_bytes(&s.to_bytes()).is_some());
    }

    #[test]
    fn to_bytes_round_trip() {
        let s = Scalar::from_u64(0xdead_beef_cafe_f00d);
        assert_eq!(Scalar::from_bytes_mod_order(&s.to_bytes()), s);
    }

    #[test]
    fn bits_enumerate_little_endian() {
        let s = Scalar::from_u64(0b1011);
        assert_eq!(s.bit(0), 1);
        assert_eq!(s.bit(1), 1);
        assert_eq!(s.bit(2), 0);
        assert_eq!(s.bit(3), 1);
        assert_eq!(s.bit(200), 0);
    }

    #[test]
    fn neg_and_sub_are_inverse_operations() {
        let a = Scalar::from_bytes_mod_order(&[0x5a; 32]);
        let b = Scalar::from_bytes_mod_order(&[0x29; 32]);
        assert_eq!(a.add(a.neg()), Scalar::ZERO);
        assert_eq!(Scalar::ZERO.neg(), Scalar::ZERO);
        assert_eq!(a.sub(b).add(b), a);
        assert_eq!(a.sub(a), Scalar::ZERO);
    }

    #[test]
    fn from_u128_is_canonical() {
        let s = Scalar::from_u128(u128::MAX);
        assert!(Scalar::from_canonical_bytes(&s.to_bytes()).is_some());
        assert_eq!(
            Scalar::from_u128(u128::from(u64::MAX)),
            Scalar::from_u64(u64::MAX)
        );
    }

    /// Reconstructs a scalar from signed digit representations by plain
    /// mod-ℓ arithmetic.
    fn from_signed_digits(digits: &[i8], radix_log2: usize) -> Scalar {
        let mut acc = Scalar::ZERO;
        for &d in digits.iter().rev() {
            for _ in 0..radix_log2 {
                acc = acc.add(acc);
            }
            let mag = Scalar::from_u64(u64::from(d.unsigned_abs()));
            acc = if d >= 0 { acc.add(mag) } else { acc.sub(mag) };
        }
        acc
    }

    #[test]
    fn wnaf_reconstructs_and_respects_invariants() {
        for (fill, w) in [(0x11u8, 5), (0xf3, 5), (0x77, 8), (0xe9, 6)] {
            let s = Scalar::from_bytes_mod_order(&[fill; 32]);
            let naf = s.non_adjacent_form(w);
            assert_eq!(from_signed_digits(&naf, 1), s, "fill {fill:#x} w {w}");
            let bound = 1i16 << (w - 1);
            let mut last_nonzero: Option<usize> = None;
            for (i, &d) in naf.iter().enumerate() {
                if d == 0 {
                    continue;
                }
                assert_eq!(d & 1, 1, "digit at {i} must be odd");
                assert!(i16::from(d).abs() < bound, "digit at {i} out of range");
                if let Some(j) = last_nonzero {
                    assert!(i - j >= w, "digits at {j} and {i} closer than {w}");
                }
                last_nonzero = Some(i);
            }
        }
    }

    #[test]
    fn radix16_reconstructs_with_bounded_digits() {
        for fill in [0x00u8, 0x01, 0x42, 0x9d, 0xff] {
            let s = Scalar::from_bytes_mod_order(&[fill; 32]);
            let digits = s.to_radix16();
            assert_eq!(from_signed_digits(&digits, 4), s, "fill {fill:#x}");
            for (i, &d) in digits.iter().enumerate() {
                assert!((-8..=8).contains(&d), "digit {d} at {i} out of [−8, 8]");
            }
        }
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let a = Scalar::from_bytes_mod_order(&[0x11; 32]);
        let b = Scalar::from_bytes_mod_order(&[0x7f; 32]);
        let c = Scalar::from_bytes_mod_order(&[0x3c; 32]);
        assert_eq!(a.mul(b), b.mul(a));
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }
}
