//! Point arithmetic on the twisted Edwards curve
//! −x² + y² = 1 + d·x²y² over GF(2^255 − 19).
//!
//! Points use extended homogeneous coordinates (X : Y : Z : T) with
//! x = X/Z, y = Y/Z, T = XY/Z. Scalar multiplication is plain
//! double-and-add; this workspace runs simulations, not production TLS, so
//! we trade side-channel hardening for clarity (noted here per the crate
//! docs).

// `neg`/`add` mirror group notation; see field.rs rationale.
#![allow(clippy::should_implement_trait)]

use std::sync::OnceLock;

use super::field::{d, d2, sqrt_ratio, Fe};
use super::scalar::Scalar;

/// A point on the Ed25519 curve in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// Error from [`Point::decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompressError;

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte string is not a valid curve point encoding")
    }
}

impl std::error::Error for DecompressError {}

impl Point {
    /// The neutral element (0, 1).
    #[must_use]
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard basepoint B with y = 4/5 and x "positive" (even).
    #[must_use]
    pub fn basepoint() -> Point {
        static CELL: OnceLock<Point> = OnceLock::new();
        *CELL.get_or_init(|| {
            let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
            Point::from_y(y, false).expect("basepoint decompresses")
        })
    }

    /// Recovers a point from its y coordinate and the sign bit of x.
    ///
    /// x² = (y² − 1) / (d·y² + 1)
    pub(crate) fn from_y(y: Fe, x_sign: bool) -> Result<Point, DecompressError> {
        let yy = y.square();
        let u = yy.sub(Fe::ONE);
        let v = d().mul(yy).add(Fe::ONE);
        let (is_square, mut x) = sqrt_ratio(u, v);
        if !is_square {
            return Err(DecompressError);
        }
        if x.is_zero() && x_sign {
            // -0 is not a valid encoding.
            return Err(DecompressError);
        }
        if x.is_negative() != x_sign {
            x = x.neg();
        }
        Ok(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Parses the 32-byte RFC 8032 point encoding.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] when the y coordinate has no matching x.
    pub fn decompress(bytes: &[u8; 32]) -> Result<Point, DecompressError> {
        let x_sign = bytes[31] >> 7 == 1;
        let y = Fe::from_bytes(bytes);
        Point::from_y(y, x_sign)
    }

    /// Serializes to the 32-byte RFC 8032 encoding (y with x's sign bit).
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut bytes = y.to_bytes();
        if x.is_negative() {
            bytes[31] |= 0x80;
        }
        bytes
    }

    /// Addition against a precomputed [`CachedPoint`]: the same unified
    /// formula as [`Point::add`] with `other`'s reusable subexpressions
    /// already evaluated, saving two field multiplications per addition.
    /// All table-driven scalar multiplication goes through this.
    #[must_use]
    #[inline]
    fn add_cached(&self, other: &CachedPoint) -> Point {
        // Lazy add/sub throughout: all inputs are weakly reduced (point
        // coordinates and cached table entries are multiplication
        // outputs), so intermediate limbs stay below 2^55 and the final
        // multiplications absorb the slack (see field.rs bound notes).
        let a = self.y.sub_lazy(self.x).mul(other.y_minus_x);
        let b = self.y.add_lazy(self.x).mul(other.y_plus_x);
        let c = self.t.mul(other.t2d);
        let dd = self.z.mul(other.z2);
        let e = b.sub_lazy(a);
        let f = dd.sub_lazy(c);
        let g = dd.add_lazy(c);
        let h = b.add_lazy(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point addition (unified formulas, a = −1).
    #[must_use]
    #[inline]
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub_lazy(self.x).mul(other.y.sub_lazy(other.x));
        let b = self.y.add_lazy(self.x).mul(other.y.add_lazy(other.x));
        let c = self.t.mul(d2()).mul(other.t);
        let zz = self.z.mul(other.z);
        let dd = zz.add_lazy(zz);
        let e = b.sub_lazy(a);
        let f = dd.sub_lazy(c);
        let g = dd.add_lazy(c);
        let h = b.add_lazy(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point doubling.
    #[must_use]
    #[inline]
    pub fn double(&self) -> Point {
        self.as_projective().double().to_extended()
    }

    /// Drops the extended coordinate, keeping (X : Y : Z).
    #[inline]
    fn as_projective(&self) -> Projective {
        Projective {
            x: self.x,
            y: self.y,
            z: self.z,
        }
    }

    /// Point negation.
    #[must_use]
    #[inline]
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication `[k]self` by plain double-and-add.
    ///
    /// This is the *reference* ladder: one doubling per bit and one
    /// addition per set bit, with no tables and no signed encodings.
    /// The windowed paths ([`Point::mul_wnaf`], [`Point::mul_basepoint`],
    /// [`Point::double_scalar_mul`]) are property-tested against it, and
    /// the benchmark ablation uses it as the naive baseline.
    #[must_use]
    pub fn mul_scalar(&self, k: &Scalar) -> Point {
        let mut acc = Point::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if k.bit(i) == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Scalar multiplication `[k]self` with a width-5 sliding window
    /// (wNAF): an 8-entry odd-multiple table, ~256 doublings and ~42
    /// additions instead of double-and-add's ~128 additions.
    #[must_use]
    pub fn mul_wnaf(&self, k: &Scalar) -> Point {
        let naf = k.non_adjacent_form(5);
        let table = NafLookupTable::<8>::from_point(self);
        straus_chain(
            highest_nonzero(&[&naf]),
            |i| naf[i] != 0,
            |i, p| p.add_cached(&table.select(naf[i])),
        )
    }

    /// Simultaneous double-scalar multiplication `[a]P + [b]Q` (Straus):
    /// one shared doubling chain over both scalars' width-5 wNAF digits,
    /// with an odd-multiple table per point.
    #[must_use]
    pub fn double_scalar_mul(a: &Scalar, p: &Point, b: &Scalar, q: &Point) -> Point {
        let a_naf = a.non_adjacent_form(5);
        let b_naf = b.non_adjacent_form(5);
        let p_table = NafLookupTable::<8>::from_point(p);
        let q_table = NafLookupTable::<8>::from_point(q);
        straus_chain(
            highest_nonzero(&[&a_naf, &b_naf]),
            |i| a_naf[i] != 0 || b_naf[i] != 0,
            |i, mut acc| {
                if a_naf[i] != 0 {
                    acc = acc.add_cached(&p_table.select(a_naf[i]));
                }
                if b_naf[i] != 0 {
                    acc = acc.add_cached(&q_table.select(b_naf[i]));
                }
                acc
            },
        )
    }

    /// `[a]B + [b]Q` for the fixed basepoint B: the hot path of signature
    /// verification (`[s]B + [k](−A)`).
    ///
    /// B's digits use width-8 wNAF against a precomputed 64-entry static
    /// table (built once per process), so only the dynamic point Q pays
    /// for table construction.
    #[must_use]
    pub fn double_scalar_mul_basepoint(a: &Scalar, b: &Scalar, q: &Point) -> Point {
        let a_naf = a.non_adjacent_form(8);
        let b_naf = b.non_adjacent_form(5);
        let b_table = basepoint_naf_table();
        let q_table = NafLookupTable::<8>::from_point(q);
        straus_chain(
            highest_nonzero(&[&a_naf, &b_naf]),
            |i| a_naf[i] != 0 || b_naf[i] != 0,
            |i, mut acc| {
                if a_naf[i] != 0 {
                    acc = acc.add_cached(&b_table.select(a_naf[i]));
                }
                if b_naf[i] != 0 {
                    acc = acc.add_cached(&q_table.select(b_naf[i]));
                }
                acc
            },
        )
    }

    /// Fixed-base multiplication `[k]B` from the precomputed radix-16
    /// basepoint table: 64 table additions plus 4 doublings, replacing the
    /// 256-doubling ladder. Used by signing (`[r]B`) and key derivation.
    #[must_use]
    pub fn mul_basepoint(k: &Scalar) -> Point {
        let digits = k.to_radix16();
        let table = basepoint_table();
        // ∑ d_i·16^i B = ∑_{i odd} d_i·16^i B + ∑_{i even} d_i·16^i B, and
        // the odd-index sum is 16 × ∑ d_{2j+1}·16^{2j} B — four doublings
        // applied once, so every digit reads a 16^{2j}-stride table.
        let mut acc = Point::identity();
        for i in (1..64).step_by(2) {
            if let Some(entry) = table.select(i / 2, digits[i]) {
                acc = acc.add_cached(&entry);
            }
        }
        acc = acc.double().double().double().double();
        for i in (0..64).step_by(2) {
            if let Some(entry) = table.select(i / 2, digits[i]) {
                acc = acc.add_cached(&entry);
            }
        }
        acc
    }

    /// Variable-length Straus multiscalar multiplication
    /// `∑ [scalars[i]] points[i]`: one shared doubling chain across all
    /// terms, width-5 wNAF per point. Batch signature verification reduces
    /// to a single call.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length.
    #[must_use]
    pub fn multiscalar_mul(scalars: &[Scalar], points: &[Point]) -> Point {
        assert_eq!(scalars.len(), points.len(), "mismatched multiscalar input");
        if scalars.is_empty() {
            return Point::identity();
        }
        let nafs: Vec<[i8; 256]> = scalars.iter().map(|s| s.non_adjacent_form(5)).collect();
        let tables: Vec<NafLookupTable<8>> =
            points.iter().map(NafLookupTable::<8>::from_point).collect();
        let naf_refs: Vec<&[i8; 256]> = nafs.iter().collect();
        straus_chain(
            highest_nonzero(&naf_refs),
            |i| nafs.iter().any(|naf| naf[i] != 0),
            |i, mut acc| {
                for (naf, table) in nafs.iter().zip(&tables) {
                    if naf[i] != 0 {
                        acc = acc.add_cached(&table.select(naf[i]));
                    }
                }
                acc
            },
        )
    }

    /// Projective equality: X1·Z2 = X2·Z1 and Y1·Z2 = Y2·Z1.
    #[must_use]
    pub fn eq_point(&self, other: &Point) -> bool {
        self.x.mul(other.z).ct_eq(other.x.mul(self.z))
            && self.y.mul(other.z).ct_eq(other.y.mul(self.z))
    }

    /// True when this is the neutral element.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.eq_point(&Point::identity())
    }

    /// Checks the affine point satisfies the curve equation (debug aid and
    /// test invariant).
    #[must_use]
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let xx = x.square();
        let yy = y.square();
        // −x² + y² = 1 + d x² y²
        yy.sub(xx).ct_eq(Fe::ONE.add(d().mul(xx).mul(yy)))
    }
}

/// A point with the reusable inputs of the unified addition formula
/// precomputed: (Y+X, Y−X, 2d·T, 2Z). Tables store these so each
/// table-driven addition costs 7 field multiplications instead of 9, and
/// negation is free (swap the sums, flip `t2d`).
#[derive(Clone, Copy, Debug)]
struct CachedPoint {
    y_plus_x: Fe,
    y_minus_x: Fe,
    t2d: Fe,
    z2: Fe,
}

impl CachedPoint {
    #[inline]
    fn from_point(p: &Point) -> CachedPoint {
        CachedPoint {
            y_plus_x: p.y.add(p.x),
            y_minus_x: p.y.sub(p.x),
            t2d: p.t.mul(d2()),
            z2: p.z.mul_small(2),
        }
    }

    #[inline]
    fn neg(&self) -> CachedPoint {
        CachedPoint {
            y_plus_x: self.y_minus_x,
            y_minus_x: self.y_plus_x,
            t2d: self.t2d.neg(),
            z2: self.z2,
        }
    }
}

/// A point in plain projective coordinates (X : Y : Z), without the
/// extended coordinate T = XY/Z. Doubling never reads T, so the shared
/// doubling chains of the Straus loops carry this form between
/// iterations and only pay for T on the iterations that actually add.
#[derive(Clone, Copy, Debug)]
struct Projective {
    x: Fe,
    y: Fe,
    z: Fe,
}

/// The (E, F, G, H) output of the doubling formula before the final
/// multiplications: the doubled point is (E·F : G·H : F·G) with
/// T = E·H. Materializing only what the next step needs saves one field
/// multiplication per doubling-only iteration.
#[derive(Clone, Copy, Debug)]
struct Completed {
    e: Fe,
    f: Fe,
    g: Fe,
    h: Fe,
}

impl Projective {
    fn identity() -> Projective {
        Projective {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
        }
    }

    /// Doubling: 4 squarings and no full multiplications; products are
    /// deferred to [`Completed::to_projective`] / [`Completed::to_extended`].
    #[inline]
    fn double(&self) -> Completed {
        let a = self.x.square();
        let b = self.y.square();
        let zz = self.z.square();
        let c = zz.add_lazy(zz);
        let h = a.add_lazy(b);
        let e = h.sub_lazy(self.x.add_lazy(self.y).square());
        let g = a.sub_lazy(b);
        let f = c.add_lazy(g);
        Completed { e, f, g, h }
    }
}

impl Completed {
    /// Three multiplications: enough to keep doubling.
    #[inline]
    fn to_projective(self) -> Projective {
        Projective {
            x: self.e.mul(self.f),
            y: self.g.mul(self.h),
            z: self.f.mul(self.g),
        }
    }

    /// Four multiplications: the full extended point, required before an
    /// addition (which reads T).
    #[inline]
    fn to_extended(self) -> Point {
        Point {
            x: self.e.mul(self.f),
            y: self.g.mul(self.h),
            z: self.f.mul(self.g),
            t: self.e.mul(self.h),
        }
    }
}

/// Odd multiples [P, 3P, 5P, …, (2N−1)P] in cached form, indexed by wNAF
/// digit. N = 8 serves width-5 digits (|d| ≤ 15), N = 64 width-8
/// (|d| ≤ 127).
struct NafLookupTable<const N: usize>([CachedPoint; N]);

impl<const N: usize> NafLookupTable<N> {
    fn from_point(p: &Point) -> Self {
        let p2 = p.double();
        let mut entries = [CachedPoint::from_point(p); N];
        let mut current = *p;
        for entry in entries.iter_mut().skip(1) {
            current = p2.add_cached(&CachedPoint::from_point(&current));
            *entry = CachedPoint::from_point(&current);
        }
        Self(entries)
    }

    /// The table entry for an odd signed digit: `[digit]P`.
    #[inline]
    fn select(&self, digit: i8) -> CachedPoint {
        debug_assert_eq!(digit & 1, 1, "wNAF digits are odd");
        if digit > 0 {
            self.0[(digit as usize - 1) / 2]
        } else {
            self.0[(digit.unsigned_abs() as usize - 1) / 2].neg()
        }
    }
}

/// The static width-8 wNAF table for the basepoint, built on first use.
fn basepoint_naf_table() -> &'static NafLookupTable<64> {
    static CELL: OnceLock<NafLookupTable<64>> = OnceLock::new();
    CELL.get_or_init(|| NafLookupTable::<64>::from_point(&Point::basepoint()))
}

/// The radix-16 fixed-base table: `entry(i, j) = [j·16^(2i)]B` for
/// `j ∈ 1..=8`, `i ∈ 0..32`. 256 cached points (~40 KiB), built once.
struct BasepointTable(Vec<[CachedPoint; 8]>);

impl BasepointTable {
    /// `[digit · 16^(2i)]B` for a signed radix-16 digit, or `None` for 0.
    fn select(&self, i: usize, digit: i8) -> Option<CachedPoint> {
        match digit.cmp(&0) {
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(self.0[i][digit as usize - 1]),
            std::cmp::Ordering::Less => Some(self.0[i][digit.unsigned_abs() as usize - 1].neg()),
        }
    }
}

/// The static radix-16 basepoint table, built on first use (mirrors
/// [`Point::basepoint`]'s `OnceLock` idiom).
fn basepoint_table() -> &'static BasepointTable {
    static CELL: OnceLock<BasepointTable> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut rows = Vec::with_capacity(32);
        let mut base = Point::basepoint();
        for _ in 0..32 {
            let mut row = [CachedPoint::from_point(&base); 8];
            let mut current = base;
            for entry in row.iter_mut().skip(1) {
                current = current.add(&base);
                *entry = CachedPoint::from_point(&current);
            }
            rows.push(row);
            // Advance base from [16^(2i)]B to [16^(2i+2)]B.
            for _ in 0..8 {
                base = base.double();
            }
        }
        BasepointTable(rows)
    })
}

/// The shared-doubling chain behind every windowed scalar multiplication:
/// walks digit positions from `start` down to 0, doubling once per
/// position and calling `add_digits` wherever `any_digit` reports work.
/// Doubling-only steps stay in projective form (no extended coordinate),
/// so they cost 4 squarings + 3 multiplications; the extended T is
/// materialized only on the steps an addition actually consumes it.
fn straus_chain(
    start: usize,
    any_digit: impl Fn(usize) -> bool,
    add_digits: impl Fn(usize, Point) -> Point,
) -> Point {
    let mut acc = Projective::identity();
    let mut i = start;
    loop {
        let doubled = acc.double();
        if any_digit(i) {
            let ext = add_digits(i, doubled.to_extended());
            if i == 0 {
                return ext;
            }
            acc = ext.as_projective();
        } else {
            if i == 0 {
                return doubled.to_extended();
            }
            acc = doubled.to_projective();
        }
        i -= 1;
    }
}

/// The highest index at which any of the digit strings is nonzero (0 when
/// all are zero); scalar-mul loops start here instead of doubling the
/// identity 256 times.
fn highest_nonzero(nafs: &[&[i8; 256]]) -> usize {
    for i in (0..256).rev() {
        if nafs.iter().any(|naf| naf[i] != 0) {
            return i;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_on_curve() {
        assert!(Point::basepoint().is_on_curve());
    }

    #[test]
    fn basepoint_compressed_encoding_matches_rfc() {
        // RFC 8032: B encodes as 0x58 followed by 31 bytes of 0x66.
        let mut expect = [0x66u8; 32];
        expect[0] = 0x58;
        assert_eq!(Point::basepoint().compress(), expect);
    }

    #[test]
    fn decompress_compress_round_trip() {
        let b = Point::basepoint();
        for k in 1u64..20 {
            let p = b.mul_scalar(&Scalar::from_u64(k));
            let enc = p.compress();
            let q = Point::decompress(&enc).unwrap();
            assert!(p.eq_point(&q), "k = {k}");
            assert!(q.is_on_curve());
        }
    }

    #[test]
    fn addition_matches_scalar_multiplication() {
        let b = Point::basepoint();
        let two = b.add(&b);
        assert!(two.eq_point(&b.double()));
        assert!(two.eq_point(&b.mul_scalar(&Scalar::from_u64(2))));
        let five = b
            .mul_scalar(&Scalar::from_u64(2))
            .add(&b.mul_scalar(&Scalar::from_u64(3)));
        assert!(five.eq_point(&b.mul_scalar(&Scalar::from_u64(5))));
    }

    #[test]
    fn identity_is_neutral() {
        let b = Point::basepoint();
        assert!(b.add(&Point::identity()).eq_point(&b));
        assert!(Point::identity().add(&b).eq_point(&b));
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn order_l_annihilates_basepoint() {
        // [ℓ]B = identity: encode ℓ as ℓ-1 then add B once more.
        let mut l_minus_1 = super::super::scalar::L;
        l_minus_1[0] -= 1;
        let mut bytes = [0u8; 32];
        for (i, limb) in l_minus_1.iter().enumerate() {
            bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&bytes).unwrap();
        let b = Point::basepoint();
        let almost = b.mul_scalar(&s);
        assert!(almost.add(&b).is_identity());
    }

    #[test]
    fn scalar_mul_is_linear() {
        let b = Point::basepoint();
        let k1 = Scalar::from_u64(1234);
        let k2 = Scalar::from_u64(5678);
        let lhs = b.mul_scalar(&k1.add(k2));
        let rhs = b.mul_scalar(&k1).add(&b.mul_scalar(&k2));
        assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn invalid_encoding_rejected() {
        // y = 2 gives y²−1 = 3, dy²+1: 3/(4d+1) is not a QR for this curve.
        // Easier: an encoding that is a valid field element but not on the
        // curve. Try a few candidates and expect at least one rejection.
        let mut rejected = 0;
        for c in 0u8..8 {
            let mut bytes = [0u8; 32];
            bytes[0] = 2 + c;
            if Point::decompress(&bytes).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "some small-y encodings must be off-curve");
    }

    #[test]
    fn compressed_points_are_stable_under_double_negation() {
        let p = Point::basepoint().mul_scalar(&Scalar::from_u64(7));
        assert!(p.neg().neg().eq_point(&p));
        assert_eq!(p.neg().neg().compress(), p.compress());
    }

    #[test]
    fn double_scalar_mul_matches_separate_ladders() {
        let b = Point::basepoint();
        let q = b.mul_scalar(&Scalar::from_u64(99));
        for (ka, kb) in [
            (0u64, 0u64),
            (1, 0),
            (0, 1),
            (5, 7),
            (1234, 98765),
            (u64::MAX, 3),
        ] {
            let (sa, sb) = (Scalar::from_u64(ka), Scalar::from_u64(kb));
            let fused = Point::double_scalar_mul(&sa, &b, &sb, &q);
            let separate = b.mul_scalar(&sa).add(&q.mul_scalar(&sb));
            assert!(fused.eq_point(&separate), "ka={ka} kb={kb}");
            let via_basepoint = Point::double_scalar_mul_basepoint(&sa, &sb, &q);
            assert!(via_basepoint.eq_point(&separate), "ka={ka} kb={kb}");
        }
    }

    #[test]
    fn cached_addition_matches_plain_addition() {
        let b = Point::basepoint();
        let p = b.mul_scalar(&Scalar::from_u64(31));
        let q = b.mul_scalar(&Scalar::from_u64(47));
        let cached = p.add_cached(&CachedPoint::from_point(&q));
        assert!(cached.eq_point(&p.add(&q)));
        let neg = p.add_cached(&CachedPoint::from_point(&q).neg());
        assert!(neg.eq_point(&p.add(&q.neg())));
    }

    #[test]
    fn wnaf_mul_matches_double_and_add() {
        let b = Point::basepoint();
        let p = b.mul_scalar(&Scalar::from_u64(3));
        for fill in [0u8, 1, 0x5a, 0xc3, 0xff] {
            let k = Scalar::from_bytes_mod_order(&[fill; 32]);
            assert!(p.mul_wnaf(&k).eq_point(&p.mul_scalar(&k)), "fill {fill:#x}");
        }
    }

    #[test]
    fn basepoint_table_mul_matches_double_and_add() {
        let b = Point::basepoint();
        for fill in [0u8, 1, 0x42, 0x9d, 0xff] {
            let k = Scalar::from_bytes_mod_order(&[fill; 32]);
            assert!(
                Point::mul_basepoint(&k).eq_point(&b.mul_scalar(&k)),
                "fill {fill:#x}"
            );
        }
        assert!(Point::mul_basepoint(&Scalar::ZERO).is_identity());
    }

    #[test]
    fn multiscalar_mul_matches_sum_of_ladders() {
        let b = Point::basepoint();
        let points: Vec<Point> = (1u64..6)
            .map(|i| b.mul_scalar(&Scalar::from_u64(i * 17)))
            .collect();
        let scalars: Vec<Scalar> = (0u8..5)
            .map(|i| Scalar::from_bytes_mod_order(&[i.wrapping_mul(53); 32]))
            .collect();
        let fused = Point::multiscalar_mul(&scalars, &points);
        let mut expect = Point::identity();
        for (s, p) in scalars.iter().zip(&points) {
            expect = expect.add(&p.mul_scalar(s));
        }
        assert!(fused.eq_point(&expect));
        assert!(Point::multiscalar_mul(&[], &[]).is_identity());
    }
}
