//! Point arithmetic on the twisted Edwards curve
//! −x² + y² = 1 + d·x²y² over GF(2^255 − 19).
//!
//! Points use extended homogeneous coordinates (X : Y : Z : T) with
//! x = X/Z, y = Y/Z, T = XY/Z. Scalar multiplication is plain
//! double-and-add; this workspace runs simulations, not production TLS, so
//! we trade side-channel hardening for clarity (noted here per the crate
//! docs).

// `neg`/`add` mirror group notation; see field.rs rationale.
#![allow(clippy::should_implement_trait)]

use std::sync::OnceLock;

use super::field::{d, d2, sqrt_ratio, Fe};
use super::scalar::Scalar;

/// A point on the Ed25519 curve in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// Error from [`Point::decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompressError;

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte string is not a valid curve point encoding")
    }
}

impl std::error::Error for DecompressError {}

impl Point {
    /// The neutral element (0, 1).
    #[must_use]
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The standard basepoint B with y = 4/5 and x "positive" (even).
    #[must_use]
    pub fn basepoint() -> Point {
        static CELL: OnceLock<Point> = OnceLock::new();
        *CELL.get_or_init(|| {
            let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
            Point::from_y(y, false).expect("basepoint decompresses")
        })
    }

    /// Recovers a point from its y coordinate and the sign bit of x.
    ///
    /// x² = (y² − 1) / (d·y² + 1)
    pub(crate) fn from_y(y: Fe, x_sign: bool) -> Result<Point, DecompressError> {
        let yy = y.square();
        let u = yy.sub(Fe::ONE);
        let v = d().mul(yy).add(Fe::ONE);
        let (is_square, mut x) = sqrt_ratio(u, v);
        if !is_square {
            return Err(DecompressError);
        }
        if x.is_zero() && x_sign {
            // -0 is not a valid encoding.
            return Err(DecompressError);
        }
        if x.is_negative() != x_sign {
            x = x.neg();
        }
        Ok(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Parses the 32-byte RFC 8032 point encoding.
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] when the y coordinate has no matching x.
    pub fn decompress(bytes: &[u8; 32]) -> Result<Point, DecompressError> {
        let x_sign = bytes[31] >> 7 == 1;
        let y = Fe::from_bytes(bytes);
        Point::from_y(y, x_sign)
    }

    /// Serializes to the 32-byte RFC 8032 encoding (y with x's sign bit).
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let mut bytes = y.to_bytes();
        if x.is_negative() {
            bytes[31] |= 0x80;
        }
        bytes
    }

    /// Point addition (unified formulas, a = −1).
    #[must_use]
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(d2()).mul(other.t);
        let dd = self.z.mul(other.z).mul_small(2);
        let e = b.sub(a);
        let f = dd.sub(c);
        let g = dd.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point doubling.
    #[must_use]
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().mul_small(2);
        let h = a.add(b);
        let e = h.sub(self.x.add(self.y).square());
        let g = a.sub(b);
        let f = c.add(g);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            z: f.mul(g),
            t: e.mul(h),
        }
    }

    /// Point negation.
    #[must_use]
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication `[k]self` by double-and-add.
    #[must_use]
    pub fn mul_scalar(&self, k: &Scalar) -> Point {
        let mut acc = Point::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if k.bit(i) == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Simultaneous double-scalar multiplication `[a]P + [b]Q` using the
    /// Straus–Shamir trick: one shared doubling chain with a 4-entry
    /// table, roughly halving the doublings of two separate ladders. Used
    /// by signature verification (`[s]B + [k](−A)`).
    #[must_use]
    pub fn double_scalar_mul(a: &Scalar, p: &Point, b: &Scalar, q: &Point) -> Point {
        let pq = p.add(q);
        let mut acc = Point::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            match (a.bit(i), b.bit(i)) {
                (0, 0) => {}
                (1, 0) => acc = acc.add(p),
                (0, 1) => acc = acc.add(q),
                (1, 1) => acc = acc.add(&pq),
                _ => unreachable!("bits are 0 or 1"),
            }
        }
        acc
    }

    /// Projective equality: X1·Z2 = X2·Z1 and Y1·Z2 = Y2·Z1.
    #[must_use]
    pub fn eq_point(&self, other: &Point) -> bool {
        self.x.mul(other.z).ct_eq(other.x.mul(self.z))
            && self.y.mul(other.z).ct_eq(other.y.mul(self.z))
    }

    /// True when this is the neutral element.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.eq_point(&Point::identity())
    }

    /// Checks the affine point satisfies the curve equation (debug aid and
    /// test invariant).
    #[must_use]
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(zinv);
        let y = self.y.mul(zinv);
        let xx = x.square();
        let yy = y.square();
        // −x² + y² = 1 + d x² y²
        yy.sub(xx).ct_eq(Fe::ONE.add(d().mul(xx).mul(yy)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_on_curve() {
        assert!(Point::basepoint().is_on_curve());
    }

    #[test]
    fn basepoint_compressed_encoding_matches_rfc() {
        // RFC 8032: B encodes as 0x58 followed by 31 bytes of 0x66.
        let mut expect = [0x66u8; 32];
        expect[0] = 0x58;
        assert_eq!(Point::basepoint().compress(), expect);
    }

    #[test]
    fn decompress_compress_round_trip() {
        let b = Point::basepoint();
        for k in 1u64..20 {
            let p = b.mul_scalar(&Scalar::from_u64(k));
            let enc = p.compress();
            let q = Point::decompress(&enc).unwrap();
            assert!(p.eq_point(&q), "k = {k}");
            assert!(q.is_on_curve());
        }
    }

    #[test]
    fn addition_matches_scalar_multiplication() {
        let b = Point::basepoint();
        let two = b.add(&b);
        assert!(two.eq_point(&b.double()));
        assert!(two.eq_point(&b.mul_scalar(&Scalar::from_u64(2))));
        let five = b
            .mul_scalar(&Scalar::from_u64(2))
            .add(&b.mul_scalar(&Scalar::from_u64(3)));
        assert!(five.eq_point(&b.mul_scalar(&Scalar::from_u64(5))));
    }

    #[test]
    fn identity_is_neutral() {
        let b = Point::basepoint();
        assert!(b.add(&Point::identity()).eq_point(&b));
        assert!(Point::identity().add(&b).eq_point(&b));
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn order_l_annihilates_basepoint() {
        // [ℓ]B = identity: encode ℓ as ℓ-1 then add B once more.
        let mut l_minus_1 = super::super::scalar::L;
        l_minus_1[0] -= 1;
        let mut bytes = [0u8; 32];
        for (i, limb) in l_minus_1.iter().enumerate() {
            bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&bytes).unwrap();
        let b = Point::basepoint();
        let almost = b.mul_scalar(&s);
        assert!(almost.add(&b).is_identity());
    }

    #[test]
    fn scalar_mul_is_linear() {
        let b = Point::basepoint();
        let k1 = Scalar::from_u64(1234);
        let k2 = Scalar::from_u64(5678);
        let lhs = b.mul_scalar(&k1.add(k2));
        let rhs = b.mul_scalar(&k1).add(&b.mul_scalar(&k2));
        assert!(lhs.eq_point(&rhs));
    }

    #[test]
    fn invalid_encoding_rejected() {
        // y = 2 gives y²−1 = 3, dy²+1: 3/(4d+1) is not a QR for this curve.
        // Easier: an encoding that is a valid field element but not on the
        // curve. Try a few candidates and expect at least one rejection.
        let mut rejected = 0;
        for c in 0u8..8 {
            let mut bytes = [0u8; 32];
            bytes[0] = 2 + c;
            if Point::decompress(&bytes).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "some small-y encodings must be off-curve");
    }

    #[test]
    fn compressed_points_are_stable_under_double_negation() {
        let p = Point::basepoint().mul_scalar(&Scalar::from_u64(7));
        assert!(p.neg().neg().eq_point(&p));
        assert_eq!(p.neg().neg().compress(), p.compress());
    }

    #[test]
    fn double_scalar_mul_matches_separate_ladders() {
        let b = Point::basepoint();
        let q = b.mul_scalar(&Scalar::from_u64(99));
        for (ka, kb) in [
            (0u64, 0u64),
            (1, 0),
            (0, 1),
            (5, 7),
            (1234, 98765),
            (u64::MAX, 3),
        ] {
            let (sa, sb) = (Scalar::from_u64(ka), Scalar::from_u64(kb));
            let fused = Point::double_scalar_mul(&sa, &b, &sb, &q);
            let separate = b.mul_scalar(&sa).add(&q.mul_scalar(&sb));
            assert!(fused.eq_point(&separate), "ka={ka} kb={kb}");
        }
    }
}
