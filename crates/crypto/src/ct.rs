//! Constant-time comparison helpers.
//!
//! Secret-dependent branching leaks timing information; every comparison of
//! MACs, signatures, or keys in this workspace goes through [`ct_eq`].

/// Compares two byte slices in time dependent only on their lengths.
///
/// Returns `false` immediately if the lengths differ (lengths are public in
/// every protocol in this workspace), otherwise accumulates the XOR of all
/// byte pairs and compares the accumulator to zero once.
///
/// ```
/// use proxy_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    // Collapse to 0/1 without a data-dependent branch: the addition
    // carries into bit 8 exactly when acc != 0.
    let nonzero = (acc as u16).wrapping_add(0xff) >> 8;
    nonzero == 0
}

/// Selects between two words without branching: returns `a` when
/// `choice == 0` and `b` when `choice == 1`.
///
/// # Panics
///
/// Panics in debug builds if `choice` is not 0 or 1.
#[must_use]
pub fn ct_select_u64(choice: u64, a: u64, b: u64) -> u64 {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg(); // 0 or all-ones
    a ^ (mask & (a ^ b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices_compare_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"x", b"x"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices_compare_unequal() {
        assert!(!ct_eq(b"a", b"b"));
        assert!(!ct_eq(&[0u8; 32], &[1u8; 32]));
        // Difference only in last byte.
        let mut b = [0u8; 32];
        b[31] = 1;
        assert!(!ct_eq(&[0u8; 32], &b));
    }

    #[test]
    fn length_mismatch_is_unequal() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"", b"a"));
    }

    #[test]
    fn select_picks_correct_word() {
        assert_eq!(ct_select_u64(0, 5, 9), 5);
        assert_eq!(ct_select_u64(1, 5, 9), 9);
        assert_eq!(ct_select_u64(0, u64::MAX, 0), u64::MAX);
        assert_eq!(ct_select_u64(1, u64::MAX, 0), 0);
    }
}
