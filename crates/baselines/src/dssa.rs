//! DSSA-style role delegation (the paper's §5 comparison).
//!
//! "In the DSSA, restrictions are supported only by creating separate
//! principals, called roles … The creation of a new role is cumbersome
//! when delegating on the fly or when granting access to individual
//! objects." This module models that: every *distinct restriction* needs a
//! new role — a fresh key pair registered with the certification authority
//! (one network round trip) — before a delegation certificate can be
//! issued for that role. The A2 ablation measures the per-delegation
//! overhead against restricted proxies, which restrict inline.

use std::collections::HashMap;

use netsim::{EndpointId, Network};
use rand::RngCore;

use proxy_crypto::ed25519::{Signature, SigningKey, VerifyingKey};

use restricted_proxy::principal::PrincipalId;
use restricted_proxy::restriction::RestrictionSet;

/// The certification authority registering principals and their roles.
#[derive(Debug, Default)]
pub struct CertificationAuthority {
    registered: HashMap<PrincipalId, VerifyingKey>,
}

impl CertificationAuthority {
    /// Creates an empty CA.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a principal or role key (the message a client must send
    /// before anyone can rely on the role).
    pub fn register(&mut self, name: PrincipalId, key: VerifyingKey) {
        self.registered.insert(name, key);
    }

    /// Looks up a registered key.
    #[must_use]
    pub fn key_of(&self, name: &PrincipalId) -> Option<&VerifyingKey> {
        self.registered.get(name)
    }

    /// Number of registered principals+roles (DSSA's namespace blowup).
    #[must_use]
    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }
}

/// A role: a separate principal embodying one restriction profile.
#[derive(Debug)]
pub struct Role {
    /// The role's principal name (`user.role-N`).
    pub name: PrincipalId,
    /// The restriction profile the role stands for.
    pub profile: RestrictionSet,
    key: SigningKey,
}

/// A DSSA delegation certificate: the role delegates to a grantee.
#[derive(Clone, Debug)]
pub struct DelegationCert {
    /// The delegating role.
    pub role: PrincipalId,
    /// The grantee allowed to act in the role.
    pub grantee: PrincipalId,
    /// Signature by the role key over `(role, grantee)`.
    pub signature: Signature,
}

fn cert_bytes(role: &PrincipalId, grantee: &PrincipalId) -> Vec<u8> {
    let mut e = restricted_proxy::encode::Encoder::new();
    e.str(role.as_str()).str(grantee.as_str());
    e.finish()
}

/// A user who can mint roles and delegate through them.
#[derive(Debug)]
pub struct DssaUser {
    name: PrincipalId,
    next_role: u64,
}

impl DssaUser {
    /// Creates a user.
    #[must_use]
    pub fn new(name: PrincipalId) -> Self {
        Self { name, next_role: 1 }
    }

    /// Creates a role for `profile`: generates a key pair and registers
    /// the role at the CA (one round trip on `net`). This is the step
    /// restricted proxies do not need.
    pub fn create_role<R: RngCore>(
        &mut self,
        profile: RestrictionSet,
        ca: &mut CertificationAuthority,
        net: &mut Network,
        rng: &mut R,
    ) -> Role {
        let key = SigningKey::generate(rng);
        let name = PrincipalId::new(format!("{}.role-{}", self.name, self.next_role));
        self.next_role += 1;
        let me = EndpointId::new(self.name.as_str());
        let ca_ep = EndpointId::new("ca");
        net.transmit(&me, &ca_ep, name.as_str().as_bytes());
        ca.register(name.clone(), key.verifying_key());
        net.transmit(&ca_ep, &me, b"ok");
        Role { name, profile, key }
    }

    /// Issues a delegation certificate from `role` to `grantee` (no
    /// network traffic — like granting a proxy).
    #[must_use]
    pub fn delegate(&self, role: &Role, grantee: PrincipalId) -> DelegationCert {
        let signature = role.key.sign(&cert_bytes(&role.name, &grantee));
        DelegationCert {
            role: role.name.clone(),
            grantee,
            signature,
        }
    }
}

/// End-server verification of a DSSA delegation: resolve the role key at
/// the CA (a directory fetch) and check the signature.
pub fn verify_delegation(
    server: &PrincipalId,
    cert: &DelegationCert,
    presenter: &PrincipalId,
    ca: &CertificationAuthority,
    net: &mut Network,
) -> bool {
    let me = EndpointId::new(server.as_str());
    let ca_ep = EndpointId::new("ca");
    net.transmit(&me, &ca_ep, cert.role.as_str().as_bytes());
    let Some(key) = ca.key_of(&cert.role) else {
        net.transmit(&ca_ep, &me, b"unknown");
        return false;
    };
    net.transmit(&ca_ep, &me, key.as_bytes());
    *presenter == cert.grantee
        && key
            .verify(&cert_bytes(&cert.role, &cert.grantee), &cert.signature)
            .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use restricted_proxy::restriction::Restriction;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    #[test]
    fn role_delegation_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ca = CertificationAuthority::new();
        let mut net = Network::new(0);
        let mut alice = DssaUser::new(p("alice"));
        let role = alice.create_role(
            RestrictionSet::new().with(Restriction::AcceptOnce { id: 1 }),
            &mut ca,
            &mut net,
            &mut rng,
        );
        assert_eq!(net.total_messages(), 2, "role creation costs a round trip");
        let cert = alice.delegate(&role, p("bob"));
        assert!(verify_delegation(&p("fs"), &cert, &p("bob"), &ca, &mut net));
        assert!(!verify_delegation(
            &p("fs"),
            &cert,
            &p("carol"),
            &ca,
            &mut net
        ));
    }

    #[test]
    fn each_restriction_profile_needs_a_new_role() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ca = CertificationAuthority::new();
        let mut net = Network::new(0);
        let mut alice = DssaUser::new(p("alice"));
        for i in 0..5 {
            let _ = alice.create_role(
                RestrictionSet::new().with(Restriction::AcceptOnce { id: i }),
                &mut ca,
                &mut net,
                &mut rng,
            );
        }
        assert_eq!(ca.registered_count(), 5, "namespace grows per delegation");
        assert_eq!(net.total_messages(), 10);
    }

    #[test]
    fn unregistered_role_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let ca = CertificationAuthority::new();
        let mut net = Network::new(0);
        // Forge a cert with a never-registered role key.
        let key = SigningKey::generate(&mut rng);
        let cert = DelegationCert {
            role: p("alice.role-1"),
            grantee: p("bob"),
            signature: key.sign(&cert_bytes(&p("alice.role-1"), &p("bob"))),
        };
        assert!(!verify_delegation(
            &p("fs"),
            &cert,
            &p("bob"),
            &ca,
            &mut net
        ));
    }

    #[test]
    fn tampered_cert_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ca = CertificationAuthority::new();
        let mut net = Network::new(0);
        let mut alice = DssaUser::new(p("alice"));
        let role = alice.create_role(RestrictionSet::new(), &mut ca, &mut net, &mut rng);
        let mut cert = alice.delegate(&role, p("bob"));
        cert.grantee = p("mallory");
        assert!(!verify_delegation(
            &p("fs"),
            &cert,
            &p("mallory"),
            &ca,
            &mut net
        ));
    }
}
