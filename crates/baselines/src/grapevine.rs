//! Grapevine-style online group checks (the paper's §5 comparison).
//!
//! "End-servers query registration servers to determine whether a client
//! is a member of a particular group … the authorization decision remains
//! with the local system." Every request costs the end-server a round
//! trip to the registration server; the F3 experiment contrasts this with
//! group proxies, which cost one round trip *per proxy lifetime*.

use std::collections::{HashMap, HashSet};

use netsim::{EndpointId, Network};

use restricted_proxy::principal::PrincipalId;

/// A Grapevine-style registration server.
#[derive(Debug, Default)]
pub struct RegistrationServer {
    groups: HashMap<String, HashSet<PrincipalId>>,
}

impl RegistrationServer {
    /// Creates an empty registration server.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member to a group.
    pub fn add_member(&mut self, group: &str, member: PrincipalId) {
        self.groups
            .entry(group.to_string())
            .or_default()
            .insert(member);
    }

    /// Removes a member from a group.
    pub fn remove_member(&mut self, group: &str, member: &PrincipalId) {
        if let Some(set) = self.groups.get_mut(group) {
            set.remove(member);
        }
    }

    /// The membership predicate (evaluated server-side).
    #[must_use]
    pub fn is_member(&self, group: &str, member: &PrincipalId) -> bool {
        self.groups.get(group).is_some_and(|s| s.contains(member))
    }
}

/// An end-server's per-request membership query: one round trip to the
/// registration server, every single time.
pub fn query_membership(
    server: &PrincipalId,
    registry: &RegistrationServer,
    group: &str,
    member: &PrincipalId,
    net: &mut Network,
) -> bool {
    let me = EndpointId::new(server.as_str());
    let reg = EndpointId::new("registration");
    net.transmit(&me, &reg, format!("{group}?{member}").as_bytes());
    let answer = registry.is_member(group, member);
    net.transmit(&reg, &me, &[u8::from(answer)]);
    answer
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    #[test]
    fn membership_queries_answer_correctly() {
        let mut reg = RegistrationServer::new();
        reg.add_member("staff", p("bob"));
        let mut net = Network::new(0);
        assert!(query_membership(
            &p("fs"),
            &reg,
            "staff",
            &p("bob"),
            &mut net
        ));
        assert!(!query_membership(
            &p("fs"),
            &reg,
            "staff",
            &p("carol"),
            &mut net
        ));
        assert!(!query_membership(
            &p("fs"),
            &reg,
            "nogroup",
            &p("bob"),
            &mut net
        ));
    }

    #[test]
    fn every_request_costs_a_round_trip() {
        let mut reg = RegistrationServer::new();
        reg.add_member("staff", p("bob"));
        let mut net = Network::new(0);
        for _ in 0..10 {
            query_membership(&p("fs"), &reg, "staff", &p("bob"), &mut net);
        }
        assert_eq!(net.total_messages(), 20, "2 messages × 10 requests");
    }

    #[test]
    fn removal_takes_effect_immediately() {
        // The upside of online queries: instant revocation.
        let mut reg = RegistrationServer::new();
        reg.add_member("staff", p("bob"));
        let mut net = Network::new(0);
        assert!(query_membership(
            &p("fs"),
            &reg,
            "staff",
            &p("bob"),
            &mut net
        ));
        reg.remove_member("staff", &p("bob"));
        assert!(!query_membership(
            &p("fs"),
            &reg,
            "staff",
            &p("bob"),
            &mut net
        ));
    }
}
