//! Amoeba-style prepaid bank service (the paper's §5 comparison).
//!
//! "In Amoeba, a client must contact the bank and transfer funds into the
//! server's account before it contacts the server. The server will then
//! provide services until the pre-paid funds have been exhausted." The F5
//! experiment contrasts this prepay model (up-front transfer, refund
//! traffic for unused funds) with pay-by-check.

use std::collections::HashMap;

use netsim::{EndpointId, Network};

use restricted_proxy::principal::PrincipalId;
use restricted_proxy::restriction::Currency;

use crate::BaselineError;

/// The Amoeba bank: plain accounts plus per-(client, server) prepaid pots.
#[derive(Debug, Default)]
pub struct AmoebaBank {
    balances: HashMap<(PrincipalId, Currency), u64>,
    /// Funds a client has prepaid toward a particular server.
    prepaid: HashMap<(PrincipalId, PrincipalId, Currency), u64>,
}

impl AmoebaBank {
    /// Creates an empty bank.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits an account (administrative funding).
    pub fn credit(&mut self, owner: PrincipalId, currency: Currency, amount: u64) {
        *self.balances.entry((owner, currency)).or_insert(0) += amount;
    }

    /// Balance of `owner` in `currency`.
    #[must_use]
    pub fn balance(&self, owner: &PrincipalId, currency: &Currency) -> u64 {
        self.balances
            .get(&(owner.clone(), currency.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// Funds `client` has prepaid toward `server`.
    #[must_use]
    pub fn prepaid(&self, client: &PrincipalId, server: &PrincipalId, currency: &Currency) -> u64 {
        self.prepaid
            .get(&(client.clone(), server.clone(), currency.clone()))
            .copied()
            .unwrap_or(0)
    }

    /// The mandatory up-front transfer: client → server pot, *before* any
    /// service. Costs a round trip to the bank on `net`.
    ///
    /// # Errors
    ///
    /// [`BaselineError::InsufficientFunds`] when the client cannot cover
    /// the prepayment.
    pub fn prepay(
        &mut self,
        client: &PrincipalId,
        server: &PrincipalId,
        currency: Currency,
        amount: u64,
        net: &mut Network,
    ) -> Result<(), BaselineError> {
        let client_ep = EndpointId::new(client.as_str());
        let bank_ep = EndpointId::new("bank");
        net.transmit(&client_ep, &bank_ep, &amount.to_le_bytes());
        let balance = self
            .balances
            .entry((client.clone(), currency.clone()))
            .or_insert(0);
        if *balance < amount {
            net.transmit(&bank_ep, &client_ep, b"insufficient");
            return Err(BaselineError::InsufficientFunds {
                requested: amount,
                available: *balance,
            });
        }
        *balance -= amount;
        *self
            .prepaid
            .entry((client.clone(), server.clone(), currency))
            .or_insert(0) += amount;
        net.transmit(&bank_ep, &client_ep, b"ok");
        Ok(())
    }

    /// The server draws down prepaid funds as it performs work (no bank
    /// traffic — the pot is the server's to spend).
    ///
    /// # Errors
    ///
    /// [`BaselineError::InsufficientFunds`] when the pot is exhausted —
    /// the client must prepay again before more service.
    pub fn consume(
        &mut self,
        client: &PrincipalId,
        server: &PrincipalId,
        currency: &Currency,
        amount: u64,
    ) -> Result<(), BaselineError> {
        let pot = self
            .prepaid
            .entry((client.clone(), server.clone(), currency.clone()))
            .or_insert(0);
        if *pot < amount {
            return Err(BaselineError::InsufficientFunds {
                requested: amount,
                available: *pot,
            });
        }
        *pot -= amount;
        *self
            .balances
            .entry((server.clone(), currency.clone()))
            .or_insert(0) += amount;
        Ok(())
    }

    /// Refunds the unused remainder of a pot back to the client (another
    /// round trip the check model avoids).
    pub fn refund(
        &mut self,
        client: &PrincipalId,
        server: &PrincipalId,
        currency: &Currency,
        net: &mut Network,
    ) -> u64 {
        let client_ep = EndpointId::new(client.as_str());
        let bank_ep = EndpointId::new("bank");
        net.transmit(&client_ep, &bank_ep, b"refund");
        let pot = self
            .prepaid
            .remove(&(client.clone(), server.clone(), currency.clone()))
            .unwrap_or(0);
        *self
            .balances
            .entry((client.clone(), currency.clone()))
            .or_insert(0) += pot;
        net.transmit(&bank_ep, &client_ep, &pot.to_le_bytes());
        pot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn usd() -> Currency {
        Currency::new("USD")
    }

    #[test]
    fn prepay_consume_refund_cycle() {
        let mut bank = AmoebaBank::new();
        let mut net = Network::new(0);
        bank.credit(p("client"), usd(), 100);
        bank.prepay(&p("client"), &p("srv"), usd(), 60, &mut net)
            .unwrap();
        assert_eq!(bank.balance(&p("client"), &usd()), 40);
        assert_eq!(bank.prepaid(&p("client"), &p("srv"), &usd()), 60);
        bank.consume(&p("client"), &p("srv"), &usd(), 25).unwrap();
        assert_eq!(bank.balance(&p("srv"), &usd()), 25);
        let refunded = bank.refund(&p("client"), &p("srv"), &usd(), &mut net);
        assert_eq!(refunded, 35);
        assert_eq!(bank.balance(&p("client"), &usd()), 75);
        // prepay (2) + refund (2) messages.
        assert_eq!(net.total_messages(), 4);
    }

    #[test]
    fn service_stops_when_pot_exhausted() {
        let mut bank = AmoebaBank::new();
        let mut net = Network::new(0);
        bank.credit(p("client"), usd(), 10);
        bank.prepay(&p("client"), &p("srv"), usd(), 10, &mut net)
            .unwrap();
        bank.consume(&p("client"), &p("srv"), &usd(), 10).unwrap();
        let err = bank
            .consume(&p("client"), &p("srv"), &usd(), 1)
            .unwrap_err();
        assert_eq!(
            err,
            BaselineError::InsufficientFunds {
                requested: 1,
                available: 0
            }
        );
    }

    #[test]
    fn cannot_prepay_beyond_balance() {
        let mut bank = AmoebaBank::new();
        let mut net = Network::new(0);
        bank.credit(p("client"), usd(), 5);
        let err = bank
            .prepay(&p("client"), &p("srv"), usd(), 6, &mut net)
            .unwrap_err();
        assert_eq!(
            err,
            BaselineError::InsufficientFunds {
                requested: 6,
                available: 5
            }
        );
        assert_eq!(bank.balance(&p("client"), &usd()), 5, "no partial transfer");
    }

    #[test]
    fn pots_are_per_server() {
        let mut bank = AmoebaBank::new();
        let mut net = Network::new(0);
        bank.credit(p("client"), usd(), 100);
        bank.prepay(&p("client"), &p("srv1"), usd(), 30, &mut net)
            .unwrap();
        bank.prepay(&p("client"), &p("srv2"), usd(), 20, &mut net)
            .unwrap();
        // srv2 cannot draw from srv1's pot.
        assert!(bank.consume(&p("client"), &p("srv2"), &usd(), 25).is_err());
        assert!(bank.consume(&p("client"), &p("srv1"), &usd(), 25).is_ok());
    }
}
