//! # proxy-baselines
//!
//! The comparison systems the paper discusses in §5, implemented so the
//! benchmark harness can measure restricted proxies against them:
//!
//! * [`sollins`] — cascaded authentication with *online* chain
//!   verification (each link validated by querying the authentication
//!   server), vs. our offline chains (§3.4, experiment F4).
//! * [`dssa`] — role-based delegation: every restriction profile requires
//!   registering a fresh role principal at a CA before delegating
//!   (ablation A2).
//! * [`amoeba`] — the prepaid bank server: transfer funds to the server's
//!   pot before service, refund what is left (experiment F5).
//! * [`grapevine`] — per-request online group-membership queries
//!   (experiment F3).
//!
//! ```
//! use netsim::Network;
//! use proxy_baselines::grapevine::{query_membership, RegistrationServer};
//! use restricted_proxy::principal::PrincipalId;
//!
//! let mut reg = RegistrationServer::new();
//! reg.add_member("staff", PrincipalId::new("bob"));
//! let mut net = Network::new(0);
//! assert!(query_membership(&PrincipalId::new("fs"), &reg, "staff", &PrincipalId::new("bob"), &mut net));
//! assert_eq!(net.total_messages(), 2, "every request costs a round trip");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amoeba;
pub mod dssa;
pub mod grapevine;
pub mod sollins;

pub use amoeba::AmoebaBank;
pub use dssa::{CertificationAuthority, DelegationCert, DssaUser, Role};
pub use grapevine::RegistrationServer;
pub use sollins::{Passport, SollinsAuthServer};

/// Errors shared by the baseline implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// An account or pot could not cover a request.
    InsufficientFunds {
        /// Amount requested.
        requested: u64,
        /// Amount available.
        available: u64,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InsufficientFunds {
                requested,
                available,
            } => {
                write!(
                    f,
                    "insufficient funds: requested {requested}, available {available}"
                )
            }
        }
    }
}

impl std::error::Error for BaselineError {}
