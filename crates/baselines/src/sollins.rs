//! Sollins-style cascaded authentication (the paper's §3.4 comparison).
//!
//! In Sollins's scheme [Sollins 1988], restrictions are added as
//! credentials pass from system to system — like restricted proxies — but
//! "the end-server has to contact the authentication server to verify the
//! authenticity of a chain of proxies". This module implements that online
//! variant so the F4 experiment can measure the message-count and latency
//! difference against offline chain verification.

use netsim::{EndpointId, Network};

use proxy_crypto::hmac::HmacSha256;
use proxy_crypto::keys::SymmetricKey;

use restricted_proxy::principal::PrincipalId;
use restricted_proxy::restriction::RestrictionSet;

/// One link of a Sollins-style passport: a principal passed the request on,
/// adding restrictions. The MAC is keyed with the *authentication
/// server's* key, so only the authentication server can validate it.
#[derive(Clone, Debug)]
pub struct PassportLink {
    /// The principal that added this link.
    pub principal: PrincipalId,
    /// Restrictions added at this hop.
    pub restrictions: RestrictionSet,
    /// MAC over the link, keyed by the authentication server.
    pub mac: [u8; 32],
}

/// A chain of links rooted at the original requester.
#[derive(Clone, Debug, Default)]
pub struct Passport {
    /// Links, origin first.
    pub links: Vec<PassportLink>,
}

/// The central authentication server that both issues and (crucially)
/// *validates* links.
#[derive(Debug)]
pub struct SollinsAuthServer {
    name: PrincipalId,
    key: SymmetricKey,
}

fn link_bytes(principal: &PrincipalId, restrictions: &RestrictionSet, index: usize) -> Vec<u8> {
    let mut e = restricted_proxy::encode::Encoder::new();
    e.str(principal.as_str()).u64(index as u64);
    restrictions.encode_into(&mut e);
    e.finish()
}

impl SollinsAuthServer {
    /// Creates the authentication server.
    #[must_use]
    pub fn new(name: PrincipalId, key: SymmetricKey) -> Self {
        Self { name, key }
    }

    /// The server's name (a network endpoint in the experiments).
    #[must_use]
    pub fn name(&self) -> &PrincipalId {
        &self.name
    }

    /// Issues a new link extending `passport` on behalf of `principal`
    /// (clients contact the authentication server for this — one
    /// round-trip at delegation time, like ours).
    pub fn extend(
        &self,
        passport: &Passport,
        principal: PrincipalId,
        restrictions: RestrictionSet,
    ) -> Passport {
        let index = passport.links.len();
        let mac = HmacSha256::mac(
            self.key.as_bytes(),
            &link_bytes(&principal, &restrictions, index),
        );
        let mut out = passport.clone();
        out.links.push(PassportLink {
            principal,
            restrictions,
            mac,
        });
        out
    }

    /// Validates one link (the query end-servers must send us).
    #[must_use]
    pub fn validate_link(&self, link: &PassportLink, index: usize) -> bool {
        HmacSha256::verify(
            self.key.as_bytes(),
            &link_bytes(&link.principal, &link.restrictions, index),
            &link.mac,
        )
    }
}

/// Outcome of an online chain verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnlineVerification {
    /// Whether every link validated.
    pub valid: bool,
    /// Round-trip queries the end-server made to the authentication
    /// server (the cost restricted proxies avoid).
    pub auth_server_round_trips: u64,
}

/// An end-server that cannot validate links itself: for each link it
/// queries the authentication server over the network.
pub fn verify_online(
    server: &PrincipalId,
    passport: &Passport,
    auth: &SollinsAuthServer,
    net: &mut Network,
) -> OnlineVerification {
    let me = EndpointId::new(server.as_str());
    let auth_ep = EndpointId::new(auth.name().as_str());
    let mut round_trips = 0;
    let mut valid = !passport.links.is_empty();
    for (index, link) in passport.links.iter().enumerate() {
        // Query + response.
        net.transmit(&me, &auth_ep, &link.mac);
        let ok = auth.validate_link(link, index);
        net.transmit(&auth_ep, &me, &[u8::from(ok)]);
        round_trips += 1;
        valid &= ok;
    }
    OnlineVerification {
        valid,
        auth_server_round_trips: round_trips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use restricted_proxy::restriction::Restriction;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn setup() -> (SollinsAuthServer, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let key = SymmetricKey::generate(&mut rng);
        (SollinsAuthServer::new(p("auth"), key), rng)
    }

    #[test]
    fn chain_builds_and_validates() {
        let (auth, _rng) = setup();
        let mut passport = Passport::default();
        for i in 0..4 {
            passport = auth.extend(
                &passport,
                p(&format!("hop{i}")),
                RestrictionSet::new().with(Restriction::AcceptOnce { id: i }),
            );
        }
        let mut net = Network::new(0);
        let result = verify_online(&p("end"), &passport, &auth, &mut net);
        assert!(result.valid);
        assert_eq!(result.auth_server_round_trips, 4, "one query per link");
        assert_eq!(net.total_messages(), 8, "query + response per link");
    }

    #[test]
    fn tampered_link_fails_validation() {
        let (auth, _rng) = setup();
        let passport = auth.extend(&Passport::default(), p("origin"), RestrictionSet::new());
        let mut tampered = passport.clone();
        tampered.links[0].principal = p("mallory");
        let mut net = Network::new(0);
        assert!(!verify_online(&p("end"), &tampered, &auth, &mut net).valid);
    }

    #[test]
    fn empty_passport_invalid() {
        let (auth, _rng) = setup();
        let mut net = Network::new(0);
        let result = verify_online(&p("end"), &Passport::default(), &auth, &mut net);
        assert!(!result.valid);
        assert_eq!(result.auth_server_round_trips, 0);
    }

    #[test]
    fn round_trips_scale_with_chain_depth() {
        let (auth, _rng) = setup();
        let mut messages_by_depth = Vec::new();
        for depth in [1usize, 4, 16] {
            let mut passport = Passport::default();
            for i in 0..depth {
                passport = auth.extend(&passport, p(&format!("hop{i}")), RestrictionSet::new());
            }
            let mut net = Network::new(0);
            verify_online(&p("end"), &passport, &auth, &mut net);
            messages_by_depth.push(net.total_messages());
        }
        assert_eq!(messages_by_depth, vec![2, 8, 32]);
    }
}
