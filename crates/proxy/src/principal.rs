//! Principals and global group names.
//!
//! A *principal* is any named party: a user, a server, an authorization
//! server, a group server, or an accounting server. The paper composes
//! global names from a server's principal name plus a local name — e.g. a
//! group is named `(group-server, group)` (§3.3) and an account is named
//! `(accounting-server, account)` (§4).

use std::fmt;
use std::sync::Arc;

/// The name of a principal.
///
/// Names are opaque dot/slash-free labels by convention (`alice`,
/// `fileserver.isi.edu`); the library imposes no structure beyond
/// non-emptiness.
///
/// Backed by `Arc<str>`: principal names are cloned on every request
/// (contexts, claims, restrictions), and a reference-counted slice makes
/// those clones allocation-free on the hot path.
///
/// ```
/// use restricted_proxy::principal::PrincipalId;
/// let alice = PrincipalId::new("alice");
/// assert_eq!(alice.as_str(), "alice");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrincipalId(Arc<str>);

impl PrincipalId {
    /// Creates a principal name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty — an empty principal name is always a
    /// programming error, never data.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(!name.is_empty(), "principal name must be non-empty");
        Self(Arc::from(name))
    }

    /// Creates a principal name, returning `None` when `name` is empty
    /// (the fallible path for decoding untrusted bytes).
    #[must_use]
    pub fn try_new(name: impl AsRef<str>) -> Option<Self> {
        let name = name.as_ref();
        (!name.is_empty()).then(|| Self(Arc::from(name)))
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrincipalId({})", self.0)
    }
}

impl From<&str> for PrincipalId {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// A globally-named group: the group server's principal name plus the
/// group's local name (§3.3: "a global name of a group is composed of the
/// name of the group server, and the name of the group on that server").
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupName {
    /// The group server maintaining the group.
    pub server: PrincipalId,
    /// The group's name local to that server.
    pub name: String,
}

impl GroupName {
    /// Creates a global group name.
    #[must_use]
    pub fn new(server: PrincipalId, name: impl Into<String>) -> Self {
        Self {
            server,
            name: name.into(),
        }
    }
}

impl fmt::Display for GroupName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.server, self.name)
    }
}
