//! End-server verification of presented proxies.
//!
//! The verifier walks the certificate chain (Fig. 4) entirely offline —
//! the efficiency difference from Sollins's cascaded authentication, where
//! the end-server must contact the authentication server (§3.4) — then
//! evaluates the additive union of restrictions and checks the presenter's
//! proof (possession for bearer proxies, authenticated identity for
//! delegate proxies).

use std::sync::Arc;

use proxy_crypto::ed25519::{self, Signature, VerifyingKey};
use proxy_crypto::hmac::HmacSha256;

use crate::batcher::{SealBatcher, SealCheck};
use crate::cache::{seal_digest, SealDigest, VerifiedCertCache};
use crate::cert::{CertSeal, Certificate, SigningAuthorityKind};
use crate::context::RequestContext;
use crate::encode::Encoder;
use crate::error::VerifyError;
use crate::key::{GrantorVerifier, KeyResolver, ProxyKeyVerifier};
use crate::present::{presentation_binding, Presentation, Proof};
use crate::principal::PrincipalId;
use crate::replay::ReplayGuard;
use crate::restriction::RestrictionSet;
use crate::revocation::RevocationDirectory;
use crate::time::Timestamp;

/// Re-encodes `cert`'s canonical body into `out`, reusing its capacity.
/// Equivalent to `*out = cert.body_bytes()` without the fresh allocation.
fn encode_body_into(cert: &Certificate, out: &mut Vec<u8>) {
    out.clear();
    let mut e = Encoder::from_vec(std::mem::take(out));
    cert.body_bytes_onto(&mut e);
    *out = e.finish();
}

/// An Ed25519 seal check postponed so a whole chain verifies as one batch.
struct DeferredSeal {
    index: usize,
    body: Vec<u8>,
    sig: Signature,
    vk: VerifyingKey,
    /// Cache key, computed only when a cache is attached.
    digest: Option<SealDigest>,
    expires: Timestamp,
}

/// The outcome of successful verification: what the proxy conveys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedProxy {
    /// The original grantor, whose rights (as limited by the restrictions)
    /// the request now carries.
    pub grantor: PrincipalId,
    /// The additive union of all restrictions along the chain.
    pub restrictions: RestrictionSet,
    /// Earliest expiry along the chain.
    pub expires: Timestamp,
    /// Chain length (1 = direct proxy, >1 = cascaded).
    pub chain_len: usize,
}

/// An end-server's proxy verifier.
#[derive(Clone, Debug)]
pub struct Verifier<R> {
    server: PrincipalId,
    resolver: R,
    /// Optional cache of positive Ed25519 seal checks; see
    /// [`VerifiedCertCache`] for what is (and is deliberately not)
    /// memoized. Shared across clones so every handle benefits.
    cache: Option<Arc<VerifiedCertCache>>,
    /// Optional cross-request seal batcher ([`SealBatcher`]); when
    /// attached, deferred Ed25519 seal checks from concurrent requests
    /// share one combined batch equation.
    batcher: Option<Arc<SealBatcher>>,
    /// Optional local revocation mirror ([`RevocationDirectory`]); when
    /// attached, every certificate's (grantor, serial) is checked against
    /// the mirrored revoked sets — an O(1) local probe, no round trips.
    revocations: Option<Arc<RevocationDirectory>>,
}

impl<R: KeyResolver> Verifier<R> {
    /// Creates a verifier for the end-server named `server`, resolving
    /// grantor keys through `resolver`.
    pub fn new(server: PrincipalId, resolver: R) -> Self {
        Self {
            server,
            resolver,
            cache: None,
            batcher: None,
            revocations: None,
        }
    }

    /// Attaches a bounded seal cache, making repeated presentations of the
    /// same chain O(1) in signature checks.
    #[must_use]
    pub fn with_seal_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(Arc::new(VerifiedCertCache::new(capacity)));
        self
    }

    /// Attaches an existing (possibly shared) seal cache.
    #[must_use]
    pub fn with_shared_seal_cache(mut self, cache: Arc<VerifiedCertCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached seal cache, if any.
    #[must_use]
    pub fn seal_cache(&self) -> Option<&VerifiedCertCache> {
        self.cache.as_deref()
    }

    /// Attaches a (possibly shared) cross-request seal batcher. Deferred
    /// Ed25519 seal checks then ride a combined batch equation with the
    /// checks of other requests in flight at the same moment; a lone
    /// request still verifies inline (the batcher's low-load fast path).
    #[must_use]
    pub fn with_seal_batcher(mut self, batcher: Arc<SealBatcher>) -> Self {
        self.batcher = Some(batcher);
        self
    }

    /// The attached seal batcher, if any.
    #[must_use]
    pub fn seal_batcher(&self) -> Option<&Arc<SealBatcher>> {
        self.batcher.as_ref()
    }

    /// Attaches a (possibly shared) local revocation mirror. Every
    /// certificate in a presented chain is then checked against its
    /// grantor's mirrored revoked-serial set before anything else is
    /// spent on it — one hash probe per certificate, zero round trips.
    #[must_use]
    pub fn with_revocation(mut self, revocations: Arc<RevocationDirectory>) -> Self {
        self.revocations = Some(revocations);
        self
    }

    /// The attached revocation mirror, if any.
    #[must_use]
    pub fn revocation_directory(&self) -> Option<&Arc<RevocationDirectory>> {
        self.revocations.as_ref()
    }

    /// The end-server this verifier speaks for.
    #[must_use]
    pub fn server(&self) -> &PrincipalId {
        &self.server
    }

    /// The key resolver backing this verifier.
    #[must_use]
    pub fn resolver(&self) -> &R {
        &self.resolver
    }

    /// Mutable access to the resolver, so a long-lived verifier can learn
    /// new grantors without being rebuilt (and without discarding its seal
    /// cache).
    pub fn resolver_mut(&mut self) -> &mut R {
        &mut self.resolver
    }

    /// Verifies a presentation against a request context.
    ///
    /// Checks, in order: chain seals (offline), validity windows,
    /// presenter proof (possession or identity), and the additive
    /// restriction union.
    ///
    /// # Errors
    ///
    /// Every failure mode is a distinct [`VerifyError`]; see its docs.
    pub fn verify(
        &self,
        presentation: &Presentation,
        ctx: &RequestContext,
        replay: &mut dyn ReplayGuard,
    ) -> Result<VerifiedProxy, VerifyError> {
        let certs = &presentation.certs;
        if certs.is_empty() {
            return Err(VerifyError::EmptyChain);
        }

        // Pass 1: verify seals and recover proxy-key verifiers link by
        // link. Key recovery never depends on a seal being *valid* (only
        // on the recovered key of the prior link), so Ed25519 seal checks
        // are deferred and the whole chain is verified as one batch —
        // unless the seal cache already vouches for a certificate. HMAC
        // seals are cheaper than the cache digest and are checked inline.
        let mut prev_key: Option<ProxyKeyVerifier> = None;
        let mut expires = Timestamp::MAX;
        let mut deferred: Vec<DeferredSeal> = Vec::new();
        // One scratch encoding of the current certificate's body, reused
        // across the chain — each link's seal check (and cache digest)
        // reads it instead of re-encoding into a fresh vector.
        let mut body = Vec::with_capacity(Certificate::ENCODE_CAPACITY_HINT);
        for (index, cert) in certs.iter().enumerate() {
            if !cert.validity.contains(ctx.now) {
                return Err(VerifyError::NotValidAt {
                    index,
                    now: ctx.now,
                });
            }
            if let Some(revocations) = &self.revocations {
                if revocations.is_revoked(&cert.grantor, cert.serial) {
                    return Err(VerifyError::Revoked {
                        index,
                        serial: cert.serial,
                    });
                }
            }
            expires = expires.min(cert.expires());
            encode_body_into(cert, &mut body);
            let unseal_key = match cert.authority {
                SigningAuthorityKind::Grantor => {
                    let verifier = self
                        .resolver
                        .grantor_verifier(&cert.grantor)
                        .ok_or_else(|| VerifyError::UnknownGrantor(cert.grantor.clone()))?;
                    match (&verifier, &cert.seal) {
                        (GrantorVerifier::SharedKey(k), CertSeal::Hmac(tag)) => {
                            if !HmacSha256::verify(k.as_bytes(), &body, tag) {
                                return Err(VerifyError::BadSeal { index });
                            }
                            Some(k.clone())
                        }
                        (GrantorVerifier::PublicKey(vk), CertSeal::Ed25519(sig)) => {
                            self.queue_ed25519_seal(
                                &mut deferred,
                                cert,
                                &body,
                                index,
                                *vk,
                                *sig,
                                ctx.now,
                            );
                            None
                        }
                        _ => return Err(VerifyError::FlavorMismatch { index }),
                    }
                }
                SigningAuthorityKind::PriorProxyKey => {
                    if index == 0 {
                        return Err(VerifyError::HeadNotGrantorSealed);
                    }
                    let prior = prev_key.as_ref().expect("set on every prior iteration");
                    match (prior, &cert.seal) {
                        (ProxyKeyVerifier::Symmetric(k), CertSeal::Hmac(tag)) => {
                            if !HmacSha256::verify(k.as_bytes(), &body, tag) {
                                return Err(VerifyError::BadSeal { index });
                            }
                            Some(k.clone())
                        }
                        (ProxyKeyVerifier::Ed25519(vk), CertSeal::Ed25519(sig)) => {
                            self.queue_ed25519_seal(
                                &mut deferred,
                                cert,
                                &body,
                                index,
                                *vk,
                                *sig,
                                ctx.now,
                            );
                            None
                        }
                        _ => return Err(VerifyError::FlavorMismatch { index }),
                    }
                }
            };
            prev_key = Some(
                cert.key_material
                    .unseal(unseal_key.as_ref())
                    .ok_or(VerifyError::KeyUnrecoverable { index })?,
            );
        }
        self.flush_deferred_seals(deferred, ctx.now)?;
        let final_key = prev_key.expect("chain non-empty");

        // Pass 2: resolve delegate cascades into an effective identity set.
        // A subordinate holding a cascade link from a named delegate may act
        // as that delegate (§2: "or by someone with a suitable additional
        // proxy issued by a named delegate").
        let mut effective = ctx.authenticated.clone();
        for cert in certs.iter().skip(1).rev() {
            if cert.authority == SigningAuthorityKind::Grantor
                && grantee_satisfied(&cert.restrictions, &effective)
                && !effective.contains(&cert.grantor)
            {
                effective.push(cert.grantor.clone());
            }
        }
        let mut eval_ctx = ctx.clone();
        eval_ctx.authenticated = effective;

        // Pass 3: the presenter's proof.
        let combined = certs
            .iter()
            .fold(RestrictionSet::new(), |acc, c| acc.union(&c.restrictions));
        match &presentation.proof {
            Proof::Possession {
                challenge,
                response,
            } => {
                let binding = presentation_binding(&self.server, certs.last().expect("non-empty"));
                if !final_key.check_possession(challenge, &binding, response) {
                    return Err(VerifyError::BadPossession);
                }
            }
            Proof::Identity => {
                // Only delegate proxies may be exercised without possession.
                if !combined.has_grantee() {
                    return Err(VerifyError::BearerRequiresPossession);
                }
            }
        }

        // Pass 4: evaluate every certificate's restrictions (additive).
        for cert in certs {
            cert.restrictions
                .evaluate(&eval_ctx, &cert.grantor, cert.expires(), replay)?;
        }

        Ok(VerifiedProxy {
            grantor: certs[0].grantor.clone(),
            restrictions: combined,
            expires,
            chain_len: certs.len(),
        })
    }

    /// Queues an Ed25519 seal check for the end-of-pass batch, unless the
    /// cache already vouches for this exact (body, seal, key) triple.
    #[allow(clippy::too_many_arguments)]
    fn queue_ed25519_seal(
        &self,
        deferred: &mut Vec<DeferredSeal>,
        cert: &Certificate,
        body: &[u8],
        index: usize,
        vk: VerifyingKey,
        sig: Signature,
        now: Timestamp,
    ) {
        let digest = self
            .cache
            .as_ref()
            .map(|_| seal_digest(cert, body, vk.as_bytes()));
        if let (Some(cache), Some(d)) = (&self.cache, &digest) {
            if cache.contains(d, now) {
                return;
            }
        }
        deferred.push(DeferredSeal {
            index,
            body: body.to_vec(),
            sig,
            vk,
            digest,
            expires: cert.expires(),
        });
    }

    /// Verifies all queued seals in one batched equation; on success the
    /// positive results enter the cache. On failure, re-checks each seal
    /// to attribute the error to a chain index. Only seal validity is ever
    /// cached — never a request-dependent decision.
    fn flush_deferred_seals(
        &self,
        deferred: Vec<DeferredSeal>,
        now: Timestamp,
    ) -> Result<(), VerifyError> {
        if deferred.is_empty() {
            return Ok(());
        }
        if let Some(batcher) = &self.batcher {
            return self.flush_through_batcher(batcher, deferred, now);
        }
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = deferred
            .iter()
            .map(|d| (d.body.as_slice(), &d.sig, &d.vk))
            .collect();
        if ed25519::verify_batch(&items).is_err() {
            for d in &deferred {
                if d.vk.verify(&d.body, &d.sig).is_err() {
                    return Err(VerifyError::BadSeal { index: d.index });
                }
            }
            // Unreachable in practice: the batch only fails when some
            // individual equation fails. Blame the head conservatively.
            return Err(VerifyError::BadSeal {
                index: deferred[0].index,
            });
        }
        if let Some(cache) = &self.cache {
            for d in deferred {
                if let Some(digest) = d.digest {
                    cache.insert(digest, d.expires, now);
                }
            }
        }
        Ok(())
    }

    /// Routes deferred seals through the attached [`SealBatcher`] so the
    /// batch equation spans concurrently-verifying requests. The batcher
    /// attributes a failure to a submission-local index, which maps back
    /// to the chain index it came from; success populates the seal cache
    /// exactly as the local path does.
    fn flush_through_batcher(
        &self,
        batcher: &SealBatcher,
        deferred: Vec<DeferredSeal>,
        now: Timestamp,
    ) -> Result<(), VerifyError> {
        let mut checks = Vec::with_capacity(deferred.len());
        let mut metas = Vec::with_capacity(deferred.len());
        for d in deferred {
            checks.push(SealCheck {
                body: d.body,
                sig: d.sig,
                vk: d.vk,
            });
            metas.push((d.index, d.digest, d.expires));
        }
        match batcher.verify_seals(checks) {
            Ok(()) => {
                if let Some(cache) = &self.cache {
                    for (_, digest, expires) in metas {
                        if let Some(digest) = digest {
                            cache.insert(digest, expires, now);
                        }
                    }
                }
                Ok(())
            }
            Err(i) => Err(VerifyError::BadSeal {
                // A submission-local index always maps to a queued seal;
                // blame the head conservatively if it somehow does not.
                index: metas.get(i).or_else(|| metas.first()).map_or(0, |m| m.0),
            }),
        }
    }
}

fn grantee_satisfied(restrictions: &RestrictionSet, authenticated: &[PrincipalId]) -> bool {
    use crate::restriction::Restriction;
    restrictions.iter().all(|r| match r {
        Restriction::Grantee {
            delegates,
            required,
        } => {
            delegates
                .iter()
                .filter(|d| authenticated.contains(d))
                .count() as u32
                >= *required
        }
        // This helper decides only the *grantee* question; the other
        // restrictions are enforced by `RestrictionSet::evaluate` during
        // chain verification. Enumerated (not `_`) so a new variant
        // forces an explicit decision here (§7.9).
        Restriction::ForUseByGroup { .. }
        | Restriction::IssuedFor { .. }
        | Restriction::Quota { .. }
        | Restriction::Authorized { .. }
        | Restriction::GroupMembership { .. }
        | Restriction::AcceptOnce { .. }
        | Restriction::LimitRestriction { .. } => true,
    }) && restrictions.has_grantee()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{GrantAuthority, MapResolver};
    use crate::proxy::{delegate_cascade, grant};
    use crate::replay::MemoryReplayGuard;
    use crate::restriction::{ObjectName, Operation, Restriction};
    use crate::time::{Timestamp, Validity};
    use proxy_crypto::ed25519::SigningKey;
    use proxy_crypto::keys::SymmetricKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn window() -> Validity {
        Validity::new(Timestamp(0), Timestamp(1000))
    }

    fn ctx() -> RequestContext {
        RequestContext::new(p("fs"), Operation::new("read"), ObjectName::new("file"))
            .at(Timestamp(10))
    }

    struct Setup {
        rng: StdRng,
        shared: SymmetricKey,
        verifier: Verifier<MapResolver>,
    }

    fn symmetric_setup(seed: u64) -> Setup {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = SymmetricKey::generate(&mut rng);
        let resolver =
            MapResolver::new().with(p("alice"), GrantorVerifier::SharedKey(shared.clone()));
        Setup {
            rng,
            shared,
            verifier: Verifier::new(p("fs"), resolver),
        }
    }

    #[test]
    fn bearer_symmetric_round_trip() {
        let mut s = symmetric_setup(1);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_bearer([7u8; 32], &p("fs"));
        let mut guard = MemoryReplayGuard::new();
        let verified = s.verifier.verify(&pres, &ctx(), &mut guard).unwrap();
        assert_eq!(verified.grantor, p("alice"));
        assert_eq!(verified.chain_len, 1);
    }

    #[test]
    fn revoked_serial_rejected_unrevoked_accepted() {
        let mut s = symmetric_setup(77);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let dir = Arc::new(RevocationDirectory::new());
        let verifier = s.verifier.clone().with_revocation(dir.clone());
        let revoked = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            41,
            &mut s.rng,
        );
        let fine = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            42,
            &mut s.rng,
        );
        // Mirror a snapshot revoking serial 41 (seal already verified in
        // this unit's scope; directory applies verified artifacts).
        let artifact = crate::revocation::RevocationArtifact::seal(
            p("alice"),
            1,
            crate::revocation::ArtifactKind::Snapshot,
            [41u64].into_iter().collect(),
            &auth,
        );
        dir.apply_verified(&artifact).unwrap();
        let mut guard = MemoryReplayGuard::new();
        let pres = revoked.present_bearer([7u8; 32], &p("fs"));
        assert_eq!(
            verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::Revoked {
                index: 0,
                serial: 41
            })
        );
        let pres = fine.present_bearer([8u8; 32], &p("fs"));
        assert!(verifier.verify(&pres, &ctx(), &mut guard).is_ok());
        // A verifier without the mirror still accepts the revoked serial —
        // revocation is strictly opt-in state, never ambient.
        let pres = revoked.present_bearer([9u8; 32], &p("fs"));
        assert!(s.verifier.verify(&pres, &ctx(), &mut guard).is_ok());
    }

    #[test]
    fn bearer_public_key_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let sk = SigningKey::generate(&mut rng);
        let resolver =
            MapResolver::new().with(p("alice"), GrantorVerifier::PublicKey(sk.verifying_key()));
        let verifier = Verifier::new(p("fs"), resolver);
        let auth = GrantAuthority::Keypair(sk);
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut rng,
        );
        let pres = proxy.present_bearer([7u8; 32], &p("fs"));
        let mut guard = MemoryReplayGuard::new();
        assert!(verifier.verify(&pres, &ctx(), &mut guard).is_ok());
    }

    #[test]
    fn unknown_grantor_rejected() {
        let mut s = symmetric_setup(3);
        let other_key = SymmetricKey::generate(&mut s.rng);
        let auth = GrantAuthority::SharedKey(other_key);
        let proxy = grant(
            &p("mallory"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_bearer([0u8; 32], &p("fs"));
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::UnknownGrantor(p("mallory")))
        );
    }

    #[test]
    fn forged_seal_rejected() {
        let mut s = symmetric_setup(4);
        // Mallory knows alice's name but not the shared key.
        let mallory_key = SymmetricKey::generate(&mut s.rng);
        let auth = GrantAuthority::SharedKey(mallory_key);
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_bearer([0u8; 32], &p("fs"));
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::BadSeal { index: 0 })
        );
    }

    #[test]
    fn restriction_stripping_detected() {
        let mut s = symmetric_setup(5);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let restricted = RestrictionSet::new().with(Restriction::authorize_op(
            ObjectName::new("only-this"),
            Operation::new("read"),
        ));
        let proxy = grant(&p("alice"), &auth, restricted, window(), 1, &mut s.rng);
        let mut pres = proxy.present_bearer([0u8; 32], &p("fs"));
        // Attacker strips the restrictions from the certificate.
        pres.certs[0].restrictions = RestrictionSet::new();
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::BadSeal { index: 0 })
        );
    }

    #[test]
    fn expired_proxy_rejected() {
        let mut s = symmetric_setup(6);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            Validity::new(Timestamp(0), Timestamp(5)),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_bearer([0u8; 32], &p("fs"));
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard), // ctx.now = 10
            Err(VerifyError::NotValidAt {
                index: 0,
                now: Timestamp(10)
            })
        );
    }

    #[test]
    fn wrong_challenge_response_rejected() {
        let mut s = symmetric_setup(7);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let mut pres = proxy.present_bearer([1u8; 32], &p("fs"));
        // Server actually issued a different challenge: simulate by
        // swapping the challenge after the response was computed.
        if let Proof::Possession { challenge, .. } = &mut pres.proof {
            *challenge = [2u8; 32];
        }
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::BadPossession)
        );
    }

    #[test]
    fn presentation_bound_to_server() {
        // A response computed for server A must not verify at server B.
        let mut s = symmetric_setup(8);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let pres_for_other = proxy.present_bearer([1u8; 32], &p("other-server"));
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres_for_other, &ctx(), &mut guard),
            Err(VerifyError::BadPossession)
        );
    }

    #[test]
    fn bearer_without_possession_rejected() {
        let mut s = symmetric_setup(9);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_delegate(); // wrong: bearer needs PoP
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::BearerRequiresPossession)
        );
    }

    #[test]
    fn delegate_requires_named_identity() {
        let mut s = symmetric_setup(10);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new().with(Restriction::grantee_one(p("bob"))),
            window(),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_delegate();
        let mut guard = MemoryReplayGuard::new();
        // Unauthenticated: denied.
        assert!(matches!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::Denied(_))
        ));
        // Authenticated as carol: still denied.
        let carol_ctx = ctx().authenticated_as(p("carol"));
        assert!(matches!(
            s.verifier.verify(&pres, &carol_ctx, &mut guard),
            Err(VerifyError::Denied(_))
        ));
        // Authenticated as bob: accepted.
        let bob_ctx = ctx().authenticated_as(p("bob"));
        assert!(s.verifier.verify(&pres, &bob_ctx, &mut guard).is_ok());
    }

    #[test]
    fn bearer_cascade_verifies_and_restricts() {
        let mut s = symmetric_setup(11);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let parent = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let child = parent
            .derive(
                RestrictionSet::new().with(Restriction::authorize_op(
                    ObjectName::new("file"),
                    Operation::new("read"),
                )),
                window(),
                2,
                &mut s.rng,
            )
            .unwrap();
        let mut guard = MemoryReplayGuard::new();
        // Allowed: matches the added restriction.
        let pres = child.present_bearer([3u8; 32], &p("fs"));
        let verified = s.verifier.verify(&pres, &ctx(), &mut guard).unwrap();
        assert_eq!(verified.chain_len, 2);
        // Denied: outside the added restriction.
        let mut write_ctx = ctx();
        write_ctx.operation = Operation::new("write");
        assert!(matches!(
            s.verifier.verify(&pres, &write_ctx, &mut guard),
            Err(VerifyError::Denied(_))
        ));
        // Crucially, the *parent* proxy still allows writes (restrictions
        // were added, not transformed).
        let parent_pres = parent.present_bearer([4u8; 32], &p("fs"));
        assert!(s
            .verifier
            .verify(&parent_pres, &write_ctx, &mut guard)
            .is_ok());
    }

    #[test]
    fn delegate_cascade_grants_subordinate_access() {
        let mut s = symmetric_setup(12);
        let alice_auth = GrantAuthority::SharedKey(s.shared.clone());
        // Alice grants a delegate proxy to the print server.
        let parent = grant(
            &p("alice"),
            &alice_auth,
            RestrictionSet::new().with(Restriction::grantee_one(p("print"))),
            window(),
            1,
            &mut s.rng,
        );
        // The print server passes it to the file server with its own
        // signature (audit trail).
        let print_shared = SymmetricKey::generate(&mut s.rng);
        let print_auth = GrantAuthority::SharedKey(print_shared.clone());
        let child = delegate_cascade(
            &parent.certs,
            &p("print"),
            &print_auth,
            p("fsworker"),
            RestrictionSet::new(),
            window(),
            2,
            &mut s.rng,
        )
        .unwrap();
        // End-server knows both alice's and print's keys.
        let resolver = MapResolver::new()
            .with(p("alice"), GrantorVerifier::SharedKey(s.shared.clone()))
            .with(p("print"), GrantorVerifier::SharedKey(print_shared));
        let verifier = Verifier::new(p("fs"), resolver);
        let pres = child.present_delegate();
        let mut guard = MemoryReplayGuard::new();
        // The subordinate authenticates as itself; the cascade makes it an
        // effective delegate of alice's proxy.
        let sub_ctx = ctx().authenticated_as(p("fsworker"));
        let verified = verifier.verify(&pres, &sub_ctx, &mut guard).unwrap();
        assert_eq!(verified.grantor, p("alice"));
        assert_eq!(verified.chain_len, 2);
        // Someone else authenticating cannot use the chain.
        let other_ctx = ctx().authenticated_as(p("intruder"));
        assert!(matches!(
            verifier.verify(&pres, &other_ctx, &mut guard),
            Err(VerifyError::Denied(_))
        ));
    }

    #[test]
    fn head_sealed_by_prior_key_rejected() {
        let mut s = symmetric_setup(13);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let parent = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let child = parent
            .derive(RestrictionSet::new(), window(), 2, &mut s.rng)
            .unwrap();
        // Present only the tail link, pretending it is a whole chain.
        let mut pres = child.present_bearer([0u8; 32], &p("fs"));
        pres.certs.remove(0);
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::HeadNotGrantorSealed)
        );
    }

    #[test]
    fn empty_chain_rejected() {
        let s = symmetric_setup(14);
        let pres = Presentation {
            certs: vec![],
            proof: Proof::Identity,
        };
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::EmptyChain)
        );
    }

    #[test]
    fn eavesdropper_cannot_reuse_presentation() {
        // The attacker records a full presentation off the wire, then tries
        // to use the proxy with a *new* challenge from the server. Without
        // the proxy key it can only replay the old response, which fails.
        let mut s = symmetric_setup(15);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let recorded = proxy.present_bearer([10u8; 32], &p("fs"));
        let mut guard = MemoryReplayGuard::new();
        assert!(s.verifier.verify(&recorded, &ctx(), &mut guard).is_ok());
        // Fresh challenge from the server; attacker replays the old response.
        let Proof::Possession { response, .. } = &recorded.proof else {
            unreachable!()
        };
        let replayed = Presentation {
            certs: recorded.certs.clone(),
            proof: Proof::Possession {
                challenge: [11u8; 32],
                response: response.clone(),
            },
        };
        assert_eq!(
            s.verifier.verify(&replayed, &ctx(), &mut guard),
            Err(VerifyError::BadPossession)
        );
    }

    #[test]
    fn accept_once_enforced_through_verifier() {
        let mut s = symmetric_setup(16);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new().with(Restriction::AcceptOnce { id: 99 }),
            window(),
            1,
            &mut s.rng,
        );
        let mut guard = MemoryReplayGuard::new();
        let pres = proxy.present_bearer([1u8; 32], &p("fs"));
        assert!(s.verifier.verify(&pres, &ctx(), &mut guard).is_ok());
        // Second acceptance (even via a fresh presentation) is rejected.
        let pres2 = proxy.present_bearer([2u8; 32], &p("fs"));
        assert!(matches!(
            s.verifier.verify(&pres2, &ctx(), &mut guard),
            Err(VerifyError::Denied(
                crate::restriction::Denial::AlreadyAccepted { id: 99 }
            ))
        ));
    }

    #[test]
    fn public_key_cascade_round_trip() {
        let mut rng = StdRng::seed_from_u64(17);
        let sk = SigningKey::generate(&mut rng);
        let resolver =
            MapResolver::new().with(p("alice"), GrantorVerifier::PublicKey(sk.verifying_key()));
        let verifier = Verifier::new(p("fs"), resolver);
        let auth = GrantAuthority::Keypair(sk);
        let parent = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut rng,
        );
        let child = parent
            .derive(
                RestrictionSet::new().with(Restriction::issued_for_one(p("fs"))),
                window(),
                2,
                &mut rng,
            )
            .unwrap();
        let grandchild = child
            .derive(RestrictionSet::new(), window(), 3, &mut rng)
            .unwrap();
        let pres = grandchild.present_bearer([5u8; 32], &p("fs"));
        let mut guard = MemoryReplayGuard::new();
        let verified = verifier.verify(&pres, &ctx(), &mut guard).unwrap();
        assert_eq!(verified.chain_len, 3);
    }

    #[test]
    fn issued_for_blocks_other_servers() {
        let mut rng = StdRng::seed_from_u64(18);
        let sk = SigningKey::generate(&mut rng);
        let resolver =
            MapResolver::new().with(p("alice"), GrantorVerifier::PublicKey(sk.verifying_key()));
        // Same resolver at two servers (public keys are universal — exactly
        // the §7.3 concern).
        let fs = Verifier::new(p("fs"), resolver.clone());
        let mail = Verifier::new(p("mail"), resolver);
        let auth = GrantAuthority::Keypair(sk);
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new().with(Restriction::issued_for_one(p("fs"))),
            window(),
            1,
            &mut rng,
        );
        let mut guard = MemoryReplayGuard::new();
        let pres_fs = proxy.present_bearer([1u8; 32], &p("fs"));
        assert!(fs.verify(&pres_fs, &ctx(), &mut guard).is_ok());
        let pres_mail = proxy.present_bearer([1u8; 32], &p("mail"));
        let mut mail_ctx = ctx();
        mail_ctx.server = p("mail");
        assert!(matches!(
            mail.verify(&pres_mail, &mail_ctx, &mut guard),
            Err(VerifyError::Denied(_))
        ));
    }

    #[test]
    fn mismatched_seal_flavor_rejected() {
        let mut s = symmetric_setup(19);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        );
        let mut pres = proxy.present_bearer([1u8; 32], &p("fs"));
        // Replace the HMAC seal with an Ed25519 signature: the resolver
        // says alice uses a shared key, so the flavors cannot line up.
        let sk = SigningKey::generate(&mut s.rng);
        pres.certs[0].seal = CertSeal::Ed25519(sk.sign(b"x"));
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::FlavorMismatch { index: 0 })
        );
    }

    #[test]
    fn verification_works_on_decoded_wire_presentations() {
        let mut s = symmetric_setup(20);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut s.rng,
        )
        .derive(RestrictionSet::new(), window(), 2, &mut s.rng)
        .unwrap();
        let wire = proxy.present_bearer([2u8; 32], &p("fs")).encode();
        let decoded = crate::present::Presentation::decode(&wire).unwrap();
        let mut guard = MemoryReplayGuard::new();
        assert!(s.verifier.verify(&decoded, &ctx(), &mut guard).is_ok());
    }

    #[test]
    fn grantee_concurrence_required_at_verification() {
        // required = 2 delegates must be authenticated together.
        let mut s = symmetric_setup(21);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new().with(Restriction::Grantee {
                delegates: vec![p("bob"), p("carol")],
                required: 2,
            }),
            window(),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_delegate();
        let mut guard = MemoryReplayGuard::new();
        let one = ctx().authenticated_as(p("bob"));
        assert!(matches!(
            s.verifier.verify(&pres, &one, &mut guard),
            Err(VerifyError::Denied(_))
        ));
        let both = ctx()
            .authenticated_as(p("bob"))
            .authenticated_as(p("carol"));
        assert!(s.verifier.verify(&pres, &both, &mut guard).is_ok());
    }

    #[test]
    fn cached_verifier_round_trips_and_records_hits() {
        let mut rng = StdRng::seed_from_u64(23);
        let sk = SigningKey::generate(&mut rng);
        let resolver =
            MapResolver::new().with(p("alice"), GrantorVerifier::PublicKey(sk.verifying_key()));
        let verifier = Verifier::new(p("fs"), resolver).with_seal_cache(64);
        let auth = GrantAuthority::Keypair(sk);
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut rng,
        )
        .derive(RestrictionSet::new(), window(), 2, &mut rng)
        .unwrap();
        let mut guard = MemoryReplayGuard::new();
        let pres = proxy.present_bearer([1u8; 32], &p("fs"));
        assert!(verifier.verify(&pres, &ctx(), &mut guard).is_ok());
        let cache = verifier.seal_cache().unwrap();
        assert_eq!(cache.len(), 2, "both chain links cached");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (0, 2));
        // Re-presentation with a fresh challenge: both seals hit.
        let pres2 = proxy.present_bearer([2u8; 32], &p("fs"));
        assert!(verifier.verify(&pres2, &ctx(), &mut guard).is_ok());
        assert_eq!(cache.stats(), (2, 2));
    }

    #[test]
    fn cached_verifier_still_rejects_tampering() {
        let mut rng = StdRng::seed_from_u64(24);
        let sk = SigningKey::generate(&mut rng);
        let resolver =
            MapResolver::new().with(p("alice"), GrantorVerifier::PublicKey(sk.verifying_key()));
        let verifier = Verifier::new(p("fs"), resolver).with_seal_cache(64);
        let auth = GrantAuthority::Keypair(sk);
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new().with(Restriction::authorize_op(
                ObjectName::new("file"),
                Operation::new("read"),
            )),
            window(),
            1,
            &mut rng,
        );
        let mut guard = MemoryReplayGuard::new();
        // Warm the cache with the honest certificate.
        let pres = proxy.present_bearer([1u8; 32], &p("fs"));
        assert!(verifier.verify(&pres, &ctx(), &mut guard).is_ok());
        // A stripped variant is a different body, so a different digest:
        // the cache cannot vouch for it and the seal check fails.
        let mut stripped = proxy.present_bearer([2u8; 32], &p("fs"));
        stripped.certs[0].restrictions = RestrictionSet::new();
        assert_eq!(
            verifier.verify(&stripped, &ctx(), &mut guard),
            Err(VerifyError::BadSeal { index: 0 })
        );
    }

    #[test]
    fn bad_link_in_batched_chain_blames_its_index() {
        let mut rng = StdRng::seed_from_u64(25);
        let sk = SigningKey::generate(&mut rng);
        let resolver =
            MapResolver::new().with(p("alice"), GrantorVerifier::PublicKey(sk.verifying_key()));
        let verifier = Verifier::new(p("fs"), resolver);
        let auth = GrantAuthority::Keypair(sk);
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(),
            1,
            &mut rng,
        )
        .derive(RestrictionSet::new(), window(), 2, &mut rng)
        .unwrap()
        .derive(RestrictionSet::new(), window(), 3, &mut rng)
        .unwrap();
        let mut pres = proxy.present_bearer([3u8; 32], &p("fs"));
        // Corrupt the middle link's serial: the batched seal check must
        // fail and attribute the failure to index 1.
        pres.certs[1].serial ^= 1;
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::BadSeal { index: 1 })
        );
    }

    #[test]
    fn stateless_verifiers_refuse_accept_once_proxies() {
        // A verifier that cannot keep replay state must reject accept-once
        // proxies outright rather than accept them unsafely.
        let mut s = symmetric_setup(22);
        let auth = GrantAuthority::SharedKey(s.shared.clone());
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new().with(Restriction::AcceptOnce { id: 1 }),
            window(),
            1,
            &mut s.rng,
        );
        let pres = proxy.present_bearer([1u8; 32], &p("fs"));
        let mut guard = crate::replay::RejectAcceptOnce;
        assert!(matches!(
            s.verifier.verify(&pres, &ctx(), &mut guard),
            Err(VerifyError::Denied(
                crate::restriction::Denial::AlreadyAccepted { .. }
            ))
        ));
    }
}
