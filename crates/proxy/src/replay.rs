//! Replay protection for `accept-once` restrictions (§7.7).
//!
//! "Once a check is paid, the accounting server keeps track of the check
//! number until the expiration time on the check. If, within that period,
//! another check with the same number is seen, it is rejected." (§4)
//!
//! Two in-memory implementations exist:
//!
//! * [`MemoryReplayGuard`] — a single-owner map, for per-request or
//!   single-threaded verifiers.
//! * [`ReplayCache`] — a lock-striped, bounded, expiry-sweeping cache with
//!   a `&self` marking API, shared by every thread of a concurrent server.
//!   Per-key decisions are made under one shard lock, so exactly one of
//!   any number of racing presenters wins a given `(grantor, id)`.
//!
//! Both are **bounded fail-closed**: when a capacity is configured and no
//! expired entry can be evicted, a *fresh* identifier is rejected rather
//! than admitted untracked — forgetting an identifier could admit a
//! replay, refusing a fresh proxy merely forces a retry.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::principal::PrincipalId;
use crate::time::Timestamp;

/// End-server-side memory of `accept-once` identifiers.
pub trait ReplayGuard {
    /// Records `(grantor, id)` if fresh, remembering it until `expires`.
    /// `now` is the request's timestamp; implementations use it to sweep
    /// entries whose retention window has passed. Returns `true` when
    /// fresh (the proxy may be accepted), `false` when the identifier was
    /// already used — or when the guard is full and cannot safely track a
    /// new identifier.
    fn accept_once(
        &mut self,
        grantor: &PrincipalId,
        id: u64,
        now: Timestamp,
        expires: Timestamp,
    ) -> bool;

    /// Drops identifiers whose retention window has passed. Identifiers
    /// need only be remembered until the proxy carrying them expires —
    /// after that the proxy is unusable anyway.
    fn expire(&mut self, now: Timestamp);
}

/// Shared replay logic: the per-key decision on one map, with optional
/// bounding. Returns `true` when the identifier is fresh and was recorded.
fn mark_once(
    seen: &mut HashMap<(PrincipalId, u64), Timestamp>,
    capacity: Option<usize>,
    grantor: &PrincipalId,
    id: u64,
    now: Timestamp,
    expires: Timestamp,
) -> bool {
    let key = (grantor.clone(), id);
    if let Some(prior) = seen.get(&key) {
        // Remember the longer of the two retention windows.
        if expires > *prior {
            seen.insert(key, expires);
        }
        return false;
    }
    if let Some(cap) = capacity {
        if seen.len() >= cap {
            // Sweep: entries past their retention window can no longer
            // gate anything (the proxies carrying them are expired).
            seen.retain(|_, exp| *exp > now);
        }
        if seen.len() >= cap {
            // Fail closed: full of live entries — refusing a fresh proxy
            // is safe, silently forgetting a consumed identifier is not.
            return false;
        }
    }
    seen.insert(key, expires);
    true
}

/// In-memory [`ReplayGuard`], optionally bounded.
#[derive(Debug, Default)]
pub struct MemoryReplayGuard {
    seen: HashMap<(PrincipalId, u64), Timestamp>,
    capacity: Option<usize>,
}

impl MemoryReplayGuard {
    /// Creates an empty, unbounded guard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a guard holding at most `capacity` identifiers (minimum 1).
    /// At capacity, expired entries are swept first; if every entry is
    /// still live, fresh identifiers are rejected (fail-closed).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            seen: HashMap::new(),
            capacity: Some(capacity.max(1)),
        }
    }

    /// Number of identifiers currently remembered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no identifiers are remembered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

impl ReplayGuard for MemoryReplayGuard {
    fn accept_once(
        &mut self,
        grantor: &PrincipalId,
        id: u64,
        now: Timestamp,
        expires: Timestamp,
    ) -> bool {
        mark_once(&mut self.seen, self.capacity, grantor, id, now, expires)
    }

    fn expire(&mut self, now: Timestamp) {
        self.seen.retain(|_, expires| *expires > now);
    }
}

/// A guard that refuses every `accept-once` proxy — for verifiers that
/// cannot afford replay state and therefore must not accept such proxies.
#[derive(Debug, Default, Clone, Copy)]
pub struct RejectAcceptOnce;

impl ReplayGuard for RejectAcceptOnce {
    fn accept_once(
        &mut self,
        _grantor: &PrincipalId,
        _id: u64,
        _now: Timestamp,
        _expires: Timestamp,
    ) -> bool {
        false
    }

    fn expire(&mut self, _now: Timestamp) {}
}

/// One lock stripe of a [`ReplayCache`].
#[derive(Debug, Default)]
struct ReplayShard {
    seen: HashMap<(PrincipalId, u64), Timestamp>,
    /// Marks since the last amortized sweep of this shard.
    since_sweep: u32,
}

/// Amortized sweep period per shard: every this many marks, a shard drops
/// its expired entries even when it is nowhere near capacity, so a
/// long-lived server's memory tracks the *live* identifier population.
const SWEEP_PERIOD: u32 = 1024;

/// A concurrent, bounded replay cache: N lock stripes over the
/// `(grantor, id)` space, shared across server threads via `&self`.
///
/// The per-key check-and-mark is atomic under one shard lock, so when K
/// presenters race the same `accept-once` identifier exactly one is
/// admitted. The cache is bounded: per shard, at capacity, expired entries
/// are swept; if all entries are live, *fresh* identifiers are rejected
/// (fail-closed — see the module docs). Expired entries are additionally
/// swept every `SWEEP_PERIOD` (1024) marks per shard, keeping a long-lived
/// server's footprint proportional to its live proxies, not its history.
#[derive(Debug)]
pub struct ReplayCache {
    shards: Box<[Mutex<ReplayShard>]>,
    per_shard_capacity: usize,
    hasher: RandomState,
    /// Fresh identifiers rejected because a shard was full of live
    /// entries (fail-closed events) — an operational red flag.
    rejected_full: AtomicU64,
}

impl ReplayCache {
    /// Default total identifier capacity.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;
    /// Default lock-stripe count.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a cache with the default capacity and stripe count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY, Self::DEFAULT_SHARDS)
    }

    /// Creates a cache holding at most ~`capacity` identifiers across
    /// `shards` stripes (both minimum 1). The bound is enforced per
    /// stripe, so the effective total is `shards × ceil(capacity/shards)`.
    #[must_use]
    pub fn with_capacity(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            per_shard_capacity: per_shard,
            hasher: RandomState::new(),
            rejected_full: AtomicU64::new(0),
        }
    }

    fn shard(&self, grantor: &PrincipalId, id: u64) -> &Mutex<ReplayShard> {
        let h = self.hasher.hash_one((grantor, id));
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// The concurrent check-and-mark: records `(grantor, id)` if fresh,
    /// under the owning shard's lock. Semantics match
    /// [`ReplayGuard::accept_once`], from `&self`.
    pub fn check_and_mark(
        &self,
        grantor: &PrincipalId,
        id: u64,
        now: Timestamp,
        expires: Timestamp,
    ) -> bool {
        let mut shard = self.shard(grantor, id).lock().expect("replay shard");
        shard.since_sweep += 1;
        if shard.since_sweep >= SWEEP_PERIOD {
            shard.since_sweep = 0;
            shard.seen.retain(|_, exp| *exp > now);
        }
        let fresh = mark_once(
            &mut shard.seen,
            Some(self.per_shard_capacity),
            grantor,
            id,
            now,
            expires,
        );
        if !fresh && !shard.seen.contains_key(&(grantor.clone(), id)) {
            self.rejected_full.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Force-marks `(grantor, id)` as already consumed, *bypassing* the
    /// capacity bound: the durable-recovery path (`proxy-storage` WAL
    /// replay) restores the pre-crash replay set with this, and on
    /// recovery never-forget is the safe direction — an over-full cache
    /// rejects some fresh proxies until entries expire, while a dropped
    /// mark would admit a replayed check. No expiry judgement is made
    /// here (recovery takes no ambient clock); the normal sweeps trim
    /// stale marks as soon as the server starts serving.
    pub fn rehydrate(&self, grantor: &PrincipalId, id: u64, expires: Timestamp) {
        let mut shard = self.shard(grantor, id).lock().expect("replay shard");
        let key = (grantor.clone(), id);
        let keep = shard
            .seen
            .get(&key)
            .map_or(expires, |prior| expires.max(*prior));
        shard.seen.insert(key, keep);
    }

    /// Visits every remembered `(grantor, id, expires)` entry, one shard
    /// at a time — the durable snapshot writer enumerates the replay set
    /// with this. Entries within a shard come in hash-map order; callers
    /// needing a canonical order must sort.
    pub fn for_each_entry(&self, mut f: impl FnMut(&PrincipalId, u64, Timestamp)) {
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("replay shard");
            for ((grantor, id), expires) in shard.seen.iter() {
                f(grantor, *id, *expires);
            }
        }
    }

    /// Sweeps every shard's expired entries.
    pub fn sweep(&self, now: Timestamp) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("replay shard");
            shard.since_sweep = 0;
            shard.seen.retain(|_, exp| *exp > now);
        }
    }

    /// Number of identifiers currently remembered, across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("replay shard").seen.len())
            .sum()
    }

    /// True when no identifiers are remembered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total identifier capacity (shards × per-shard bound).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Fail-closed events: fresh identifiers rejected because their shard
    /// was full of live entries.
    #[must_use]
    pub fn rejected_full(&self) -> u64 {
        self.rejected_full.load(Ordering::Relaxed)
    }
}

impl Default for ReplayCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayGuard for ReplayCache {
    fn accept_once(
        &mut self,
        grantor: &PrincipalId,
        id: u64,
        now: Timestamp,
        expires: Timestamp,
    ) -> bool {
        self.check_and_mark(grantor, id, now, expires)
    }

    fn expire(&mut self, now: Timestamp) {
        self.sweep(now);
    }
}

/// A shared reference is itself a guard: concurrent servers pass
/// `&mut &cache` where the verifier wants `&mut dyn ReplayGuard`, keeping
/// the hot path `&self` end to end.
impl ReplayGuard for &ReplayCache {
    fn accept_once(
        &mut self,
        grantor: &PrincipalId,
        id: u64,
        now: Timestamp,
        expires: Timestamp,
    ) -> bool {
        self.check_and_mark(grantor, id, now, expires)
    }

    fn expire(&mut self, now: Timestamp) {
        self.sweep(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    #[test]
    fn fresh_then_replayed() {
        let mut g = MemoryReplayGuard::new();
        assert!(g.accept_once(&p("c"), 1, Timestamp(0), Timestamp(10)));
        assert!(!g.accept_once(&p("c"), 1, Timestamp(0), Timestamp(10)));
        assert!(g.accept_once(&p("c"), 2, Timestamp(0), Timestamp(10)));
        assert!(g.accept_once(&p("d"), 1, Timestamp(0), Timestamp(10)));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn expiry_frees_identifiers() {
        let mut g = MemoryReplayGuard::new();
        assert!(g.accept_once(&p("c"), 1, Timestamp(0), Timestamp(10)));
        g.expire(Timestamp(9));
        assert!(
            !g.accept_once(&p("c"), 1, Timestamp(9), Timestamp(10)),
            "still remembered"
        );
        g.expire(Timestamp(10));
        assert!(g.is_empty());
        // After the window the id may be seen again (a new check may
        // legitimately reuse a number after the old one expired).
        assert!(g.accept_once(&p("c"), 1, Timestamp(11), Timestamp(20)));
    }

    #[test]
    fn replay_extends_retention() {
        let mut g = MemoryReplayGuard::new();
        assert!(g.accept_once(&p("c"), 1, Timestamp(0), Timestamp(10)));
        // A replay attempt carrying a longer expiry must extend retention.
        assert!(!g.accept_once(&p("c"), 1, Timestamp(0), Timestamp(50)));
        g.expire(Timestamp(10));
        assert!(
            !g.accept_once(&p("c"), 1, Timestamp(10), Timestamp(50)),
            "retention extended"
        );
    }

    #[test]
    fn rejecting_guard_rejects_everything() {
        let mut g = RejectAcceptOnce;
        assert!(!g.accept_once(&p("c"), 1, Timestamp(0), Timestamp(10)));
    }

    #[test]
    fn bounded_guard_stays_bounded_over_a_long_life() {
        // A long-lived server: identifiers arrive forever, each living 32
        // ticks (live population 32 < cap 64). The guard must not grow
        // beyond its cap even after 50× the cap's worth of identifiers.
        let mut g = MemoryReplayGuard::with_capacity(64);
        for id in 0..(64 * 50) {
            let now = Timestamp(id);
            assert!(
                g.accept_once(&p("c"), id, now, Timestamp(id + 32)),
                "fresh id {id} admitted (expired entries swept)"
            );
            assert!(g.len() <= 64, "bounded at {id}: len {}", g.len());
        }
    }

    #[test]
    fn bounded_guard_fails_closed_when_full_of_live_entries() {
        let mut g = MemoryReplayGuard::with_capacity(4);
        for id in 0..4 {
            assert!(g.accept_once(&p("c"), id, Timestamp(0), Timestamp(1000)));
        }
        // All four are live; a fresh fifth must be *rejected*, not
        // admitted untracked.
        assert!(!g.accept_once(&p("c"), 99, Timestamp(1), Timestamp(1000)));
        assert_eq!(g.len(), 4);
        // Consumed identifiers keep being rejected, of course.
        assert!(!g.accept_once(&p("c"), 0, Timestamp(1), Timestamp(1000)));
    }

    #[test]
    fn replay_cache_basic_round_trip() {
        let cache = ReplayCache::with_capacity(1024, 4);
        assert!(cache.check_and_mark(&p("c"), 1, Timestamp(0), Timestamp(10)));
        assert!(!cache.check_and_mark(&p("c"), 1, Timestamp(0), Timestamp(10)));
        assert!(cache.check_and_mark(&p("c"), 2, Timestamp(0), Timestamp(10)));
        assert_eq!(cache.len(), 2);
        cache.sweep(Timestamp(10));
        assert!(cache.is_empty());
        assert!(cache.check_and_mark(&p("c"), 1, Timestamp(11), Timestamp(20)));
    }

    #[test]
    fn replay_cache_works_through_the_trait_by_reference() {
        let cache = ReplayCache::new();
        let mut guard: &ReplayCache = &cache;
        let replay: &mut dyn ReplayGuard = &mut guard;
        assert!(replay.accept_once(&p("c"), 7, Timestamp(0), Timestamp(10)));
        assert!(!replay.accept_once(&p("c"), 7, Timestamp(0), Timestamp(10)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn replay_cache_exactly_once_under_contention() {
        let cache = ReplayCache::with_capacity(1024, 8);
        let grantor = p("carol");
        let admitted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                let grantor = &grantor;
                let admitted = &admitted;
                scope.spawn(move || {
                    for id in 0..200 {
                        if cache.check_and_mark(grantor, id, Timestamp(1), Timestamp(1000)) {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 8 threads raced every one of 200 identifiers; each id was
        // admitted exactly once.
        assert_eq!(admitted.load(Ordering::Relaxed), 200);
        assert_eq!(cache.len(), 200);
    }

    #[test]
    fn replay_cache_bounded_and_fail_closed() {
        let cache = ReplayCache::with_capacity(64, 4);
        assert_eq!(cache.capacity(), 64);
        // Flood with live entries far beyond capacity.
        for id in 0..10_000 {
            cache.check_and_mark(&p("c"), id, Timestamp(0), Timestamp(u64::MAX));
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.rejected_full() > 0, "fail-closed events recorded");
        // Expiring everything restores admission.
        cache.sweep(Timestamp(u64::MAX));
        assert!(cache.check_and_mark(&p("c"), 1, Timestamp(0), Timestamp(u64::MAX)));
    }

    #[test]
    fn rehydrated_marks_reject_replays_and_round_trip_enumeration() {
        let cache = ReplayCache::with_capacity(1024, 4);
        cache.rehydrate(&p("c"), 7, Timestamp(100));
        cache.rehydrate(&p("d"), 7, Timestamp(200));
        // A pre-crash consumed identifier stays consumed.
        assert!(!cache.check_and_mark(&p("c"), 7, Timestamp(0), Timestamp(100)));
        assert!(cache.check_and_mark(&p("c"), 8, Timestamp(0), Timestamp(100)));
        // Enumeration sees rehydrated and fresh marks alike.
        let mut seen = Vec::new();
        cache.for_each_entry(|g, id, exp| seen.push((g.clone(), id, exp)));
        seen.sort();
        assert_eq!(
            seen,
            vec![
                (p("c"), 7, Timestamp(100)),
                (p("c"), 8, Timestamp(100)),
                (p("d"), 7, Timestamp(200)),
            ]
        );
    }

    #[test]
    fn rehydrate_bypasses_the_capacity_bound() {
        // Recovery must restore every pre-crash mark even into a cache
        // already full of live entries: forgetting admits a replay.
        let cache = ReplayCache::with_capacity(4, 1);
        for id in 0..4 {
            assert!(cache.check_and_mark(&p("c"), id, Timestamp(0), Timestamp(1000)));
        }
        cache.rehydrate(&p("c"), 99, Timestamp(1000));
        assert!(
            !cache.check_and_mark(&p("c"), 99, Timestamp(0), Timestamp(1000)),
            "rehydrated mark must hold despite the full cache"
        );
        // And rehydrating an existing key keeps the longer retention.
        cache.rehydrate(&p("c"), 0, Timestamp(5));
        let mut kept = None;
        cache.for_each_entry(|g, id, exp| {
            if g == &p("c") && id == 0 {
                kept = Some(exp);
            }
        });
        assert_eq!(kept, Some(Timestamp(1000)));
    }

    #[test]
    fn replay_cache_long_lived_server_stays_bounded() {
        // Clock advances; identifiers expire shortly after issue. The
        // amortized sweep keeps the footprint near the live population
        // without any explicit expire() calls.
        let cache = ReplayCache::with_capacity(512, 4);
        for id in 0..100_000u64 {
            cache.check_and_mark(&p("c"), id, Timestamp(id), Timestamp(id + 64));
        }
        assert!(
            cache.len() <= cache.capacity(),
            "len {} exceeds cap {}",
            cache.len(),
            cache.capacity()
        );
        assert_eq!(
            cache.rejected_full(),
            0,
            "sweeping alone keeps a live-bounded workload under the cap"
        );
    }
}
