//! Replay protection for `accept-once` restrictions (§7.7).
//!
//! "Once a check is paid, the accounting server keeps track of the check
//! number until the expiration time on the check. If, within that period,
//! another check with the same number is seen, it is rejected." (§4)

use std::collections::HashMap;

use crate::principal::PrincipalId;
use crate::time::Timestamp;

/// End-server-side memory of `accept-once` identifiers.
pub trait ReplayGuard {
    /// Records `(grantor, id)` if fresh, remembering it until `expires`.
    /// Returns `true` when fresh (the proxy may be accepted), `false` when
    /// the identifier was already used.
    fn accept_once(&mut self, grantor: &PrincipalId, id: u64, expires: Timestamp) -> bool;

    /// Drops identifiers whose retention window has passed. Identifiers
    /// need only be remembered until the proxy carrying them expires —
    /// after that the proxy is unusable anyway.
    fn expire(&mut self, now: Timestamp);
}

/// In-memory [`ReplayGuard`].
#[derive(Debug, Default)]
pub struct MemoryReplayGuard {
    seen: HashMap<(PrincipalId, u64), Timestamp>,
}

impl MemoryReplayGuard {
    /// Creates an empty guard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of identifiers currently remembered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when no identifiers are remembered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

impl ReplayGuard for MemoryReplayGuard {
    fn accept_once(&mut self, grantor: &PrincipalId, id: u64, expires: Timestamp) -> bool {
        let key = (grantor.clone(), id);
        if let Some(prior) = self.seen.get(&key) {
            // Remember the longer of the two retention windows.
            if expires > *prior {
                self.seen.insert(key, expires);
            }
            return false;
        }
        self.seen.insert(key, expires);
        true
    }

    fn expire(&mut self, now: Timestamp) {
        self.seen.retain(|_, expires| *expires > now);
    }
}

/// A guard that refuses every `accept-once` proxy — for verifiers that
/// cannot afford replay state and therefore must not accept such proxies.
#[derive(Debug, Default, Clone, Copy)]
pub struct RejectAcceptOnce;

impl ReplayGuard for RejectAcceptOnce {
    fn accept_once(&mut self, _grantor: &PrincipalId, _id: u64, _expires: Timestamp) -> bool {
        false
    }

    fn expire(&mut self, _now: Timestamp) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    #[test]
    fn fresh_then_replayed() {
        let mut g = MemoryReplayGuard::new();
        assert!(g.accept_once(&p("c"), 1, Timestamp(10)));
        assert!(!g.accept_once(&p("c"), 1, Timestamp(10)));
        assert!(g.accept_once(&p("c"), 2, Timestamp(10)));
        assert!(g.accept_once(&p("d"), 1, Timestamp(10)));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn expiry_frees_identifiers() {
        let mut g = MemoryReplayGuard::new();
        assert!(g.accept_once(&p("c"), 1, Timestamp(10)));
        g.expire(Timestamp(9));
        assert!(
            !g.accept_once(&p("c"), 1, Timestamp(10)),
            "still remembered"
        );
        g.expire(Timestamp(10));
        assert!(g.is_empty());
        // After the window the id may be seen again (a new check may
        // legitimately reuse a number after the old one expired).
        assert!(g.accept_once(&p("c"), 1, Timestamp(20)));
    }

    #[test]
    fn replay_extends_retention() {
        let mut g = MemoryReplayGuard::new();
        assert!(g.accept_once(&p("c"), 1, Timestamp(10)));
        // A replay attempt carrying a longer expiry must extend retention.
        assert!(!g.accept_once(&p("c"), 1, Timestamp(50)));
        g.expire(Timestamp(10));
        assert!(
            !g.accept_once(&p("c"), 1, Timestamp(50)),
            "retention extended"
        );
    }

    #[test]
    fn rejecting_guard_rejects_everything() {
        let mut g = RejectAcceptOnce;
        assert!(!g.accept_once(&p("c"), 1, Timestamp(10)));
    }
}
