//! A bounded, expiry-aware cache of certificate seal checks.
//!
//! Re-presentation is the common case in the paper's workloads: the same
//! proxy chain arrives at an end-server once per request, and at an
//! accounting server once per clearing hop. The expensive part of each
//! arrival is re-checking the Ed25519 seals; everything else (validity
//! windows, possession proofs, restriction evaluation, replay guards) is
//! cheap *and request-dependent*, so it must run every time.
//!
//! This cache therefore memoizes exactly one fact per entry: "this
//! certificate body, under this seal, checked against this verifying key,
//! carried a valid signature". The key is a SHA-256 digest over all three
//! inputs, so an entry can never vouch for different bytes or a different
//! grantor key. What is deliberately **not** cached:
//!
//! * validity windows — checked against `ctx.now` on every request;
//! * accept-once / replay decisions — the replay guard is consulted on
//!   every request;
//! * possession proofs — bound to a fresh challenge each time;
//! * restriction evaluation — context-dependent by definition.
//!
//! Entries carry the certificate's expiry so the cache can drop entries
//! that can no longer gate anything, and the whole structure is bounded:
//! at capacity, the oldest entry is evicted (insertion order). Negative
//! results are never stored — a forged seal is re-checked (and re-fails)
//! on every presentation.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use proxy_crypto::sha256::Sha256;

use crate::cert::{CertSeal, Certificate};
use crate::time::Timestamp;

/// A digest naming one (certificate body, seal, verifying key) triple.
pub(crate) type SealDigest = [u8; 32];

/// Computes the cache key for a certificate checked against a particular
/// verifier, identified by `verifier_id` (the encoded public key).
/// `body` must be the certificate's [`Certificate::body_bytes`]; callers
/// pass it in so a verify pass can reuse one scratch encoding for both
/// the seal check and the cache key.
pub(crate) fn seal_digest(cert: &Certificate, body: &[u8], verifier_id: &[u8]) -> SealDigest {
    let mut h = Sha256::new();
    h.update(b"proxy-aa seal-cache v1");
    h.update(body);
    match &cert.seal {
        CertSeal::Hmac(tag) => {
            h.update(&[0]);
            h.update(tag);
        }
        CertSeal::Ed25519(sig) => {
            h.update(&[1]);
            h.update(sig.as_bytes());
        }
    }
    h.update(verifier_id);
    h.finalize()
}

#[derive(Debug, Default)]
struct CacheInner {
    /// digest → certificate expiry.
    entries: HashMap<SealDigest, Timestamp>,
    /// Insertion order, for bounded eviction.
    order: VecDeque<SealDigest>,
}

/// Caches this large or larger are lock-striped across
/// [`VerifiedCertCache::STRIPES`] shards; smaller caches use one shard so
/// the capacity bound and FIFO eviction order stay globally exact.
const STRIPE_THRESHOLD: usize = 256;

/// Cache of positively-verified certificate seals. See the module docs for
/// the exact contract.
///
/// Interior-mutable so a shared [`crate::verify::Verifier`] can record
/// hits from `&self`; locks are held only for map operations, never
/// across any cryptography. Large caches are lock-striped: the digest's
/// first byte picks one of [`Self::STRIPES`] independent shards, so
/// concurrent verifier threads rarely contend. SHA-256 digests spread
/// uniformly, so each shard's share of the capacity is enforced locally
/// (total bound: stripes × ceil(capacity/stripes)).
#[derive(Debug)]
pub struct VerifiedCertCache {
    shards: Box<[Mutex<CacheInner>]>,
    /// Per-shard entry bound.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl VerifiedCertCache {
    /// Lock-stripe count for caches of at least 256 entries.
    pub const STRIPES: usize = 16;

    /// Creates a cache holding at most ~`capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let stripes = if capacity >= STRIPE_THRESHOLD {
            Self::STRIPES
        } else {
            1
        };
        Self {
            shards: (0..stripes).map(|_| Mutex::default()).collect(),
            capacity: capacity.div_ceil(stripes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, digest: &SealDigest) -> &Mutex<CacheInner> {
        &self.shards[usize::from(digest[0]) % self.shards.len()]
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").entries.len())
            .sum()
    }

    /// True when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses) counters, for instrumentation and the
    /// benchmark ablation.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// True when `digest` holds a cached positive seal check that has not
    /// expired. Updates the hit/miss counters.
    pub(crate) fn contains(&self, digest: &SealDigest, now: Timestamp) -> bool {
        let inner = self.shard(digest).lock().expect("cache lock");
        let hit = inner.entries.get(digest).is_some_and(|exp| now <= *exp);
        drop(inner);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a positive seal check for a certificate expiring at
    /// `expires`. Entries already expired at `now` are not stored. At
    /// capacity, expired entries are purged first; if none, the oldest
    /// entry is evicted.
    pub(crate) fn insert(&self, digest: SealDigest, expires: Timestamp, now: Timestamp) {
        if expires < now {
            return;
        }
        let mut inner = self.shard(&digest).lock().expect("cache lock");
        if inner.entries.contains_key(&digest) {
            return;
        }
        if inner.entries.len() >= self.capacity {
            Self::purge_expired(&mut inner, now);
        }
        while inner.entries.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.entries.remove(&oldest);
                }
                None => break,
            }
        }
        inner.entries.insert(digest, expires);
        inner.order.push_back(digest);
    }

    fn purge_expired(inner: &mut CacheInner, now: Timestamp) {
        let entries = &mut inner.entries;
        entries.retain(|_, exp| now <= *exp);
        inner.order.retain(|d| entries.contains_key(d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> SealDigest {
        [tag; 32]
    }

    #[test]
    fn hit_then_miss_after_expiry() {
        let cache = VerifiedCertCache::new(8);
        cache.insert(digest(1), Timestamp(100), Timestamp(10));
        assert!(cache.contains(&digest(1), Timestamp(50)));
        assert!(cache.contains(&digest(1), Timestamp(100)));
        assert!(!cache.contains(&digest(1), Timestamp(101)));
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn never_stores_already_expired() {
        let cache = VerifiedCertCache::new(8);
        cache.insert(digest(2), Timestamp(5), Timestamp(10));
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_eviction_prefers_expired_entries() {
        let cache = VerifiedCertCache::new(2);
        cache.insert(digest(1), Timestamp(20), Timestamp(0));
        cache.insert(digest(2), Timestamp(1000), Timestamp(0));
        // At capacity and past digest(1)'s expiry: the expired entry goes.
        cache.insert(digest(3), Timestamp(1000), Timestamp(30));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&digest(2), Timestamp(40)));
        assert!(cache.contains(&digest(3), Timestamp(40)));

        // Nothing expired: oldest (insertion order) is evicted.
        cache.insert(digest(4), Timestamp(1000), Timestamp(40));
        assert_eq!(cache.len(), 2);
        assert!(!cache.contains(&digest(2), Timestamp(40)));
        assert!(cache.contains(&digest(4), Timestamp(40)));
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let cache = VerifiedCertCache::new(2);
        cache.insert(digest(1), Timestamp(100), Timestamp(0));
        cache.insert(digest(1), Timestamp(100), Timestamp(0));
        assert_eq!(cache.len(), 1);
        cache.insert(digest(2), Timestamp(100), Timestamp(0));
        cache.insert(digest(3), Timestamp(100), Timestamp(0));
        // digest(1) was evicted exactly once despite the double insert.
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&digest(3), Timestamp(0)));
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let cache = VerifiedCertCache::new(0);
        cache.insert(digest(1), Timestamp(10), Timestamp(0));
        assert_eq!(cache.len(), 1);
        cache.insert(digest(2), Timestamp(10), Timestamp(0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn striped_cache_spreads_and_stays_bounded() {
        // ≥ the stripe threshold → 16 shards; digests differing in their
        // first byte land on different stripes but behave as one cache.
        let cache = VerifiedCertCache::new(1024);
        for tag in 0..=255u8 {
            cache.insert(digest(tag), Timestamp(1000), Timestamp(0));
        }
        assert_eq!(cache.len(), 256);
        for tag in 0..=255u8 {
            assert!(cache.contains(&digest(tag), Timestamp(500)));
        }
        assert_eq!(cache.stats(), (256, 0));
    }

    #[test]
    fn striped_cache_is_safe_under_contention() {
        let cache = VerifiedCertCache::new(512);
        std::thread::scope(|scope| {
            for t in 0..4u8 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..64u8 {
                        let d = digest(t.wrapping_mul(64).wrapping_add(i));
                        cache.insert(d, Timestamp(1000), Timestamp(0));
                        assert!(cache.contains(&d, Timestamp(10)));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 256);
    }
}
