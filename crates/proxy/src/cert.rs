//! Proxy certificates (Fig. 1: `[restrictions, K_proxy]_grantor`).
//!
//! A certificate binds a grantor, a validity window, a restriction set, and
//! proxy-key material under a seal the end-server can check. Chains of
//! certificates implement cascaded authorization (Fig. 4).

use proxy_crypto::ed25519::{Signature, SIGNATURE_LEN};

use crate::encode::{DecodeError, Decoder, Encoder};
use crate::key::KeyMaterial;
use crate::principal::PrincipalId;
use crate::restriction::RestrictionSet;
use crate::time::{Timestamp, Validity};

/// Who sealed a certificate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigningAuthorityKind {
    /// Sealed by the named grantor's own authority (shared key or identity
    /// key): the head of every chain, and delegate-cascade links, which the
    /// intermediate signs directly so the chain leaves an audit trail
    /// (§3.4).
    Grantor,
    /// Sealed with the proxy key of the previous certificate in the chain:
    /// bearer-cascade links (Fig. 4).
    PriorProxyKey,
}

/// The cryptographic seal on a certificate body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertSeal {
    /// HMAC-SHA-256 tag (conventional cryptosystem).
    Hmac([u8; 32]),
    /// Ed25519 signature (public-key cryptosystem).
    Ed25519(Signature),
}

/// A restricted-proxy certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The principal whose authority seals this certificate: the original
    /// grantor at the chain head, or the intermediate server on a
    /// delegate-cascade link.
    pub grantor: PrincipalId,
    /// Grantor-chosen serial number (distinguishes proxies from the same
    /// grantor; checks reuse it as the check number).
    pub serial: u64,
    /// Validity window.
    pub validity: Validity,
    /// The restrictions this certificate adds (additive along a chain).
    pub restrictions: RestrictionSet,
    /// Proxy-key material (sealed symmetric key or public key).
    pub key_material: KeyMaterial,
    /// Who sealed the certificate.
    pub authority: SigningAuthorityKind,
    /// The seal itself, over [`Certificate::body_bytes`].
    pub seal: CertSeal,
}

impl Certificate {
    /// Generous pre-size for a typical single-certificate encode; bigger
    /// certificates just grow the buffer once.
    pub(crate) const ENCODE_CAPACITY_HINT: usize = 384;

    /// Appends the canonical seal-covered byte string (every field except
    /// the seal itself) to `e` — the scratch-buffer form of
    /// [`body_bytes`](Self::body_bytes).
    pub fn body_bytes_onto(&self, e: &mut Encoder) {
        e.raw(b"proxy-aa cert v1");
        e.str(self.grantor.as_str());
        e.u64(self.serial);
        e.u64(self.validity.from.0);
        e.u64(self.validity.until.0);
        self.restrictions.encode_into(e);
        match &self.key_material {
            KeyMaterial::SealedSymmetric(sealed) => {
                e.u8(0).bytes(sealed);
            }
            KeyMaterial::PublicKey(vk) => {
                e.u8(1).raw(vk.as_bytes());
            }
        }
        e.u8(match self.authority {
            SigningAuthorityKind::Grantor => 0,
            SigningAuthorityKind::PriorProxyKey => 1,
        });
    }

    /// The canonical byte string covered by the seal: every field except
    /// the seal itself.
    #[must_use]
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(Self::ENCODE_CAPACITY_HINT);
        self.body_bytes_onto(&mut e);
        e.finish()
    }

    /// Expiration instant.
    #[must_use]
    pub fn expires(&self) -> Timestamp {
        self.validity.until
    }

    /// Appends the full wire encoding (length-prefixed body + seal) to
    /// `e`, encoding the body in place — no temporary body buffer.
    pub fn encode_onto(&self, e: &mut Encoder) {
        e.nested(|e| self.body_bytes_onto(e));
        match &self.seal {
            CertSeal::Hmac(tag) => {
                e.u8(0).raw(tag);
            }
            CertSeal::Ed25519(sig) => {
                e.u8(1).raw(sig.as_bytes());
            }
        }
    }

    /// Full wire encoding (body + seal).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(Self::ENCODE_CAPACITY_HINT);
        self.encode_onto(&mut e);
        e.finish()
    }

    /// Size of the wire encoding in bytes (the F1 experiment series).
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Decodes a certificate from its wire encoding.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input. A decoded certificate is
    /// *unverified*: its seal must still be checked against the body.
    pub fn decode(input: &[u8]) -> Result<Certificate, DecodeError> {
        let mut d = Decoder::new(input);
        let body = d.bytes()?;
        let seal = match d.u8()? {
            0 => {
                let tag: [u8; 32] = d
                    .raw(32)?
                    .try_into()
                    .map_err(|_| DecodeError::UnexpectedEnd)?;
                CertSeal::Hmac(tag)
            }
            1 => {
                let sig = Signature::try_from_slice(d.raw(SIGNATURE_LEN)?)
                    .map_err(|_| DecodeError::UnexpectedEnd)?;
                CertSeal::Ed25519(sig)
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        d.finish()?;
        let mut cert = Self::decode_body(body)?;
        cert.seal = seal;
        Ok(cert)
    }

    fn decode_body(body: &[u8]) -> Result<Certificate, DecodeError> {
        let mut d = Decoder::new(body);
        let magic = d.raw(16)?;
        if magic != b"proxy-aa cert v1" {
            return Err(DecodeError::BadTag(magic[0]));
        }
        let grantor = d.principal()?;
        let serial = d.u64()?;
        let from = Timestamp(d.u64()?);
        let until = Timestamp(d.u64()?);
        if from >= until {
            return Err(DecodeError::BadLength(until.0));
        }
        let restrictions = RestrictionSet::decode_from(&mut d)?;
        let key_material = match d.u8()? {
            0 => KeyMaterial::SealedSymmetric(
                d.bytes()?
                    .try_into()
                    .map_err(|_| DecodeError::InvalidValue("sealed proxy key length"))?,
            ),
            1 => {
                let bytes: [u8; 32] = d
                    .raw(32)?
                    .try_into()
                    .map_err(|_| DecodeError::UnexpectedEnd)?;
                KeyMaterial::PublicKey(proxy_crypto::ed25519::VerifyingKey::from_bytes(bytes))
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        let authority = match d.u8()? {
            0 => SigningAuthorityKind::Grantor,
            1 => SigningAuthorityKind::PriorProxyKey,
            t => return Err(DecodeError::BadTag(t)),
        };
        d.finish()?;
        Ok(Certificate {
            grantor,
            serial,
            validity: Validity { from, until },
            restrictions,
            key_material,
            authority,
            seal: CertSeal::Hmac([0u8; 32]), // placeholder, replaced by caller
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restriction::Restriction;
    use proxy_crypto::ed25519::SigningKey;

    fn sample_cert() -> Certificate {
        Certificate {
            grantor: PrincipalId::new("alice"),
            serial: 7,
            validity: Validity::new(Timestamp(0), Timestamp(100)),
            restrictions: RestrictionSet::new()
                .with(Restriction::issued_for_one(PrincipalId::new("fs"))),
            key_material: KeyMaterial::SealedSymmetric([3u8; crate::key::SEALED_PROXY_KEY_LEN]),
            authority: SigningAuthorityKind::Grantor,
            seal: CertSeal::Hmac([9u8; 32]),
        }
    }

    #[test]
    fn body_bytes_is_deterministic_and_seal_free() {
        let mut a = sample_cert();
        let body1 = a.body_bytes();
        a.seal = CertSeal::Hmac([1u8; 32]);
        assert_eq!(a.body_bytes(), body1, "seal must not affect body");
        let mut b = sample_cert();
        b.serial = 8;
        assert_ne!(b.body_bytes(), body1, "serial must affect body");
    }

    #[test]
    fn wire_round_trip_hmac() {
        let cert = sample_cert();
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(decoded, cert);
    }

    #[test]
    fn wire_round_trip_ed25519() {
        let sk = SigningKey::from_seed(&[1u8; 32]);
        let mut cert = sample_cert();
        cert.key_material = KeyMaterial::PublicKey(sk.verifying_key());
        cert.authority = SigningAuthorityKind::PriorProxyKey;
        cert.seal = CertSeal::Ed25519(sk.sign(b"body"));
        let decoded = Certificate::decode(&cert.encode()).unwrap();
        assert_eq!(decoded, cert);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Certificate::decode(b"").is_err());
        assert!(Certificate::decode(b"random junk bytes here").is_err());
        // Valid prefix, corrupted magic.
        let mut bytes = sample_cert().encode();
        bytes[5] ^= 0xff;
        assert!(Certificate::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_empty_validity() {
        let mut cert = sample_cert();
        // Manually build an encoding with from == until by editing body.
        cert.validity = Validity {
            from: Timestamp(50),
            until: Timestamp(50),
        };
        let encoded = cert.encode();
        assert!(Certificate::decode(&encoded).is_err());
    }

    #[test]
    fn encoded_len_grows_with_restrictions() {
        let small = sample_cert();
        let mut big = sample_cert();
        let mut rs = big.restrictions.clone();
        for i in 0..10 {
            rs.push(Restriction::AcceptOnce { id: i });
        }
        big.restrictions = rs;
        assert!(big.encoded_len() > small.encoded_len());
    }
}
