//! Cross-request Ed25519 seal micro-batching.
//!
//! [`crate::verify::Verifier`] already batches the seal checks *within*
//! one presented chain ([`proxy_crypto::ed25519::verify_batch`] amortizes
//! the doubling work across equations). A busy server, though, verifies
//! many *independent* requests concurrently — each arriving on its own
//! connection worker — and each pays for its own small batch. A
//! [`SealBatcher`] collects the seal checks of concurrently in-flight
//! requests into one shared queue and flushes them through a single
//! combined batch equation, so the algebraic amortization spans requests,
//! not just links of one chain.
//!
//! ## Adaptivity — the low-load guarantee
//!
//! Batching buys throughput by spending latency, which is only a good
//! trade when there is someone to share the batch with. The batcher
//! therefore keeps an in-flight submission count; a submitter that finds
//! itself alone (count ≤ 1 and queue empty) verifies **inline**,
//! touching no lock beyond one queue probe and waiting for nobody. A
//! single-stream client pays the same latency as an unbatched verifier.
//!
//! ## Leader/follower flush protocol
//!
//! Under concurrency, a submitter enqueues its checks with a verdict
//! slot and then either *leads* or *follows*:
//!
//! * The submitter that finds the queue empty becomes the **leader**: it
//!   lingers up to the flush deadline (default ~50µs) for more arrivals,
//!   flushing early the moment the batch fills, then takes the whole
//!   queue (`mem::take` — leadership exclusivity comes from the take,
//!   not from a flag) and verifies it as one batch.
//! * Every other submitter is a **follower**: it parks on its slot's
//!   condvar until the verdict lands. A follower whose wait times out
//!   checks whether its job is still queued — if so the leader died or
//!   stalled and the follower rescues the batch by taking the queue
//!   itself; if not, a flush is in progress and it keeps waiting.
//!
//! ## Failure isolation
//!
//! A combined batch that fails tells us only that *some* signature is
//! bad. The flusher then re-verifies per request, so one forged seal
//! fails exactly the request that presented it; every co-batched request
//! still gets its honest verdict. (Within the failing request,
//! attribution falls back to per-item checks, mirroring
//! [`crate::verify::Verifier`]'s own fallback.)

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use proxy_crypto::ed25519::{self, Signature, VerifyingKey};

/// Default flush threshold: combined equations keep paying off past this
/// point, but waiting for more than this many concurrent requests is
/// rarely worth the linger.
pub const DEFAULT_MAX_BATCH: usize = 16;

/// Default leader linger before flushing a partial batch.
pub const DEFAULT_FLUSH_WAIT: Duration = Duration::from_micros(50);

/// One Ed25519 seal check, detached from its chain so it can cross
/// threads into the shared batch.
#[derive(Clone, Debug)]
pub struct SealCheck {
    /// The sealed certificate body bytes.
    pub body: Vec<u8>,
    /// The seal to verify.
    pub sig: Signature,
    /// The key the seal must verify under.
    pub vk: VerifyingKey,
}

/// Outcome counters, for benchmarks and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Submissions verified inline (low-load fast path).
    pub inline_verifies: u64,
    /// Combined batches flushed.
    pub batches: u64,
    /// Seal checks that went through a combined batch.
    pub batched_checks: u64,
}

/// A verdict slot one submission parks on.
#[derive(Debug)]
struct Slot {
    /// `None` until the flusher rules; then `Ok(())` or `Err(i)` with
    /// `i` the submission-local index of the first bad seal.
    verdict: Mutex<Option<Result<(), usize>>>,
    done: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            verdict: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn set(&self, v: Result<(), usize>) {
        // The slot holds a single Option with no cross-field invariant;
        // recover a poisoned lock rather than losing the verdict.
        *self.verdict.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
        self.done.notify_all();
    }
}

/// One queued submission: its checks and where to post the verdict.
#[derive(Debug)]
struct Job {
    checks: Vec<SealCheck>,
    slot: Arc<Slot>,
}

/// An adaptive cross-request seal batcher; see the module docs.
#[derive(Debug)]
pub struct SealBatcher {
    queue: Mutex<Vec<Job>>,
    /// Wakes a lingering leader when arrivals fill the batch.
    arrivals: Condvar,
    max_batch: usize,
    flush_wait: Duration,
    /// Submissions currently inside [`SealBatcher::verify_seals`].
    active: AtomicUsize,
    inline_verifies: AtomicU64,
    batches: AtomicU64,
    batched_checks: AtomicU64,
}

impl Default for SealBatcher {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_BATCH, DEFAULT_FLUSH_WAIT)
    }
}

impl SealBatcher {
    /// A batcher flushing at `max_batch` queued checks or after the
    /// leader has lingered `flush_wait`, whichever comes first.
    #[must_use]
    pub fn new(max_batch: usize, flush_wait: Duration) -> Self {
        Self {
            queue: Mutex::new(Vec::new()),
            arrivals: Condvar::new(),
            max_batch: max_batch.max(1),
            flush_wait,
            active: AtomicUsize::new(0),
            inline_verifies: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_checks: AtomicU64::new(0),
        }
    }

    /// Current outcome counters.
    #[must_use]
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            inline_verifies: self.inline_verifies.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_checks: self.batched_checks.load(Ordering::Relaxed),
        }
    }

    /// Verifies one request's seal checks, sharing a combined batch
    /// equation with other requests in flight at the same moment.
    ///
    /// # Errors
    ///
    /// `Err(i)` names the submission-local index of a seal that failed;
    /// co-batched submissions are unaffected (failure isolation).
    pub fn verify_seals(&self, checks: Vec<SealCheck>) -> Result<(), usize> {
        if checks.is_empty() {
            return Ok(());
        }
        let _in_flight = InFlight::enter(self);

        // Low-load fast path: alone and nothing queued → verify inline.
        if self.active.load(Ordering::Acquire) <= 1 && self.queue_guard().is_empty() {
            self.inline_verifies.fetch_add(1, Ordering::Relaxed);
            return verify_one_submission(&checks);
        }

        // Contended path: enqueue, then lead or follow.
        let slot = Arc::new(Slot::new());
        let lead = {
            let mut q = self.queue_guard();
            let was_empty = q.is_empty();
            q.push(Job {
                checks,
                slot: Arc::clone(&slot),
            });
            if !was_empty {
                // A leader may be lingering for exactly this arrival.
                self.arrivals.notify_one();
            }
            was_empty
        };
        if lead {
            self.linger_then_flush();
        }
        self.await_verdict(&slot)
    }

    /// Leader: wait up to the flush deadline for the batch to fill, then
    /// take and flush whatever is queued.
    fn linger_then_flush(&self) {
        let mut q = self.queue_guard();
        loop {
            let queued: usize = q.iter().map(|j| j.checks.len()).sum();
            if queued >= self.max_batch || queued == 0 {
                // Full — or a rescuer already took our batch.
                break;
            }
            let (guard, timeout) = self
                .arrivals
                .wait_timeout(q, self.flush_wait)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let jobs = std::mem::take(&mut *q);
        drop(q);
        self.flush(jobs);
    }

    /// Parks until this submission's verdict lands. A timed-out waiter
    /// whose job is still queued rescues the batch by flushing it.
    fn await_verdict(&self, slot: &Arc<Slot>) -> Result<(), usize> {
        let mut v = slot.verdict.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(verdict) = *v {
                return verdict;
            }
            let wait = self
                .flush_wait
                .saturating_mul(4)
                .max(Duration::from_micros(200));
            let (guard, timeout) = slot
                .done
                .wait_timeout(v, wait)
                .unwrap_or_else(PoisonError::into_inner);
            v = guard;
            if timeout.timed_out() && v.is_none() {
                // Leader stalled? If our job is still queued, rescue it.
                drop(v);
                let jobs = {
                    let mut q = self.queue_guard();
                    if q.iter().any(|j| Arc::ptr_eq(&j.slot, slot)) {
                        std::mem::take(&mut *q)
                    } else {
                        Vec::new() // flush in progress; keep waiting
                    }
                };
                self.flush(jobs);
                v = slot.verdict.lock().unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Verifies a taken batch as one combined equation and posts every
    /// job's verdict. On a combined failure, each job re-verifies alone
    /// so a bad seal fails only the request that presented it.
    fn flush(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = jobs
            .iter()
            .flat_map(|j| j.checks.iter().map(|c| (c.body.as_slice(), &c.sig, &c.vk)))
            .collect();
        let all_ok = ed25519::verify_batch(&items).is_ok();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_checks
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        for job in &jobs {
            let verdict = if all_ok {
                Ok(())
            } else {
                verify_one_submission(&job.checks)
            };
            job.slot.set(verdict);
        }
    }

    /// The free-list of jobs carries no cross-entry invariant; recover a
    /// poisoned lock rather than wedging every verifier thread.
    fn queue_guard(&self) -> MutexGuard<'_, Vec<Job>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Verifies one submission's checks by themselves: its own small batch
/// first, per-item attribution on failure.
fn verify_one_submission(checks: &[SealCheck]) -> Result<(), usize> {
    let items: Vec<(&[u8], &Signature, &VerifyingKey)> = checks
        .iter()
        .map(|c| (c.body.as_slice(), &c.sig, &c.vk))
        .collect();
    if ed25519::verify_batch(&items).is_ok() {
        return Ok(());
    }
    for (i, c) in checks.iter().enumerate() {
        if c.vk.verify(&c.body, &c.sig).is_err() {
            return Err(i);
        }
    }
    // Unreachable in practice (the batch only fails when some equation
    // fails); fail closed on the head rather than accept.
    Err(0)
}

/// RAII guard for the in-flight submission count.
struct InFlight<'a> {
    batcher: &'a SealBatcher,
}

impl<'a> InFlight<'a> {
    fn enter(batcher: &'a SealBatcher) -> Self {
        batcher.active.fetch_add(1, Ordering::AcqRel);
        Self { batcher }
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.batcher.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxy_crypto::ed25519::SigningKey;

    fn check(msg: &[u8], key: &SigningKey) -> SealCheck {
        SealCheck {
            body: msg.to_vec(),
            sig: key.sign(msg),
            vk: key.verifying_key(),
        }
    }

    fn bad_check(msg: &[u8], key: &SigningKey) -> SealCheck {
        let mut c = check(msg, key);
        c.body.push(0xFF); // body no longer matches the seal
        c
    }

    #[test]
    fn single_submission_verifies_inline() {
        let b = SealBatcher::default();
        let k = SigningKey::from_seed(&[7u8; 32]);
        assert_eq!(b.verify_seals(vec![check(b"hello", &k)]), Ok(()));
        let stats = b.stats();
        assert_eq!(stats.inline_verifies, 1);
        assert_eq!(stats.batches, 0, "no combined batch for a lone caller");
    }

    #[test]
    fn bad_seal_is_attributed_to_its_local_index() {
        let b = SealBatcher::default();
        let k = SigningKey::from_seed(&[8u8; 32]);
        let checks = vec![check(b"a", &k), bad_check(b"b", &k), check(b"c", &k)];
        assert_eq!(b.verify_seals(checks), Err(1));
    }

    #[test]
    fn empty_submission_is_trivially_ok() {
        let b = SealBatcher::default();
        assert_eq!(b.verify_seals(Vec::new()), Ok(()));
        assert_eq!(b.stats(), BatcherStats::default());
    }

    #[test]
    fn concurrent_submissions_share_batches_and_keep_verdicts_separate() {
        let b = Arc::new(SealBatcher::new(8, Duration::from_micros(500)));
        let good_key = SigningKey::from_seed(&[1u8; 32]);
        let bad_key = SigningKey::from_seed(&[2u8; 32]);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let b = Arc::clone(&b);
                let good = good_key.clone();
                let bad = bad_key.clone();
                std::thread::spawn(move || {
                    let mut verdicts = Vec::new();
                    for round in 0..25u32 {
                        let msg = [i as u8, round as u8, 3, 4];
                        let checks = if i == 0 {
                            vec![bad_check(&msg, &bad)]
                        } else {
                            vec![check(&msg, &good)]
                        };
                        verdicts.push(b.verify_seals(checks));
                    }
                    verdicts
                })
            })
            .collect();
        for (i, t) in threads.into_iter().enumerate() {
            let verdicts = t.join().expect("worker panicked");
            for v in verdicts {
                if i == 0 {
                    assert_eq!(v, Err(0), "forged seal must fail its own request");
                } else {
                    assert_eq!(v, Ok(()), "honest co-batched request must pass");
                }
            }
        }
    }

    #[test]
    fn contended_load_actually_batches() {
        // Force the contended path deterministically: pre-load the queue
        // by submitting from many threads with a generous linger.
        let b = Arc::new(SealBatcher::new(4, Duration::from_millis(5)));
        let k = SigningKey::from_seed(&[9u8; 32]);
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let b = Arc::clone(&b);
                let k = k.clone();
                std::thread::spawn(move || {
                    for round in 0..10u8 {
                        let msg = [i as u8, round];
                        assert_eq!(b.verify_seals(vec![check(&msg, &k)]), Ok(()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker panicked");
        }
        let stats = b.stats();
        assert!(
            stats.batches > 0 || stats.inline_verifies == 40,
            "all submissions accounted for: {stats:?}"
        );
        assert_eq!(
            stats.inline_verifies + stats.batched_checks,
            40,
            "every check verified exactly once: {stats:?}"
        );
    }
}
