//! Error types for granting and verifying proxies.

use crate::encode::DecodeError;
use crate::principal::PrincipalId;
use crate::restriction::Denial;
use crate::time::Timestamp;

/// Errors while granting or deriving a proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrantError {
    /// The requested validity window does not overlap the parent chain's
    /// effective window — a derived proxy cannot outlive its parent.
    ValidityOutsideParent,
    /// A cascade was attempted across cryptosystem flavors (e.g. deriving
    /// an Ed25519 link from a symmetric proxy).
    FlavorMismatch,
    /// The parent chain was empty.
    EmptyParent,
}

impl std::fmt::Display for GrantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrantError::ValidityOutsideParent => {
                write!(
                    f,
                    "requested validity does not overlap the parent proxy's window"
                )
            }
            GrantError::FlavorMismatch => {
                write!(f, "cascade links must use the parent proxy's cryptosystem")
            }
            GrantError::EmptyParent => write!(f, "parent certificate chain is empty"),
        }
    }
}

impl std::error::Error for GrantError {}

/// Errors while verifying a presented proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The presentation carried no certificates.
    EmptyChain,
    /// The chain head claims to be sealed by a prior proxy key, which is
    /// impossible — the head must be grantor-sealed.
    HeadNotGrantorSealed,
    /// No verification material for the named grantor.
    UnknownGrantor(PrincipalId),
    /// A certificate's seal did not verify.
    BadSeal {
        /// Index of the offending certificate in the chain.
        index: usize,
    },
    /// A sealed proxy key could not be recovered (wrong server or
    /// tampering).
    KeyUnrecoverable {
        /// Index of the offending certificate in the chain.
        index: usize,
    },
    /// Mixed cryptosystem flavors within one chain.
    FlavorMismatch {
        /// Index of the offending certificate in the chain.
        index: usize,
    },
    /// A certificate was outside its validity window at evaluation time.
    NotValidAt {
        /// Index of the offending certificate in the chain.
        index: usize,
        /// The evaluation time.
        now: Timestamp,
    },
    /// A certificate's serial appears in its grantor's mirrored
    /// revocation set (§3.1 revocation made explicit; see
    /// [`crate::revocation`]).
    Revoked {
        /// Index of the revoked certificate in the chain.
        index: usize,
        /// The revoked serial number.
        serial: u64,
    },
    /// A restriction denied the request.
    Denied(Denial),
    /// A bearer proxy was presented without a possession proof (§2: to
    /// exercise a bearer proxy the bearer must prove possession of the
    /// proxy key).
    BearerRequiresPossession,
    /// The possession proof did not verify.
    BadPossession,
    /// Wire decoding failed.
    Decode(DecodeError),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::EmptyChain => write!(f, "presentation contains no certificates"),
            VerifyError::HeadNotGrantorSealed => {
                write!(f, "chain head must be sealed by its grantor")
            }
            VerifyError::UnknownGrantor(p) => {
                write!(f, "no verification material for grantor {p}")
            }
            VerifyError::BadSeal { index } => {
                write!(f, "certificate {index} seal verification failed")
            }
            VerifyError::KeyUnrecoverable { index } => {
                write!(f, "certificate {index} proxy key could not be recovered")
            }
            VerifyError::FlavorMismatch { index } => {
                write!(
                    f,
                    "certificate {index} uses a different cryptosystem than its chain"
                )
            }
            VerifyError::NotValidAt { index, now } => {
                write!(f, "certificate {index} not valid at {now}")
            }
            VerifyError::Revoked { index, serial } => {
                write!(f, "certificate {index} (serial {serial}) has been revoked")
            }
            VerifyError::Denied(d) => write!(f, "request denied: {d}"),
            VerifyError::BearerRequiresPossession => {
                write!(f, "bearer proxy presented without proof of possession")
            }
            VerifyError::BadPossession => write!(f, "proof of possession failed"),
            VerifyError::Decode(e) => write!(f, "malformed presentation: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Denied(d) => Some(d),
            VerifyError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Denial> for VerifyError {
    fn from(d: Denial) -> Self {
        VerifyError::Denied(d)
    }
}

impl From<DecodeError> for VerifyError {
    fn from(e: DecodeError) -> Self {
        VerifyError::Decode(e)
    }
}
