//! A name server for public-key proxies (§6.1).
//!
//! "The end-server decrypts the proxy using the public key of the grantor
//! (obtained from an authentication/name server)." This module provides
//! that directory: the name server signs *key bindings* — (principal,
//! public key, validity) triples — and end-servers install verified
//! bindings into a [`CertifiedResolver`], which then serves as the
//! [`KeyResolver`] for proxy verification.

use std::collections::HashMap;

use proxy_crypto::ed25519::{Signature, SigningKey, VerifyingKey};

use crate::encode::{DecodeError, Decoder, Encoder};
use crate::key::{GrantorVerifier, KeyResolver};
use crate::principal::PrincipalId;
use crate::time::{Timestamp, Validity};

/// A signed (principal → public key) binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyBinding {
    /// The principal being bound.
    pub principal: PrincipalId,
    /// The principal's public key.
    pub key: VerifyingKey,
    /// How long the binding may be relied upon.
    pub validity: Validity,
    /// The name server's signature over the binding body.
    pub signature: Signature,
}

fn binding_body(principal: &PrincipalId, key: &VerifyingKey, validity: &Validity) -> Vec<u8> {
    let mut e = Encoder::new();
    e.raw(b"proxy-aa key binding v1");
    e.str(principal.as_str());
    e.raw(key.as_bytes());
    e.u64(validity.from.0);
    e.u64(validity.until.0);
    e.finish()
}

impl KeyBinding {
    /// Wire encoding.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(self.principal.as_str());
        e.raw(self.key.as_bytes());
        e.u64(self.validity.from.0);
        e.u64(self.validity.until.0);
        e.raw(self.signature.as_bytes());
        e.finish()
    }

    /// Decodes a wire binding (unverified until installed).
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input.
    pub fn decode(input: &[u8]) -> Result<KeyBinding, DecodeError> {
        let mut d = Decoder::new(input);
        let principal = d.principal()?;
        let key_bytes: [u8; 32] = d
            .raw(32)?
            .try_into()
            .map_err(|_| DecodeError::UnexpectedEnd)?;
        let from = Timestamp(d.u64()?);
        let until = Timestamp(d.u64()?);
        if from >= until {
            return Err(DecodeError::BadLength(until.0));
        }
        let signature =
            Signature::try_from_slice(d.raw(64)?).map_err(|_| DecodeError::UnexpectedEnd)?;
        d.finish()?;
        Ok(KeyBinding {
            principal,
            key: VerifyingKey::from_bytes(key_bytes),
            validity: Validity { from, until },
            signature,
        })
    }
}

/// The name server: registers principals' public keys and issues signed
/// bindings on demand.
#[derive(Debug)]
pub struct NameServer {
    name: PrincipalId,
    key: SigningKey,
    directory: HashMap<PrincipalId, VerifyingKey>,
    /// Lifetime of issued bindings, in ticks.
    pub binding_lifetime: u64,
}

impl NameServer {
    /// Creates a name server with signing key `key`.
    #[must_use]
    pub fn new(name: PrincipalId, key: SigningKey) -> Self {
        Self {
            name,
            key,
            directory: HashMap::new(),
            binding_lifetime: 10_000,
        }
    }

    /// The name server's principal name.
    #[must_use]
    pub fn name(&self) -> &PrincipalId {
        &self.name
    }

    /// The key end-servers use to verify bindings (distributed out of
    /// band, like a root of trust).
    #[must_use]
    pub fn verifying_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Registers (or replaces) a principal's public key.
    pub fn register(&mut self, principal: PrincipalId, key: VerifyingKey) {
        self.directory.insert(principal, key);
    }

    /// Removes a principal (key revocation at the directory).
    pub fn unregister(&mut self, principal: &PrincipalId) {
        self.directory.remove(principal);
    }

    /// Issues a signed binding for `principal`, valid from `now`.
    #[must_use]
    pub fn lookup(&self, principal: &PrincipalId, now: Timestamp) -> Option<KeyBinding> {
        let key = *self.directory.get(principal)?;
        let validity = Validity::new(now, now.plus(self.binding_lifetime));
        let signature = self.key.sign(&binding_body(principal, &key, &validity));
        Some(KeyBinding {
            principal: principal.clone(),
            key,
            validity,
            signature,
        })
    }
}

/// Errors installing a binding into a [`CertifiedResolver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingError {
    /// The name server's signature did not verify.
    BadSignature,
    /// The binding is outside its validity window.
    Expired,
}

impl std::fmt::Display for BindingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindingError::BadSignature => write!(f, "key binding signature invalid"),
            BindingError::Expired => write!(f, "key binding outside validity window"),
        }
    }
}

impl std::error::Error for BindingError {}

/// An end-server-side resolver populated from verified name-server
/// bindings. Implements [`KeyResolver`] for public-key proxy verification.
#[derive(Clone, Debug)]
pub struct CertifiedResolver {
    authority: VerifyingKey,
    cache: HashMap<PrincipalId, (VerifyingKey, Validity)>,
    now: Timestamp,
}

impl CertifiedResolver {
    /// Creates a resolver trusting bindings signed by `authority`.
    #[must_use]
    pub fn new(authority: VerifyingKey) -> Self {
        Self {
            authority,
            cache: HashMap::new(),
            now: Timestamp::ZERO,
        }
    }

    /// Advances the resolver's clock (expired cache entries stop
    /// resolving).
    pub fn set_now(&mut self, now: Timestamp) {
        self.now = now;
    }

    /// Verifies and caches a binding.
    ///
    /// # Errors
    ///
    /// [`BindingError::BadSignature`] or [`BindingError::Expired`].
    pub fn install(&mut self, binding: &KeyBinding) -> Result<(), BindingError> {
        let body = binding_body(&binding.principal, &binding.key, &binding.validity);
        self.authority
            .verify(&body, &binding.signature)
            .map_err(|_| BindingError::BadSignature)?;
        if !binding.validity.contains(self.now) {
            return Err(BindingError::Expired);
        }
        self.cache
            .insert(binding.principal.clone(), (binding.key, binding.validity));
        Ok(())
    }

    /// Number of cached bindings.
    #[must_use]
    pub fn cached(&self) -> usize {
        self.cache.len()
    }
}

impl KeyResolver for CertifiedResolver {
    fn grantor_verifier(&self, grantor: &PrincipalId) -> Option<GrantorVerifier> {
        let (key, validity) = self.cache.get(grantor)?;
        validity
            .contains(self.now)
            .then_some(GrantorVerifier::PublicKey(*key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn setup() -> (NameServer, SigningKey, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let ns_key = SigningKey::generate(&mut rng);
        let alice_key = SigningKey::generate(&mut rng);
        let mut ns = NameServer::new(p("ns"), ns_key);
        ns.register(p("alice"), alice_key.verifying_key());
        (ns, alice_key, rng)
    }

    #[test]
    fn lookup_install_resolve() {
        let (ns, alice_key, _rng) = setup();
        let binding = ns.lookup(&p("alice"), Timestamp(10)).unwrap();
        let mut resolver = CertifiedResolver::new(ns.verifying_key());
        resolver.set_now(Timestamp(10));
        resolver.install(&binding).unwrap();
        match resolver.grantor_verifier(&p("alice")) {
            Some(GrantorVerifier::PublicKey(k)) => {
                assert_eq!(k.as_bytes(), alice_key.verifying_key().as_bytes());
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(resolver.grantor_verifier(&p("bob")).is_none());
    }

    #[test]
    fn forged_binding_rejected() {
        let (ns, _alice_key, mut rng) = setup();
        let mut binding = ns.lookup(&p("alice"), Timestamp(0)).unwrap();
        // Mallory swaps in her own key.
        let mallory = SigningKey::generate(&mut rng);
        binding.key = mallory.verifying_key();
        let mut resolver = CertifiedResolver::new(ns.verifying_key());
        assert_eq!(resolver.install(&binding), Err(BindingError::BadSignature));
    }

    #[test]
    fn expired_binding_rejected_and_cache_expires() {
        let (ns, _alice_key, _rng) = setup();
        let binding = ns.lookup(&p("alice"), Timestamp(0)).unwrap();
        let mut resolver = CertifiedResolver::new(ns.verifying_key());
        // Installing after expiry fails.
        resolver.set_now(Timestamp(20_000));
        assert_eq!(resolver.install(&binding), Err(BindingError::Expired));
        // Installing in time, then advancing past expiry, stops resolution.
        resolver.set_now(Timestamp(5));
        resolver.install(&binding).unwrap();
        assert!(resolver.grantor_verifier(&p("alice")).is_some());
        resolver.set_now(Timestamp(20_000));
        assert!(resolver.grantor_verifier(&p("alice")).is_none());
    }

    #[test]
    fn binding_round_trips_on_wire() {
        let (ns, _alice_key, _rng) = setup();
        let binding = ns.lookup(&p("alice"), Timestamp(3)).unwrap();
        let decoded = KeyBinding::decode(&binding.encode()).unwrap();
        assert_eq!(decoded, binding);
    }

    #[test]
    fn unregister_stops_new_lookups() {
        let (mut ns, _alice_key, _rng) = setup();
        assert!(ns.lookup(&p("alice"), Timestamp(0)).is_some());
        ns.unregister(&p("alice"));
        assert!(ns.lookup(&p("alice"), Timestamp(0)).is_none());
    }

    #[test]
    fn end_to_end_with_public_key_proxy() {
        // The §6.1 flow: the end-server learns alice's key from the name
        // server, then verifies her proxy offline.
        let (ns, alice_key, mut rng) = setup();
        let proxy = crate::proxy::grant(
            &p("alice"),
            &crate::key::GrantAuthority::Keypair(alice_key),
            crate::restriction::RestrictionSet::new(),
            Validity::new(Timestamp(0), Timestamp(100)),
            1,
            &mut rng,
        );
        let binding = ns.lookup(&p("alice"), Timestamp(0)).unwrap();
        let mut resolver = CertifiedResolver::new(ns.verifying_key());
        resolver.set_now(Timestamp(5));
        resolver.install(&binding).unwrap();
        let verifier = crate::verify::Verifier::new(p("fs"), resolver);
        let pres = proxy.present_bearer([1u8; 32], &p("fs"));
        let ctx = crate::context::RequestContext::new(
            p("fs"),
            crate::restriction::Operation::new("read"),
            crate::restriction::ObjectName::new("x"),
        )
        .at(Timestamp(5));
        let mut guard = crate::replay::MemoryReplayGuard::new();
        assert!(verifier.verify(&pres, &ctx, &mut guard).is_ok());
    }
}
