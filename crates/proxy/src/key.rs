//! Proxy keys, grant authorities, and key resolution.
//!
//! A restricted proxy is a certificate plus a *proxy key* (Fig. 1). The
//! paper supports two cryptosystems (§6):
//!
//! * **Conventional** (§6.2, Kerberos-style): the grantor shares a
//!   (session) key with the end-server. Certificates are sealed with HMAC
//!   under that key, and the symmetric proxy key travels inside the
//!   certificate, encrypted so only the end-server can recover it.
//! * **Public-key** (§6.1, Fig. 6): certificates are signed with the
//!   grantor's Ed25519 key; the proxy key is a key pair whose public half
//!   is embedded in the certificate and whose private half goes to the
//!   grantee.
//!
//! Both flavors flow through the same types here so the rest of the system
//! is agnostic to the cryptosystem in use.

use std::collections::HashMap;

use rand::RngCore;

use proxy_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use proxy_crypto::hmac::HmacSha256;
use proxy_crypto::keys::SymmetricKey;
use proxy_crypto::seal;

use crate::principal::PrincipalId;

/// Domain-separation label for possession proofs.
const POSSESSION_LABEL: &[u8] = b"proxy-aa possession v1";
/// Domain-separation label for sealed proxy keys.
pub(crate) const PROXY_KEY_AAD: &[u8] = b"proxy-aa sealed proxy key v1";

/// The secret half of a proxy key, held by the grantee.
#[derive(Clone)]
pub enum ProxyKey {
    /// Conventional flavor: a fresh symmetric key.
    Symmetric(SymmetricKey),
    /// Public-key flavor: a fresh Ed25519 key pair (private half).
    Ed25519(SigningKey),
}

impl std::fmt::Debug for ProxyKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyKey::Symmetric(_) => write!(f, "ProxyKey::Symmetric(<redacted>)"),
            ProxyKey::Ed25519(k) => write!(f, "ProxyKey::Ed25519({:?})", k.verifying_key()),
        }
    }
}

impl ProxyKey {
    /// Generates a fresh symmetric proxy key.
    pub fn generate_symmetric<R: RngCore>(rng: &mut R) -> Self {
        ProxyKey::Symmetric(SymmetricKey::generate(rng))
    }

    /// Generates a fresh Ed25519 proxy key pair.
    pub fn generate_ed25519<R: RngCore>(rng: &mut R) -> Self {
        ProxyKey::Ed25519(SigningKey::generate(rng))
    }

    /// Produces a possession proof over `challenge` bound to the
    /// presentation context (end-server name and final certificate body
    /// digest), preventing a response from being replayed elsewhere.
    #[must_use]
    pub fn prove_possession(&self, challenge: &[u8; 32], binding: &[u8]) -> Vec<u8> {
        let msg = possession_message(challenge, binding);
        match self {
            ProxyKey::Symmetric(k) => HmacSha256::mac(k.as_bytes(), &msg).to_vec(),
            ProxyKey::Ed25519(k) => k.sign(&msg).as_bytes().to_vec(),
        }
    }
}

pub(crate) fn possession_message(challenge: &[u8; 32], binding: &[u8]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(POSSESSION_LABEL.len() + 32 + binding.len());
    msg.extend_from_slice(POSSESSION_LABEL);
    msg.extend_from_slice(challenge);
    msg.extend_from_slice(binding);
    msg
}

/// The verifier-side view of a proxy key, recovered while walking a chain.
#[derive(Clone, Debug)]
pub enum ProxyKeyVerifier {
    /// The unsealed symmetric proxy key (only the end-server can produce
    /// this, since the key was sealed for it).
    Symmetric(SymmetricKey),
    /// The embedded public half of the proxy key pair.
    Ed25519(VerifyingKey),
}

impl ProxyKeyVerifier {
    /// Checks a possession proof produced by [`ProxyKey::prove_possession`].
    #[must_use]
    pub fn check_possession(&self, challenge: &[u8; 32], binding: &[u8], proof: &[u8]) -> bool {
        let msg = possession_message(challenge, binding);
        match self {
            ProxyKeyVerifier::Symmetric(k) => HmacSha256::verify(k.as_bytes(), &msg, proof),
            ProxyKeyVerifier::Ed25519(vk) => {
                Signature::try_from_slice(proof).is_ok_and(|sig| vk.verify(&msg, &sig).is_ok())
            }
        }
    }
}

/// Wire length of the sealed symmetric proxy key embedded in a
/// certificate: always the seal of exactly one 32-byte key.
pub const SEALED_PROXY_KEY_LEN: usize = seal::SEALED_KEY32_LEN;

/// The key material embedded in a certificate (Fig. 1's `K_proxy` field).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyMaterial {
    /// The symmetric proxy key, sealed under the grantor↔end-server shared
    /// key (chain head) or under the previous proxy key (cascade link), so
    /// an eavesdropper observing the certificate cannot use the proxy.
    /// Fixed-width (a sealed 32-byte key), kept inline so grants and
    /// decodes never box it.
    SealedSymmetric([u8; SEALED_PROXY_KEY_LEN]),
    /// The public half of an Ed25519 proxy key pair (needs no secrecy).
    PublicKey(VerifyingKey),
}

impl KeyMaterial {
    /// Seals a symmetric proxy key under `sealing_key`.
    pub fn seal_symmetric<R: RngCore>(
        proxy_key: &SymmetricKey,
        sealing_key: &SymmetricKey,
        rng: &mut R,
    ) -> KeyMaterial {
        KeyMaterial::SealedSymmetric(seal::seal_key32(
            sealing_key,
            PROXY_KEY_AAD,
            proxy_key.as_bytes(),
            rng,
        ))
    }

    /// Recovers the proxy-key verifier, unsealing with `unseal_key` when
    /// the material is symmetric.
    ///
    /// # Errors
    ///
    /// Returns `None` on seal integrity failure or malformed key bytes.
    #[must_use]
    pub fn unseal(&self, unseal_key: Option<&SymmetricKey>) -> Option<ProxyKeyVerifier> {
        match self {
            KeyMaterial::SealedSymmetric(sealed) => {
                let key = unseal_key?;
                let bytes = seal::open(key, PROXY_KEY_AAD, sealed).ok()?;
                SymmetricKey::try_from_slice(&bytes)
                    .ok()
                    .map(ProxyKeyVerifier::Symmetric)
            }
            KeyMaterial::PublicKey(vk) => Some(ProxyKeyVerifier::Ed25519(*vk)),
        }
    }
}

/// The credential with which a grantor signs proxy certificates.
#[derive(Clone)]
pub enum GrantAuthority {
    /// Conventional flavor: a key shared with the end-server (in the full
    /// system, the Kerberos session key from the grantor's ticket for that
    /// server).
    SharedKey(SymmetricKey),
    /// Public-key flavor: the grantor's Ed25519 identity key.
    Keypair(SigningKey),
}

impl std::fmt::Debug for GrantAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrantAuthority::SharedKey(_) => write!(f, "GrantAuthority::SharedKey(<redacted>)"),
            GrantAuthority::Keypair(k) => {
                write!(f, "GrantAuthority::Keypair({:?})", k.verifying_key())
            }
        }
    }
}

/// The verifier-side counterpart of a [`GrantAuthority`].
#[derive(Clone)]
pub enum GrantorVerifier {
    /// Shared key between the named grantor and this end-server.
    SharedKey(SymmetricKey),
    /// The grantor's public key (obtained from a name/authentication
    /// server in the full system).
    PublicKey(VerifyingKey),
}

impl std::fmt::Debug for GrantorVerifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GrantorVerifier::SharedKey(_) => write!(f, "GrantorVerifier::SharedKey(<redacted>)"),
            GrantorVerifier::PublicKey(k) => write!(f, "GrantorVerifier::PublicKey({k:?})"),
        }
    }
}

/// Maps grantor names to verification material — the end-server's view of
/// the authentication infrastructure (paper §2: "The description assumes
/// that the infrastructure needed to authenticate the original grantor of a
/// proxy is in place").
pub trait KeyResolver {
    /// Verification material for certificates signed by `grantor`, or
    /// `None` when the grantor is unknown to this server.
    fn grantor_verifier(&self, grantor: &PrincipalId) -> Option<GrantorVerifier>;
}

/// A simple in-memory [`KeyResolver`].
#[derive(Clone, Debug, Default)]
pub struct MapResolver {
    entries: HashMap<PrincipalId, GrantorVerifier>,
}

impl MapResolver {
    /// Creates an empty resolver.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers verification material for `grantor`.
    pub fn insert(&mut self, grantor: PrincipalId, verifier: GrantorVerifier) {
        self.entries.insert(grantor, verifier);
    }

    /// Builder-style [`insert`](Self::insert).
    #[must_use]
    pub fn with(mut self, grantor: PrincipalId, verifier: GrantorVerifier) -> Self {
        self.insert(grantor, verifier);
        self
    }
}

impl KeyResolver for MapResolver {
    fn grantor_verifier(&self, grantor: &PrincipalId) -> Option<GrantorVerifier> {
        self.entries.get(grantor).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symmetric_possession_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = ProxyKey::generate_symmetric(&mut rng);
        let challenge = [7u8; 32];
        let proof = key.prove_possession(&challenge, b"binding");
        let ProxyKey::Symmetric(k) = &key else {
            unreachable!()
        };
        let verifier = ProxyKeyVerifier::Symmetric(k.clone());
        assert!(verifier.check_possession(&challenge, b"binding", &proof));
        assert!(!verifier.check_possession(&[8u8; 32], b"binding", &proof));
        assert!(!verifier.check_possession(&challenge, b"other", &proof));
    }

    #[test]
    fn ed25519_possession_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = ProxyKey::generate_ed25519(&mut rng);
        let challenge = [9u8; 32];
        let proof = key.prove_possession(&challenge, b"ctx");
        let ProxyKey::Ed25519(k) = &key else {
            unreachable!()
        };
        let verifier = ProxyKeyVerifier::Ed25519(k.verifying_key());
        assert!(verifier.check_possession(&challenge, b"ctx", &proof));
        assert!(!verifier.check_possession(&challenge, b"ctx", &proof[..63]));
    }

    #[test]
    fn sealed_key_material_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let proxy_key = SymmetricKey::generate(&mut rng);
        let session = SymmetricKey::generate(&mut rng);
        let material = KeyMaterial::seal_symmetric(&proxy_key, &session, &mut rng);
        match material.unseal(Some(&session)) {
            Some(ProxyKeyVerifier::Symmetric(k)) => assert_eq!(k.as_bytes(), proxy_key.as_bytes()),
            other => panic!("unexpected: {other:?}"),
        }
        // Wrong key or no key: unrecoverable.
        let wrong = SymmetricKey::generate(&mut rng);
        assert!(material.unseal(Some(&wrong)).is_none());
        assert!(material.unseal(None).is_none());
    }

    #[test]
    fn public_key_material_needs_no_unsealing() {
        let mut rng = StdRng::seed_from_u64(4);
        let sk = SigningKey::generate(&mut rng);
        let material = KeyMaterial::PublicKey(sk.verifying_key());
        assert!(matches!(
            material.unseal(None),
            Some(ProxyKeyVerifier::Ed25519(_))
        ));
    }

    #[test]
    fn map_resolver_lookups() {
        let mut rng = StdRng::seed_from_u64(5);
        let resolver = MapResolver::new().with(
            PrincipalId::new("alice"),
            GrantorVerifier::SharedKey(SymmetricKey::generate(&mut rng)),
        );
        assert!(resolver
            .grantor_verifier(&PrincipalId::new("alice"))
            .is_some());
        assert!(resolver
            .grantor_verifier(&PrincipalId::new("mallory"))
            .is_none());
    }
}
