//! Lock-striped hash maps for the concurrent service cores.
//!
//! The servers of the paper (§3.2 authorization, §3.4 end-server, §4
//! accounting) keep per-principal and per-account state. A single
//! `Mutex<HashMap>` would serialize every request; [`ShardMap`] instead
//! stripes the key space over N independent `RwLock<HashMap>` shards
//! (key hash → shard index), so requests for different principals
//! proceed in parallel while operations on *one* key remain
//! linearizable under that key's shard lock.
//!
//! Lock discipline (see DESIGN.md §9): callers never hold two shard
//! locks at once — every closure passed to [`ShardMap::read`],
//! [`ShardMap::update`], or [`ShardMap::upsert`] runs under exactly one
//! shard lock and must not touch the same map again. Multi-key flows
//! (e.g. debit payor then credit payee) are sequences of single-key
//! atomic steps, which is exactly the paper's model: each is a separate
//! message to a possibly different server.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::RwLock;

/// A hash map striped over N `RwLock`-protected shards.
///
/// All operations take `&self`; per-key operations are atomic (they run
/// under the owning shard's lock). Whole-map views (`len`, `for_each`)
/// visit shards one at a time and are only quiescently consistent.
#[derive(Debug)]
pub struct ShardMap<K, V> {
    shards: Box<[RwLock<HashMap<K, V>>]>,
    hasher: RandomState,
}

impl<K: Hash + Eq, V> ShardMap<K, V> {
    /// Default stripe count for server-sized maps.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates an empty map with [`Self::DEFAULT_SHARDS`] stripes.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates an empty map with `shards` stripes (minimum 1).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| RwLock::default()).collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Inserts `value` under `key`, returning any previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).write().expect("shard").insert(key, value)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).write().expect("shard").remove(key)
    }

    /// True when `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard(key).read().expect("shard").contains_key(key)
    }

    /// Runs `f` on the value under `key` (or `None`) while holding the
    /// shard's read lock. `f` must not re-enter this map.
    pub fn read<R>(&self, key: &K, f: impl FnOnce(Option<&V>) -> R) -> R {
        f(self.shard(key).read().expect("shard").get(key))
    }

    /// Runs `f` on the mutable value under `key` (or `None`) while
    /// holding the shard's write lock — the per-key linearization point.
    /// `f` must not re-enter this map.
    pub fn update<R>(&self, key: &K, f: impl FnOnce(Option<&mut V>) -> R) -> R {
        f(self.shard(key).write().expect("shard").get_mut(key))
    }

    /// Runs `f` on the value under `key`, inserting `default()` first if
    /// absent, all under one write-lock acquisition. `f` must not
    /// re-enter this map.
    pub fn upsert<R>(&self, key: K, default: impl FnOnce() -> V, f: impl FnOnce(&mut V) -> R) -> R {
        let mut shard = self.shard(&key).write().expect("shard");
        f(shard.entry(key).or_insert_with(default))
    }

    /// Removes `key` only when `gate` approves of (and possibly stages a
    /// side effect for) the present value, all under one write-lock
    /// acquisition — the check-stage-remove linearization point durable
    /// servers need (a plain `read` + `remove` pair would let a racing
    /// collector take the same entry twice). Returns `Ok(None)` when the
    /// key is absent; when `gate` errs the entry is left untouched.
    /// `gate` must not re-enter this map.
    pub fn remove_if<E>(
        &self,
        key: &K,
        gate: impl FnOnce(&V) -> Result<(), E>,
    ) -> Result<Option<V>, E> {
        let mut shard = self.shard(key).write().expect("shard");
        match shard.get(key) {
            None => Ok(None),
            Some(v) => {
                gate(v)?;
                Ok(shard.remove(key))
            }
        }
    }

    /// Clones the value under `key`.
    #[must_use]
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shard(key).read().expect("shard").get(key).cloned()
    }

    /// Exclusive access to the value under `key`. Requires `&mut self`,
    /// so no locking is needed — this is the admin/setup path.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let h = self.hasher.hash_one(key);
        let idx = (h as usize) % self.shards.len();
        self.shards[idx].get_mut().expect("shard").get_mut(key)
    }

    /// Total entries across all shards (quiescently consistent).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard").len())
            .sum()
    }

    /// True when every shard is empty (quiescently consistent).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every entry, one shard read-lock at a time. `f` must not
    /// re-enter this map.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in self.shards.iter() {
            for (k, v) in shard.read().expect("shard").iter() {
                f(k, v);
            }
        }
    }

    /// Folds over every entry, one shard read-lock at a time. `f` must
    /// not re-enter this map.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &K, &V) -> A) -> A {
        let mut acc = init;
        for shard in self.shards.iter() {
            for (k, v) in shard.read().expect("shard").iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }
}

impl<K: Hash + Eq, V> Default for ShardMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> FromIterator<(K, V)> for ShardMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let map = Self::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn basic_map_operations() {
        let map: ShardMap<String, u64> = ShardMap::with_shards(4);
        assert!(map.is_empty());
        assert_eq!(map.insert("a".into(), 1), None);
        assert_eq!(map.insert("a".into(), 2), Some(1));
        assert!(map.contains_key(&"a".into()));
        assert_eq!(map.get_cloned(&"a".into()), Some(2));
        assert_eq!(map.read(&"a".into(), |v| v.copied()), Some(2));
        map.update(&"a".into(), |v| *v.unwrap() += 10);
        assert_eq!(map.get_cloned(&"a".into()), Some(12));
        map.upsert("b".into(), || 0, |v| *v += 5);
        map.upsert("b".into(), || 0, |v| *v += 5);
        assert_eq!(map.get_cloned(&"b".into()), Some(10));
        assert_eq!(map.len(), 2);
        assert_eq!(map.fold(0u64, |acc, _, v| acc + v), 22);
        assert_eq!(map.remove(&"a".into()), Some(12));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn get_mut_bypasses_locks_with_exclusive_access() {
        let mut map: ShardMap<String, u64> = ShardMap::new();
        map.insert("a".into(), 1);
        *map.get_mut(&"a".into()).unwrap() = 9;
        assert_eq!(map.get_cloned(&"a".into()), Some(9));
        assert!(map.get_mut(&"missing".into()).is_none());
    }

    #[test]
    fn remove_if_gates_and_takes_atomically() {
        let map: ShardMap<String, u64> = ShardMap::new();
        map.insert("a".into(), 7);
        // Gate rejects: entry stays.
        assert_eq!(map.remove_if(&"a".into(), |_| Err("no")), Err("no"));
        assert_eq!(map.get_cloned(&"a".into()), Some(7));
        // Gate approves: entry taken.
        assert_eq!(map.remove_if::<()>(&"a".into(), |_| Ok(())), Ok(Some(7)));
        assert_eq!(map.remove_if::<()>(&"a".into(), |_| Ok(())), Ok(None));
    }

    #[test]
    fn remove_if_admits_exactly_one_racing_taker() {
        let map: ShardMap<u64, u64> = ShardMap::new();
        for k in 0..64 {
            map.insert(k, k);
        }
        let taken = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let map = &map;
                let taken = &taken;
                scope.spawn(move || {
                    for k in 0..64 {
                        if let Ok(Some(_)) = map.remove_if::<()>(&k, |_| Ok(())) {
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 64, "each entry taken once");
        assert!(map.is_empty());
    }

    #[test]
    fn per_key_updates_are_atomic_under_contention() {
        let map: ShardMap<u64, u64> = ShardMap::new();
        for k in 0..8 {
            map.insert(k, 0);
        }
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let map = &map;
                let total = &total;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        let key = (t + i) % 8;
                        map.update(&key, |v| *v.unwrap() += 1);
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        // Every one of the 8000 increments landed exactly once.
        assert_eq!(map.fold(0u64, |acc, _, v| acc + v), 8000);
        assert_eq!(total.load(Ordering::Relaxed), 8000);
    }
}
