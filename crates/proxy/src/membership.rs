//! Signed group-membership snapshots with round-trip-free asserts.
//!
//! The paper's group server (§3.3) answers "is P a member of G?" per
//! query — a round trip on every cascade verify that names a group. This
//! module lets the group server publish its membership as sealed,
//! epoch-numbered artifacts (the same snapshot/delta discipline as
//! [`crate::revocation`]), so an end-server holding a current mirror
//! answers membership *locally*, in O(1), with zero round trips.
//!
//! Members travel as 16-byte truncated SHA-256 digests of the principal
//! name under a domain-separation label: canonical, fixed-size, and a
//! million-member group fits in 16 MB of sorted digests rather than an
//! unbounded list of strings. Digest truncation is safe here because the
//! artifact seal — not the digest — carries integrity; a digest only
//! selects a set slot.
//!
//! Three-valued answers keep the fallback honest: [`MembershipAnswer`]
//! distinguishes *mirrored and present*, *mirrored and absent*, and *no
//! mirror* — only the last forces the caller back to a query round trip
//! (or a membership proxy, the paper's own mechanism). A bounded
//! [`NegativeCache`] remembers recent absent answers with a TTL so
//! repeated asserts against a missing principal short-circuit without
//! growing without bound.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use proxy_crypto::sha256::Sha256;

use crate::cert::CertSeal;
use crate::encode::{DecodeError, Decoder, Encoder};
use crate::key::{GrantAuthority, GrantorVerifier};
use crate::principal::{GroupName, PrincipalId};
use crate::revocation::{decode_seal, encode_seal, seal_body, verify_body_seal, ArtifactError};
use crate::time::Timestamp;

/// Domain-separation label for member digests.
const MEMBER_DIGEST_LABEL: &[u8] = b"proxy-aa member digest v1";

/// Domain-separation label sealed over by membership artifacts.
const ARTIFACT_LABEL: &[u8] = b"proxy-aa membership artifact v1";

/// Bytes of a truncated member digest.
pub const MEMBER_DIGEST_LEN: usize = 16;

/// Most digests accepted in one artifact list (adds or removes). At 16
/// bytes each this bounds a hostile allocation to 32 MB for a claimed
/// 2M-entry list that must actually be present in the input.
pub const MAX_MEMBER_DIGESTS: usize = 1 << 21;

/// Artifact kind tags on the wire.
const TAG_SNAPSHOT: u8 = 0;
const TAG_DELTA: u8 = 1;

/// A 16-byte truncated, domain-separated SHA-256 digest of a principal
/// name — the unit of membership in artifacts and mirrors.
pub type MemberDigest = [u8; MEMBER_DIGEST_LEN];

/// Digest of `principal` for membership purposes.
#[must_use]
pub fn member_digest(principal: &PrincipalId) -> MemberDigest {
    let mut h = Sha256::new();
    h.update(MEMBER_DIGEST_LABEL);
    h.update(principal.as_str().as_bytes());
    let full = h.finalize();
    let mut out = [0u8; MEMBER_DIGEST_LEN];
    for (o, b) in out.iter_mut().zip(full.iter()) {
        *o = *b;
    }
    out
}

/// Snapshot-or-delta semantics for a membership artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipKind {
    /// `adds` is the complete member set; `removes` must be empty.
    Snapshot,
    /// `adds`/`removes` transform the exact `base_epoch` state.
    Delta {
        /// The epoch this delta extends.
        base_epoch: u64,
    },
}

/// A sealed, epoch-numbered membership announcement for one group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipArtifact {
    /// The group this artifact describes; `group.server` is the only
    /// principal whose authority may seal it.
    pub group: GroupName,
    /// Monotone publication counter per group.
    pub epoch: u64,
    /// Snapshot or delta semantics.
    pub kind: MembershipKind,
    /// Members added (or, for snapshots, the full set), sorted ascending.
    pub adds: Vec<MemberDigest>,
    /// Members removed; empty for snapshots, sorted ascending.
    pub removes: Vec<MemberDigest>,
    /// Seal over [`MembershipArtifact::body_bytes`] by the group server.
    pub seal: CertSeal,
}

fn encode_digests(e: &mut Encoder, digests: &[MemberDigest]) {
    e.count(digests.len());
    for d in digests {
        e.raw(d);
    }
}

fn decode_digests(d: &mut Decoder<'_>) -> Result<Vec<MemberDigest>, DecodeError> {
    let n = d.counted(MEMBER_DIGEST_LEN)?;
    if n > MAX_MEMBER_DIGESTS {
        return Err(DecodeError::BadLength(n as u64));
    }
    let mut out = Vec::with_capacity(n);
    let mut prev: Option<MemberDigest> = None;
    for _ in 0..n {
        let digest: MemberDigest = d.raw_array::<MEMBER_DIGEST_LEN>()?;
        // Canonical form is strictly increasing: rejects duplicates and
        // unsorted lists, and makes the encoding unique per set.
        if prev.is_some_and(|p| p >= digest) {
            return Err(DecodeError::InvalidValue("member digests not increasing"));
        }
        prev = Some(digest);
        out.push(digest);
    }
    Ok(out)
}

impl MembershipArtifact {
    /// The canonical byte string the seal covers.
    #[must_use]
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(ARTIFACT_LABEL);
        e.str(self.group.server.as_str());
        e.str(&self.group.name);
        e.u64(self.epoch);
        match self.kind {
            MembershipKind::Snapshot => {
                e.u8(TAG_SNAPSHOT);
            }
            MembershipKind::Delta { base_epoch } => {
                e.u8(TAG_DELTA).u64(base_epoch);
            }
        }
        encode_digests(&mut e, &self.adds);
        encode_digests(&mut e, &self.removes);
        e.finish()
    }

    /// Builds and seals an artifact under the group server's
    /// `authority`. Digest lists are sorted and deduplicated into
    /// canonical form before sealing.
    #[must_use]
    pub fn seal(
        group: GroupName,
        epoch: u64,
        kind: MembershipKind,
        mut adds: Vec<MemberDigest>,
        mut removes: Vec<MemberDigest>,
        authority: &GrantAuthority,
    ) -> Self {
        adds.sort_unstable();
        adds.dedup();
        removes.sort_unstable();
        removes.dedup();
        let mut artifact = Self {
            group,
            epoch,
            kind,
            adds,
            removes,
            seal: CertSeal::Hmac([0u8; 32]),
        };
        artifact.seal = seal_body(authority, &artifact.body_bytes());
        artifact
    }

    /// Checks the seal against the group server's verification material;
    /// flavor mismatches fail closed.
    #[must_use]
    pub fn verify_seal(&self, verifier: &GrantorVerifier) -> bool {
        verify_body_seal(verifier, &self.body_bytes(), &self.seal)
    }

    /// Full wire encoding (body + seal).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_onto(&mut e);
        e.finish()
    }

    /// Appends the wire encoding to `e`.
    pub fn encode_onto(&self, e: &mut Encoder) {
        e.bytes(&self.body_bytes());
        encode_seal(e, &self.seal);
    }

    /// Decodes one artifact from a decoder stream. The result is
    /// *unverified*: its seal must still be checked.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input, including unsorted or
    /// duplicate digests and snapshots carrying removals.
    pub fn decode_from(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let body = crate::revocation::decode_artifact_body(d)?.to_vec();
        let seal = decode_seal(d)?;
        let mut b = Decoder::new(&body);
        if b.bytes()? != ARTIFACT_LABEL {
            return Err(DecodeError::InvalidValue("membership artifact label"));
        }
        let server = b.principal()?;
        let name = b.str()?.to_string();
        let epoch = b.u64()?;
        let kind = match b.u8()? {
            TAG_SNAPSHOT => MembershipKind::Snapshot,
            TAG_DELTA => MembershipKind::Delta {
                base_epoch: b.u64()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        if let MembershipKind::Delta { base_epoch } = kind {
            // Same wire-boundary consistency rule as revocation deltas.
            if epoch <= base_epoch {
                return Err(DecodeError::InvalidValue("delta epoch not after its base"));
            }
        }
        let adds = decode_digests(&mut b)?;
        let removes = decode_digests(&mut b)?;
        if kind == MembershipKind::Snapshot && !removes.is_empty() {
            return Err(DecodeError::InvalidValue("snapshot with removals"));
        }
        b.finish()?;
        Ok(Self {
            group: GroupName::new(server, name),
            epoch,
            kind,
            adds,
            removes,
            seal,
        })
    }

    /// Decodes [`MembershipArtifact::encode`] output, rejecting trailing
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input.
    pub fn decode(input: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(input);
        let artifact = Self::decode_from(&mut d)?;
        d.finish()?;
        Ok(artifact)
    }
}

/// What a local membership mirror can say about an assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipAnswer {
    /// Mirrored and present — grant the group claim.
    Member,
    /// Mirrored and absent — deny the group claim without a round trip.
    NotMember,
    /// No mirror for this group: the caller must fall back to a group
    /// server query or a membership proxy (never assume membership).
    Unknown,
}

/// A bounded TTL cache of recent *absent* answers, modeled on the
/// replay cache: fixed capacity, fail-closed eviction (dropping an entry
/// only costs a re-check, never grants membership).
#[derive(Debug)]
pub struct NegativeCache {
    capacity: usize,
    ttl_ticks: u64,
    entries: Mutex<HashMap<(GroupName, MemberDigest), Timestamp>>,
}

impl NegativeCache {
    /// A cache holding at most `capacity` absent-member entries for
    /// `ttl_ticks` logical ticks each.
    #[must_use]
    pub fn new(capacity: usize, ttl_ticks: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            ttl_ticks,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Records an absent answer observed at `now`.
    pub fn record(&self, group: &GroupName, digest: MemberDigest, now: Timestamp) {
        if let Ok(mut map) = self.entries.lock() {
            if map.len() >= self.capacity {
                // Bounded: drop expired entries first, then arbitrary
                // ones. Losing a negative entry is always safe.
                let ttl = self.ttl_ticks;
                map.retain(|_, &mut at| now.0.saturating_sub(at.0) < ttl);
                while map.len() >= self.capacity {
                    let victim = map.keys().next().cloned();
                    match victim {
                        Some(k) => map.remove(&k),
                        None => break,
                    };
                }
            }
            map.insert((group.clone(), digest), now);
        }
    }

    /// True when an unexpired absent answer is cached. A poisoned cache
    /// answers `false` (forcing a real check — fail closed for liveness,
    /// never for access).
    #[must_use]
    pub fn contains(&self, group: &GroupName, digest: &MemberDigest, now: Timestamp) -> bool {
        self.entries.lock().is_ok_and(|map| {
            map.get(&(group.clone(), *digest))
                .is_some_and(|at| now.0.saturating_sub(at.0) < self.ttl_ticks)
        })
    }

    /// Drops every entry (e.g. after a mirror update changes answers).
    pub fn clear(&self) {
        if let Ok(mut map) = self.entries.lock() {
            map.clear();
        }
    }

    /// Entries currently cached (expired ones included until touched).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().map_or(0, |m| m.len())
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-group mirrored state.
#[derive(Clone, Debug)]
struct GroupMirror {
    epoch: u64,
    members: Arc<HashSet<MemberDigest>>,
}

/// The receiver side: per-group membership mirrors consulted on the
/// authorization hot path. `assert` takes one shard read-lock just long
/// enough to clone an `Arc`; applying artifacts builds the successor set
/// off-lock and swaps it in.
#[derive(Debug)]
pub struct MembershipDirectory {
    mirrors: crate::shard::ShardMap<GroupName, GroupMirror>,
    negatives: NegativeCache,
}

/// Default negative-cache capacity.
pub const DEFAULT_NEGATIVE_CAPACITY: usize = 4096;

/// Default negative-cache TTL in logical ticks.
pub const DEFAULT_NEGATIVE_TTL_TICKS: u64 = 60;

impl Default for MembershipDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl MembershipDirectory {
    /// An empty directory with the default negative cache.
    #[must_use]
    pub fn new() -> Self {
        Self::with_negative_cache(DEFAULT_NEGATIVE_CAPACITY, DEFAULT_NEGATIVE_TTL_TICKS)
    }

    /// An empty directory with a negative cache of `capacity` entries
    /// and `ttl_ticks` tick lifetime.
    #[must_use]
    pub fn with_negative_cache(capacity: usize, ttl_ticks: u64) -> Self {
        Self {
            mirrors: crate::shard::ShardMap::new(),
            negatives: NegativeCache::new(capacity, ttl_ticks),
        }
    }

    /// The mirrored epoch for `group` (0 when no artifact has applied).
    #[must_use]
    pub fn epoch_of(&self, group: &GroupName) -> u64 {
        self.mirrors.read(group, |m| m.map_or(0, |m| m.epoch))
    }

    /// Mirrored member count for `group`, when a mirror exists.
    #[must_use]
    pub fn member_count(&self, group: &GroupName) -> Option<usize> {
        self.mirrors.read(group, |m| m.map(|m| m.members.len()))
    }

    /// Answers a membership assert from local state only — no round
    /// trips. `now` drives the negative-cache TTL.
    #[must_use]
    pub fn assert(
        &self,
        group: &GroupName,
        principal: &PrincipalId,
        now: Timestamp,
    ) -> MembershipAnswer {
        let digest = member_digest(principal);
        if self.negatives.contains(group, &digest, now) {
            return MembershipAnswer::NotMember;
        }
        // The roster probe runs inside the shard read closure: shared
        // lock, one point lookup, no refcount traffic on the hot path.
        let mirrored = self
            .mirrors
            .read(group, |m| m.map(|m| m.members.contains(&digest)));
        match mirrored {
            Some(true) => MembershipAnswer::Member,
            Some(false) => {
                self.negatives.record(group, digest, now);
                MembershipAnswer::NotMember
            }
            None => MembershipAnswer::Unknown,
        }
    }

    /// Applies a *seal-verified* artifact. Snapshots must advance the
    /// epoch (or establish a first mirror); deltas must extend the exact
    /// current epoch. Rejections leave the last good state enforced. On
    /// success the negative cache is cleared (answers may have changed).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::EpochRegression`] / [`ArtifactError::BaseMismatch`].
    pub fn apply_verified(&self, artifact: &MembershipArtifact) -> Result<(), ArtifactError> {
        let group = artifact.group.clone();
        let outcome = match artifact.kind {
            MembershipKind::Snapshot => {
                let fresh: Arc<HashSet<MemberDigest>> =
                    Arc::new(artifact.adds.iter().copied().collect());
                self.mirrors.upsert(
                    group,
                    || GroupMirror {
                        epoch: 0,
                        members: Arc::new(HashSet::new()),
                    },
                    |m| {
                        if artifact.epoch < m.epoch
                            || (artifact.epoch == m.epoch && artifact.epoch != 0)
                        {
                            return Err(ArtifactError::EpochRegression {
                                current: m.epoch,
                                offered: artifact.epoch,
                            });
                        }
                        m.epoch = artifact.epoch;
                        m.members = fresh;
                        Ok(())
                    },
                )
            }
            MembershipKind::Delta { base_epoch } => {
                if artifact.epoch <= base_epoch {
                    return Err(ArtifactError::EpochRegression {
                        current: base_epoch,
                        offered: artifact.epoch,
                    });
                }
                let current = self
                    .mirrors
                    .read(&group, |m| m.map(|m| (m.epoch, m.members.clone())));
                let (cur_epoch, cur_members) = match current {
                    Some(pair) => pair,
                    None => (0, Arc::new(HashSet::new())),
                };
                if cur_epoch != base_epoch {
                    return Err(ArtifactError::BaseMismatch {
                        current: cur_epoch,
                        base: base_epoch,
                    });
                }
                // Build the successor set off the shard lock.
                let mut next = (*cur_members).clone();
                for d in &artifact.adds {
                    next.insert(*d);
                }
                for d in &artifact.removes {
                    next.remove(d);
                }
                let next = Arc::new(next);
                self.mirrors.upsert(
                    group,
                    || GroupMirror {
                        epoch: 0,
                        members: Arc::new(HashSet::new()),
                    },
                    |m| {
                        if m.epoch != base_epoch {
                            return Err(ArtifactError::BaseMismatch {
                                current: m.epoch,
                                base: base_epoch,
                            });
                        }
                        m.epoch = artifact.epoch;
                        m.members = next;
                        Ok(())
                    },
                )
            }
        };
        if outcome.is_ok() {
            self.negatives.clear();
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxy_crypto::keys::SymmetricKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn g(name: &str) -> GroupName {
        GroupName::new(p("groups"), name)
    }

    fn auth_pair() -> (GrantAuthority, GrantorVerifier) {
        let mut rng = StdRng::seed_from_u64(7);
        let k = SymmetricKey::generate(&mut rng);
        (
            GrantAuthority::SharedKey(k.clone()),
            GrantorVerifier::SharedKey(k),
        )
    }

    #[test]
    fn digests_are_stable_and_distinct() {
        assert_eq!(member_digest(&p("alice")), member_digest(&p("alice")));
        assert_ne!(member_digest(&p("alice")), member_digest(&p("bob")));
    }

    #[test]
    fn artifact_round_trip_and_seal() {
        let (authority, verifier) = auth_pair();
        let adds = vec![member_digest(&p("alice")), member_digest(&p("bob"))];
        let artifact = MembershipArtifact::seal(
            g("staff"),
            1,
            MembershipKind::Snapshot,
            adds,
            Vec::new(),
            &authority,
        );
        assert!(artifact.verify_seal(&verifier));
        let back = MembershipArtifact::decode(&artifact.encode()).unwrap();
        assert_eq!(back, artifact);
        assert!(back.verify_seal(&verifier));
    }

    #[test]
    fn decode_rejects_unsorted_digests_and_snapshot_removals() {
        let (authority, _) = auth_pair();
        let mut artifact = MembershipArtifact::seal(
            g("staff"),
            1,
            MembershipKind::Snapshot,
            vec![[2u8; 16], [1u8; 16]],
            Vec::new(),
            &authority,
        );
        // seal() canonicalized; forge an unsorted body by hand.
        artifact.adds = vec![[2u8; 16], [1u8; 16]];
        assert!(MembershipArtifact::decode(&artifact.encode()).is_err());
        // Snapshot with removals is malformed.
        let mut bad = MembershipArtifact::seal(
            g("staff"),
            1,
            MembershipKind::Delta { base_epoch: 0 },
            vec![[1u8; 16]],
            vec![[3u8; 16]],
            &authority,
        );
        bad.kind = MembershipKind::Snapshot;
        assert!(MembershipArtifact::decode(&bad.encode()).is_err());
    }

    #[test]
    fn directory_asserts_member_notmember_unknown() {
        let (authority, _) = auth_pair();
        let dir = MembershipDirectory::new();
        let now = Timestamp(1000);
        assert_eq!(
            dir.assert(&g("staff"), &p("alice"), now),
            MembershipAnswer::Unknown,
            "no mirror yet: must fall back, never assume"
        );
        let snap = MembershipArtifact::seal(
            g("staff"),
            1,
            MembershipKind::Snapshot,
            vec![member_digest(&p("alice"))],
            Vec::new(),
            &authority,
        );
        dir.apply_verified(&snap).unwrap();
        assert_eq!(
            dir.assert(&g("staff"), &p("alice"), now),
            MembershipAnswer::Member
        );
        assert_eq!(
            dir.assert(&g("staff"), &p("bob"), now),
            MembershipAnswer::NotMember
        );
        assert!(!dir.negatives.is_empty(), "absent answer cached");
        // Other groups are still unmirrored.
        assert_eq!(
            dir.assert(&g("faculty"), &p("alice"), now),
            MembershipAnswer::Unknown
        );
    }

    #[test]
    fn deltas_add_and_remove_members() {
        let (authority, _) = auth_pair();
        let dir = MembershipDirectory::new();
        let now = Timestamp(5);
        let snap = MembershipArtifact::seal(
            g("staff"),
            1,
            MembershipKind::Snapshot,
            vec![member_digest(&p("alice")), member_digest(&p("bob"))],
            Vec::new(),
            &authority,
        );
        dir.apply_verified(&snap).unwrap();
        let delta = MembershipArtifact::seal(
            g("staff"),
            2,
            MembershipKind::Delta { base_epoch: 1 },
            vec![member_digest(&p("carol"))],
            vec![member_digest(&p("bob"))],
            &authority,
        );
        dir.apply_verified(&delta).unwrap();
        assert_eq!(
            dir.assert(&g("staff"), &p("carol"), now),
            MembershipAnswer::Member
        );
        assert_eq!(
            dir.assert(&g("staff"), &p("bob"), now),
            MembershipAnswer::NotMember
        );
        assert_eq!(dir.member_count(&g("staff")), Some(2));
        // Epoch rollback and wrong-base deltas rejected, state kept.
        let rollback = MembershipArtifact::seal(
            g("staff"),
            1,
            MembershipKind::Snapshot,
            Vec::new(),
            Vec::new(),
            &authority,
        );
        assert!(matches!(
            dir.apply_verified(&rollback),
            Err(ArtifactError::EpochRegression { .. })
        ));
        let wrong_base = MembershipArtifact::seal(
            g("staff"),
            9,
            MembershipKind::Delta { base_epoch: 7 },
            vec![member_digest(&p("mallory"))],
            Vec::new(),
            &authority,
        );
        assert!(matches!(
            dir.apply_verified(&wrong_base),
            Err(ArtifactError::BaseMismatch { .. })
        ));
        assert_eq!(
            dir.assert(&g("staff"), &p("mallory"), now),
            MembershipAnswer::NotMember
        );
    }

    #[test]
    fn negative_cache_expires_and_stays_bounded() {
        let cache = NegativeCache::new(2, 10);
        let d1 = member_digest(&p("a"));
        let d2 = member_digest(&p("b"));
        let d3 = member_digest(&p("c"));
        let t0 = Timestamp(100);
        cache.record(&g("x"), d1, t0);
        assert!(cache.contains(&g("x"), &d1, t0));
        assert!(!cache.contains(&g("x"), &d1, Timestamp(111)), "expired");
        cache.record(&g("x"), d2, t0);
        cache.record(&g("x"), d3, t0);
        assert!(cache.len() <= 2, "capacity bound holds");
    }

    #[test]
    fn mirror_update_clears_negative_cache() {
        let (authority, _) = auth_pair();
        let dir = MembershipDirectory::new();
        let now = Timestamp(50);
        let snap = MembershipArtifact::seal(
            g("staff"),
            1,
            MembershipKind::Snapshot,
            Vec::new(),
            Vec::new(),
            &authority,
        );
        dir.apply_verified(&snap).unwrap();
        assert_eq!(
            dir.assert(&g("staff"), &p("dave"), now),
            MembershipAnswer::NotMember
        );
        let delta = MembershipArtifact::seal(
            g("staff"),
            2,
            MembershipKind::Delta { base_epoch: 1 },
            vec![member_digest(&p("dave"))],
            Vec::new(),
            &authority,
        );
        dir.apply_verified(&delta).unwrap();
        assert_eq!(
            dir.assert(&g("staff"), &p("dave"), now),
            MembershipAnswer::Member,
            "stale negative answer must not outlive the update"
        );
    }
}
