//! Secure transfer of a proxy (certificates + proxy key) to a grantee.
//!
//! §2: "When a restricted proxy is transferred from the grantor to the
//! grantee, care must be taken to protect the proxy key from disclosure."
//! This module packages a [`Proxy`] for the wire, sealing the secret proxy
//! key under a key shared with the grantee (e.g. the session key from the
//! grantor–grantee authentication exchange, or Fig. 3's
//! `{K_proxy}K_session`).

use rand::RngCore;

use proxy_crypto::keys::SymmetricKey;
use proxy_crypto::seal::{self, SealError};

use crate::cert::Certificate;
use crate::encode::{DecodeError, Decoder, Encoder};
use crate::key::ProxyKey;
use crate::proxy::Proxy;

const TRANSFER_AAD: &[u8] = b"proxy-aa proxy transfer v1";

/// Errors unpacking a transferred proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// The wire structure was malformed.
    Decode(DecodeError),
    /// The sealed proxy key failed to open (wrong transfer key or
    /// tampering).
    Seal(SealError),
    /// The transfer carried no certificates.
    Empty,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Decode(e) => write!(f, "malformed proxy transfer: {e}"),
            TransferError::Seal(e) => write!(f, "proxy key unsealing failed: {e}"),
            TransferError::Empty => write!(f, "proxy transfer carries no certificates"),
        }
    }
}

impl std::error::Error for TransferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransferError::Decode(e) => Some(e),
            TransferError::Seal(e) => Some(e),
            TransferError::Empty => None,
        }
    }
}

impl From<DecodeError> for TransferError {
    fn from(e: DecodeError) -> Self {
        TransferError::Decode(e)
    }
}

impl From<SealError> for TransferError {
    fn from(e: SealError) -> Self {
        TransferError::Seal(e)
    }
}

impl Proxy {
    /// Packages the proxy for transfer to a grantee: certificates in the
    /// clear (they are protected by their seals), proxy key sealed under
    /// `transfer_key`.
    pub fn seal_for_transfer<R: RngCore>(
        &self,
        transfer_key: &SymmetricKey,
        rng: &mut R,
    ) -> Vec<u8> {
        let mut e = Encoder::new();
        e.count(self.certs.len());
        for cert in &self.certs {
            e.bytes(&cert.encode());
        }
        let key_plain = match &self.key {
            ProxyKey::Symmetric(k) => {
                let mut p = vec![0u8];
                p.extend_from_slice(k.as_bytes());
                p
            }
            // Private Ed25519 scalars never travel: a public-key proxy is
            // handed off by deriving a fresh key pair for the grantee
            // instead (`Proxy::derive`). The flavor marker alone is
            // encoded so the receiver gets a clear error.
            ProxyKey::Ed25519(_) => vec![1u8],
        };
        e.bytes(&seal::seal(transfer_key, TRANSFER_AAD, &key_plain, rng));
        e.finish()
    }

    /// Unpacks a transferred proxy using the shared `transfer_key`.
    ///
    /// # Errors
    ///
    /// [`TransferError`] on malformed input, seal failure, or an empty
    /// chain. Ed25519-flavored transfers are rejected with
    /// [`TransferError::Decode`] — public-key proxies hand off by
    /// *deriving* a fresh key pair for the grantee instead (see
    /// [`Proxy::derive`]), which avoids moving private scalars at all.
    pub fn unseal_transfer(
        bytes: &[u8],
        transfer_key: &SymmetricKey,
    ) -> Result<Proxy, TransferError> {
        let mut d = Decoder::new(bytes);
        let n = d.count()?;
        if n == 0 {
            return Err(TransferError::Empty);
        }
        let mut certs = Vec::with_capacity(n);
        for _ in 0..n {
            certs.push(Certificate::decode(d.bytes()?)?);
        }
        let sealed = d.bytes()?.to_vec();
        d.finish()?;
        let plain = seal::open(transfer_key, TRANSFER_AAD, &sealed)?;
        match plain.split_first() {
            Some((0, key_bytes)) => {
                let key = SymmetricKey::try_from_slice(key_bytes)
                    .map_err(|_| TransferError::Decode(DecodeError::UnexpectedEnd))?;
                Ok(Proxy {
                    certs,
                    key: ProxyKey::Symmetric(key),
                })
            }
            Some((1, _)) => Err(TransferError::Decode(DecodeError::BadTag(1))),
            _ => Err(TransferError::Decode(DecodeError::UnexpectedEnd)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::GrantAuthority;
    use crate::principal::PrincipalId;
    use crate::proxy::grant;
    use crate::restriction::RestrictionSet;
    use crate::time::{Timestamp, Validity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(rng: &mut StdRng) -> (Proxy, SymmetricKey) {
        let shared = SymmetricKey::generate(rng);
        let proxy = grant(
            &PrincipalId::new("alice"),
            &GrantAuthority::SharedKey(shared.clone()),
            RestrictionSet::new(),
            Validity::new(Timestamp(0), Timestamp(100)),
            1,
            rng,
        );
        (proxy, shared)
    }

    #[test]
    fn transfer_round_trips_and_grantee_can_present() {
        let mut rng = StdRng::seed_from_u64(1);
        let (proxy, shared) = sample(&mut rng);
        let grantor_grantee_key = SymmetricKey::generate(&mut rng);
        let wire = proxy.seal_for_transfer(&grantor_grantee_key, &mut rng);
        let received = Proxy::unseal_transfer(&wire, &grantor_grantee_key).unwrap();
        assert_eq!(received.certs, proxy.certs);
        // The grantee can answer challenges with the recovered key.
        use crate::key::{GrantorVerifier, MapResolver};
        use crate::verify::Verifier;
        let verifier = Verifier::new(
            PrincipalId::new("fs"),
            MapResolver::new().with(
                PrincipalId::new("alice"),
                GrantorVerifier::SharedKey(shared),
            ),
        );
        let pres = received.present_bearer([9u8; 32], &PrincipalId::new("fs"));
        let ctx = crate::context::RequestContext::new(
            PrincipalId::new("fs"),
            crate::restriction::Operation::new("read"),
            crate::restriction::ObjectName::new("x"),
        )
        .at(Timestamp(5));
        let mut guard = crate::replay::MemoryReplayGuard::new();
        assert!(verifier.verify(&pres, &ctx, &mut guard).is_ok());
    }

    #[test]
    fn eavesdropper_cannot_extract_the_key() {
        let mut rng = StdRng::seed_from_u64(2);
        let (proxy, _shared) = sample(&mut rng);
        let transfer_key = SymmetricKey::generate(&mut rng);
        let wire = proxy.seal_for_transfer(&transfer_key, &mut rng);
        let ProxyKey::Symmetric(k) = &proxy.key else {
            unreachable!()
        };
        assert!(
            !wire.windows(32).any(|w| w == k.as_bytes()),
            "raw proxy key on the transfer wire"
        );
        // Without the transfer key, unsealing fails.
        let other = SymmetricKey::generate(&mut rng);
        assert!(matches!(
            Proxy::unseal_transfer(&wire, &other),
            Err(TransferError::Seal(_))
        ));
    }

    #[test]
    fn tampered_transfer_never_yields_a_usable_proxy() {
        // Certificates travel in the clear (their seals protect them), so
        // a flip there may decode — but the result must never verify.
        use crate::key::{GrantorVerifier, MapResolver};
        use crate::verify::Verifier;
        let mut rng = StdRng::seed_from_u64(3);
        let (proxy, shared) = sample(&mut rng);
        let transfer_key = SymmetricKey::generate(&mut rng);
        let wire = proxy.seal_for_transfer(&transfer_key, &mut rng);
        let verifier = Verifier::new(
            PrincipalId::new("fs"),
            MapResolver::new().with(
                PrincipalId::new("alice"),
                GrantorVerifier::SharedKey(shared),
            ),
        );
        let ctx = crate::context::RequestContext::new(
            PrincipalId::new("fs"),
            crate::restriction::Operation::new("read"),
            crate::restriction::ObjectName::new("x"),
        )
        .at(Timestamp(5));
        for i in (0..wire.len()).step_by(3) {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            let Ok(received) = Proxy::unseal_transfer(&bad, &transfer_key) else {
                continue;
            };
            if received.certs == proxy.certs {
                continue; // flip landed in sealing randomness? impossible, but safe
            }
            let pres = received.present_bearer([1u8; 32], &PrincipalId::new("fs"));
            let mut guard = crate::replay::MemoryReplayGuard::new();
            assert!(
                verifier.verify(&pres, &ctx, &mut guard).is_err(),
                "byte {i}: tampered transfer produced a verifiable proxy"
            );
        }
    }

    #[test]
    fn ed25519_transfer_is_refused() {
        // Public-key proxies hand off via derive(), never by moving the
        // private scalar.
        let mut rng = StdRng::seed_from_u64(4);
        let proxy = grant(
            &PrincipalId::new("alice"),
            &GrantAuthority::Keypair(proxy_crypto::ed25519::SigningKey::generate(&mut rng)),
            RestrictionSet::new(),
            Validity::new(Timestamp(0), Timestamp(100)),
            1,
            &mut rng,
        );
        let transfer_key = SymmetricKey::generate(&mut rng);
        let wire = proxy.seal_for_transfer(&transfer_key, &mut rng);
        assert!(Proxy::unseal_transfer(&wire, &transfer_key).is_err());
    }
}
