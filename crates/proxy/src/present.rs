//! Presenting a proxy to an end-server (§2).
//!
//! *Bearer* presentation: send the certificate chain and prove possession
//! of the proxy key by answering a server challenge — the full proxy never
//! crosses the wire, so "an attacker can not obtain such a capability by
//! tapping the network" (§3.1).
//!
//! *Delegate* presentation: send the chain and authenticate under one's own
//! identity; the end-server checks the authenticated identity against the
//! `grantee` restriction.

use proxy_crypto::sha256::Sha256;

use crate::cert::Certificate;
use crate::encode::{DecodeError, Decoder, Encoder};
use crate::principal::PrincipalId;
use crate::proxy::Proxy;

/// How the presenter ties itself to the presented chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Proof {
    /// Bearer proof: a response over the server's challenge computed with
    /// the final proxy key.
    Possession {
        /// The server-issued challenge being answered.
        challenge: [u8; 32],
        /// MAC or signature over the possession message.
        response: Vec<u8>,
    },
    /// Delegate proof: the presenter authenticated under its own identity
    /// through the authentication substrate; the verifier receives those
    /// identities via the request context.
    Identity,
}

/// A proxy presentation as it crosses the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Presentation {
    /// The certificate chain (head first). Note: no proxy key here — the
    /// key never leaves the grantee.
    pub certs: Vec<Certificate>,
    /// The accompanying proof.
    pub proof: Proof,
}

/// The context-binding bytes covered by a possession proof: the server's
/// name plus a digest of the final certificate, so a response is useless at
/// any other server or for any other proxy.
#[must_use]
pub fn presentation_binding(server: &PrincipalId, final_cert: &Certificate) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(server.as_str().as_bytes());
    out.push(0);
    out.extend_from_slice(&Sha256::digest(&final_cert.body_bytes()));
    out
}

impl Proxy {
    /// Builds a bearer presentation answering `challenge` for `server`.
    #[must_use]
    pub fn present_bearer(&self, challenge: [u8; 32], server: &PrincipalId) -> Presentation {
        let binding = presentation_binding(server, self.final_cert());
        let response = self.key.prove_possession(&challenge, &binding);
        Presentation {
            certs: self.certs.clone(),
            proof: Proof::Possession {
                challenge,
                response,
            },
        }
    }

    /// Builds a delegate presentation (certificates only; the presenter
    /// authenticates separately under its own identity).
    #[must_use]
    pub fn present_delegate(&self) -> Presentation {
        Presentation {
            certs: self.certs.clone(),
            proof: Proof::Identity,
        }
    }
}

impl Presentation {
    /// Appends the wire encoding to `e`, encoding each certificate in
    /// place (no per-certificate temporaries).
    pub fn encode_onto(&self, e: &mut Encoder) {
        e.count(self.certs.len());
        for cert in &self.certs {
            e.nested(|e| cert.encode_onto(e));
        }
        match &self.proof {
            Proof::Possession {
                challenge,
                response,
            } => {
                e.u8(0).raw(challenge).bytes(response);
            }
            Proof::Identity => {
                e.u8(1);
            }
        }
    }

    /// Wire encoding.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e =
            Encoder::with_capacity(self.certs.len() * Certificate::ENCODE_CAPACITY_HINT + 64);
        self.encode_onto(&mut e);
        e.finish()
    }

    /// Decodes a wire presentation.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn decode(input: &[u8]) -> Result<Presentation, DecodeError> {
        let mut d = Decoder::new(input);
        let n = d.counted(4)?;
        let mut certs = Vec::with_capacity(n);
        for _ in 0..n {
            certs.push(Certificate::decode(d.bytes()?)?);
        }
        let proof = match d.u8()? {
            0 => {
                let challenge: [u8; 32] = d
                    .raw(32)?
                    .try_into()
                    .map_err(|_| DecodeError::UnexpectedEnd)?;
                let response = d.bytes()?.to_vec();
                Proof::Possession {
                    challenge,
                    response,
                }
            }
            1 => Proof::Identity,
            t => return Err(DecodeError::BadTag(t)),
        };
        d.finish()?;
        Ok(Presentation { certs, proof })
    }

    /// Total wire size in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::GrantAuthority;
    use crate::proxy::grant;
    use crate::restriction::RestrictionSet;
    use crate::time::{Timestamp, Validity};
    use proxy_crypto::keys::SymmetricKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_proxy(rng: &mut StdRng) -> Proxy {
        let auth = GrantAuthority::SharedKey(SymmetricKey::generate(rng));
        grant(
            &PrincipalId::new("alice"),
            &auth,
            RestrictionSet::new(),
            Validity::new(Timestamp(0), Timestamp(100)),
            1,
            rng,
        )
    }

    #[test]
    fn bearer_presentation_round_trips_on_wire() {
        let mut rng = StdRng::seed_from_u64(1);
        let proxy = sample_proxy(&mut rng);
        let pres = proxy.present_bearer([5u8; 32], &PrincipalId::new("fs"));
        let decoded = Presentation::decode(&pres.encode()).unwrap();
        assert_eq!(decoded, pres);
    }

    #[test]
    fn delegate_presentation_round_trips_on_wire() {
        let mut rng = StdRng::seed_from_u64(2);
        let proxy = sample_proxy(&mut rng);
        let pres = proxy.present_delegate();
        assert_eq!(pres.proof, Proof::Identity);
        let decoded = Presentation::decode(&pres.encode()).unwrap();
        assert_eq!(decoded, pres);
    }

    #[test]
    fn presentation_never_contains_proxy_key() {
        // The symmetric proxy key must not appear in the wire bytes: it is
        // sealed (encrypted) inside the certificate.
        let mut rng = StdRng::seed_from_u64(3);
        let proxy = sample_proxy(&mut rng);
        let crate::key::ProxyKey::Symmetric(k) = &proxy.key else {
            unreachable!()
        };
        let wire = proxy
            .present_bearer([0u8; 32], &PrincipalId::new("fs"))
            .encode();
        let key_bytes = k.as_bytes();
        assert!(
            !wire.windows(key_bytes.len()).any(|w| w == key_bytes),
            "raw proxy key leaked into presentation"
        );
    }

    #[test]
    fn binding_differs_per_server_and_per_cert() {
        let mut rng = StdRng::seed_from_u64(4);
        let proxy = sample_proxy(&mut rng);
        let b1 = presentation_binding(&PrincipalId::new("s1"), proxy.final_cert());
        let b2 = presentation_binding(&PrincipalId::new("s2"), proxy.final_cert());
        assert_ne!(b1, b2);
        let other = sample_proxy(&mut rng);
        let b3 = presentation_binding(&PrincipalId::new("s1"), other.final_cert());
        assert_ne!(b1, b3);
    }

    #[test]
    fn decode_rejects_bad_proof_tag() {
        let mut rng = StdRng::seed_from_u64(5);
        let proxy = sample_proxy(&mut rng);
        let mut bytes = proxy.present_delegate().encode();
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert!(Presentation::decode(&bytes).is_err());
    }
}
