//! # restricted-proxy
//!
//! The restricted-proxy model of B. Clifford Neuman, *Proxy-Based
//! Authorization and Accounting for Distributed Systems* (ICDCS 1993).
//!
//! A **proxy** is a token that lets one principal operate with the rights
//! of another. A **restricted proxy** (Fig. 1 of the paper) is a
//! certificate, sealed by its grantor, that carries:
//!
//! * a set of typed, *additive* [`restriction`]s (§7) — conditions that can
//!   be added but never removed, and
//! * proxy-key material — a key whose possession the grantee proves when
//!   exercising the proxy, so the certificate alone (observable on the
//!   wire) is useless to an eavesdropper.
//!
//! Two kinds of proxies exist (§2): **bearer** proxies, exercised by
//! proving possession of the proxy key, and **delegate** proxies, which
//! carry a `grantee` restriction and are exercised by authenticating as a
//! named delegate. Chains of certificates implement **cascaded
//! authorization** (Fig. 4) verified entirely offline by the end-server.
//!
//! Both cryptosystems of §6 are supported through one API: conventional
//! (HMAC under keys shared via the authentication substrate — the
//! Kerberos-style deployment of §6.2) and public-key (Ed25519 — §6.1).
//!
//! ## Quick start
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use restricted_proxy::prelude::*;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! // Conventional world: alice shares a session key with the file server.
//! let session = proxy_crypto::keys::SymmetricKey::generate(&mut rng);
//! let alice = PrincipalId::new("alice");
//! let fs = PrincipalId::new("fileserver");
//!
//! // Alice grants a read-only capability for one file.
//! let proxy = grant(
//!     &alice,
//!     &GrantAuthority::SharedKey(session.clone()),
//!     RestrictionSet::new().with(Restriction::authorize_op(
//!         ObjectName::new("/doc/report"),
//!         Operation::new("read"),
//!     )),
//!     Validity::new(Timestamp(0), Timestamp(1000)),
//!     1,
//!     &mut rng,
//! );
//!
//! // The file server verifies a presentation of it.
//! let resolver = MapResolver::new().with(alice.clone(), GrantorVerifier::SharedKey(session));
//! let verifier = Verifier::new(fs.clone(), resolver);
//! let presentation = proxy.present_bearer([42u8; 32], &fs);
//! let ctx = RequestContext::new(fs, Operation::new("read"), ObjectName::new("/doc/report"));
//! let mut replay = MemoryReplayGuard::new();
//! let verified = verifier.verify(&presentation, &ctx, &mut replay)?;
//! assert_eq!(verified.grantor, alice);
//! # Ok::<(), restricted_proxy::error::VerifyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod cert;
pub mod context;
pub mod encode;
pub mod error;
pub mod key;
pub mod membership;
pub mod nameserver;
pub mod present;
pub mod principal;
pub mod proxy;
pub mod replay;
pub mod restriction;
pub mod revocation;
pub mod shard;
pub mod time;
pub mod transfer;
pub mod verify;

/// Convenient glob import of the commonly-used types.
pub mod prelude {
    pub use crate::batcher::{BatcherStats, SealBatcher, SealCheck};
    pub use crate::cache::VerifiedCertCache;
    pub use crate::cert::{CertSeal, Certificate, SigningAuthorityKind};
    pub use crate::context::RequestContext;
    pub use crate::error::{GrantError, VerifyError};
    pub use crate::key::{
        GrantAuthority, GrantorVerifier, KeyMaterial, KeyResolver, MapResolver, ProxyKey,
    };
    pub use crate::membership::{
        member_digest, MemberDigest, MembershipAnswer, MembershipArtifact, MembershipDirectory,
        MembershipKind,
    };
    pub use crate::nameserver::{CertifiedResolver, KeyBinding, NameServer};
    pub use crate::present::{Presentation, Proof};
    pub use crate::principal::{GroupName, PrincipalId};
    pub use crate::proxy::{delegate_cascade, grant, Proxy};
    pub use crate::replay::{MemoryReplayGuard, RejectAcceptOnce, ReplayCache, ReplayGuard};
    pub use crate::restriction::{
        AuthorizedEntry, Currency, Denial, ObjectName, Operation, Restriction, RestrictionSet,
    };
    pub use crate::revocation::{
        ArtifactError, ArtifactKind, RevocationArtifact, RevocationDirectory, RevocationRegistry,
        SerialSet,
    };
    pub use crate::shard::ShardMap;
    pub use crate::time::{Timestamp, Validity};
    pub use crate::verify::{VerifiedProxy, Verifier};
}
