//! The typed restriction vocabulary of §7 and its additive algebra.
//!
//! A restriction never grants anything: it only *removes* authority from a
//! proxy (§6.2: "restrictions must be additive. Each subfield places
//! additional restrictions on the use of credentials, never removing
//! restrictions or granting additional privileges"). Accordingly
//! [`RestrictionSet`] supports union but deliberately exposes no removal
//! operation, and evaluation requires *every* restriction to pass.

use crate::context::RequestContext;
use crate::encode::{DecodeError, Decoder, Encoder};
use crate::principal::{GroupName, PrincipalId};
use crate::replay::ReplayGuard;
use crate::time::Timestamp;

/// A currency for quotas and accounting: monetary (`"USD"`) or
/// resource-specific (`"disk-blocks"`, `"printer-pages"`) per §4.
///
/// Backed by `Arc<str>` so clones on the accounting hot path are
/// allocation-free (see [`PrincipalId`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Currency(std::sync::Arc<str>);

impl Currency {
    /// Creates a currency label.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(!name.is_empty(), "currency name must be non-empty");
        Self(name.into())
    }

    /// Creates a currency label, returning `None` when empty (the
    /// fallible path for decoding untrusted bytes).
    #[must_use]
    pub fn try_new(name: impl AsRef<str>) -> Option<Self> {
        let name = name.as_ref();
        (!name.is_empty()).then(|| Self(name.into()))
    }

    /// The label as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Currency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// An operation name, interpreted by the end-server (§7.5: "There are no
/// constraints on the form … other than that the grantor and the
/// end-server must agree").
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Operation(std::sync::Arc<str>);

impl Operation {
    /// Creates an operation name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(name.as_ref().into())
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Operation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// An object name, interpreted by the end-server.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectName(std::sync::Arc<str>);

impl ObjectName {
    /// Creates an object name.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(name.as_ref().into())
    }

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ObjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One `authorized` entry: an object plus the operations allowed on it
/// (`None` = any operation on that object).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AuthorizedEntry {
    /// The object the proxy's rights extend to.
    pub object: ObjectName,
    /// Permitted operations; `None` allows all operations on the object.
    pub operations: Option<Vec<Operation>>,
}

impl AuthorizedEntry {
    /// Entry allowing any operation on `object`.
    #[must_use]
    pub fn any_op(object: ObjectName) -> Self {
        Self {
            object,
            operations: None,
        }
    }

    /// Entry allowing only `operations` on `object`.
    #[must_use]
    pub fn ops(object: ObjectName, operations: Vec<Operation>) -> Self {
        Self {
            object,
            operations: Some(operations),
        }
    }

    fn permits(&self, object: &ObjectName, op: &Operation) -> bool {
        self.object == *object && self.operations.as_ref().is_none_or(|ops| ops.contains(op))
    }
}

/// A single typed restriction (§7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Restriction {
    /// §7.1 — the proxy may be exercised only with the credentials of (at
    /// least `required` of) the named delegates. Its presence makes the
    /// proxy a *delegate* proxy; its absence makes a *bearer* proxy.
    Grantee {
        /// Principals authorized to exercise the proxy.
        delegates: Vec<PrincipalId>,
        /// How many of them must concur (usually 1).
        required: u32,
    },
    /// §7.2 — usable only by members of (at least `required` of) the named
    /// groups, proven by accompanying group proxies.
    ForUseByGroup {
        /// Groups whose members may use the proxy.
        groups: Vec<GroupName>,
        /// How many group memberships must be proven.
        required: u32,
    },
    /// §7.3 — only the named end-servers may accept the proxy. Important
    /// for public-key proxies, which are otherwise verifiable everywhere.
    IssuedFor {
        /// Servers authorized to accept the proxy.
        servers: Vec<PrincipalId>,
    },
    /// §7.4 — limits the quantity of a resource that may be consumed.
    Quota {
        /// The limited currency.
        currency: Currency,
        /// Maximum quantity.
        limit: u64,
    },
    /// §7.5 — the complete list of objects (and optionally operations)
    /// accessible with the proxy; the restriction behind capabilities.
    Authorized {
        /// Accessible objects and their permitted operations.
        entries: Vec<AuthorizedEntry>,
    },
    /// §7.6 — the grantee is a member of *only* the listed groups; issued
    /// by group servers to scope membership assertions.
    GroupMembership {
        /// The only groups this proxy can assert membership of.
        groups: Vec<GroupName>,
    },
    /// §7.7 — the end-server must accept the proxy at most once per
    /// identifier within the validity window (e.g. a check number).
    AcceptOnce {
        /// Identifier deduplicating acceptance (a check number).
        id: u64,
    },
    /// §7.8 — restrictions that apply only at the named servers and are
    /// ignored elsewhere.
    LimitRestriction {
        /// Servers where the embedded restrictions are enforced.
        servers: Vec<PrincipalId>,
        /// The scoped restrictions.
        restrictions: Vec<Restriction>,
    },
}

/// Why a request was denied by restriction evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Denial {
    /// Too few of the named delegates were authenticated.
    GranteeNotPresent {
        /// How many delegates were required.
        required: u32,
        /// How many were actually authenticated.
        present: u32,
    },
    /// Too few of the required group memberships were proven.
    GroupRequirementNotMet {
        /// How many memberships were required.
        required: u32,
        /// How many were proven.
        present: u32,
    },
    /// The proxy was presented at a server it was not issued for.
    ServerNotAuthorized {
        /// The server that received the proxy.
        server: PrincipalId,
    },
    /// The request would exceed a quota.
    QuotaExceeded {
        /// The limited currency.
        currency: Currency,
        /// The quota limit.
        limit: u64,
        /// The amount requested.
        requested: u64,
    },
    /// The requested object/operation is outside the authorized list.
    NotAuthorized {
        /// Requested object.
        object: ObjectName,
        /// Requested operation.
        operation: Operation,
    },
    /// A group assertion was outside the proxy's `group-membership` list.
    GroupAssertionNotAllowed {
        /// The disallowed group.
        group: GroupName,
    },
    /// An `accept-once` identifier was replayed.
    AlreadyAccepted {
        /// The replayed identifier.
        id: u64,
    },
}

impl std::fmt::Display for Denial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Denial::GranteeNotPresent { required, present } => write!(
                f,
                "grantee restriction unmet: {present} of required {required} delegates authenticated"
            ),
            Denial::GroupRequirementNotMet { required, present } => write!(
                f,
                "for-use-by-group restriction unmet: {present} of required {required} groups proven"
            ),
            Denial::ServerNotAuthorized { server } => {
                write!(f, "proxy not issued for server {server}")
            }
            Denial::QuotaExceeded { currency, limit, requested } => {
                write!(f, "quota exceeded: requested {requested} {currency}, limit {limit}")
            }
            Denial::NotAuthorized { object, operation } => {
                write!(f, "operation {operation} on {object} not authorized")
            }
            Denial::GroupAssertionNotAllowed { group } => {
                write!(f, "proxy cannot assert membership in {group}")
            }
            Denial::AlreadyAccepted { id } => {
                write!(f, "accept-once identifier {id} already used")
            }
        }
    }
}

impl std::error::Error for Denial {}

impl Restriction {
    /// Convenience constructor: a single-delegate `grantee` restriction.
    #[must_use]
    pub fn grantee_one(delegate: PrincipalId) -> Restriction {
        Restriction::Grantee {
            delegates: vec![delegate],
            required: 1,
        }
    }

    /// Convenience constructor: `issued-for` a single server.
    #[must_use]
    pub fn issued_for_one(server: PrincipalId) -> Restriction {
        Restriction::IssuedFor {
            servers: vec![server],
        }
    }

    /// Convenience constructor: a single-object, single-operation
    /// `authorized` restriction (the classic read-capability).
    #[must_use]
    pub fn authorize_op(object: ObjectName, op: Operation) -> Restriction {
        Restriction::Authorized {
            entries: vec![AuthorizedEntry::ops(object, vec![op])],
        }
    }

    /// Evaluates this restriction against a request.
    ///
    /// `grantor` is the principal that signed the certificate carrying this
    /// restriction (group assertions are scoped to the grantor's groups);
    /// `expires` bounds how long the replay guard must remember
    /// `accept-once` identifiers.
    ///
    /// # Errors
    ///
    /// Returns the specific [`Denial`] when the request violates this
    /// restriction.
    pub fn evaluate(
        &self,
        ctx: &RequestContext,
        grantor: &PrincipalId,
        expires: Timestamp,
        replay: &mut dyn ReplayGuard,
    ) -> Result<(), Denial> {
        match self {
            Restriction::Grantee {
                delegates,
                required,
            } => {
                let present = delegates
                    .iter()
                    .filter(|d| ctx.authenticated.contains(d))
                    .count() as u32;
                if present >= *required {
                    Ok(())
                } else {
                    Err(Denial::GranteeNotPresent {
                        required: *required,
                        present,
                    })
                }
            }
            Restriction::ForUseByGroup { groups, required } => {
                let present = groups
                    .iter()
                    .filter(|g| ctx.asserted_groups.contains(g))
                    .count() as u32;
                if present >= *required {
                    Ok(())
                } else {
                    Err(Denial::GroupRequirementNotMet {
                        required: *required,
                        present,
                    })
                }
            }
            Restriction::IssuedFor { servers } => {
                if servers.contains(&ctx.server) {
                    Ok(())
                } else {
                    Err(Denial::ServerNotAuthorized {
                        server: ctx.server.clone(),
                    })
                }
            }
            Restriction::Quota { currency, limit } => {
                for (c, amount) in &ctx.amounts {
                    if c == currency && amount > limit {
                        return Err(Denial::QuotaExceeded {
                            currency: currency.clone(),
                            limit: *limit,
                            requested: *amount,
                        });
                    }
                }
                Ok(())
            }
            Restriction::Authorized { entries } => {
                if entries
                    .iter()
                    .any(|e| e.permits(&ctx.object, &ctx.operation))
                {
                    Ok(())
                } else {
                    Err(Denial::NotAuthorized {
                        object: ctx.object.clone(),
                        operation: ctx.operation.clone(),
                    })
                }
            }
            Restriction::GroupMembership { groups } => {
                // Assertions of the grantor's own groups must be listed.
                for g in &ctx.asserted_groups {
                    if g.server == *grantor && !groups.contains(g) {
                        return Err(Denial::GroupAssertionNotAllowed { group: g.clone() });
                    }
                }
                Ok(())
            }
            Restriction::AcceptOnce { id } => {
                if replay.accept_once(grantor, *id, ctx.now, expires) {
                    Ok(())
                } else {
                    Err(Denial::AlreadyAccepted { id: *id })
                }
            }
            Restriction::LimitRestriction {
                servers,
                restrictions,
            } => {
                if servers.contains(&ctx.server) {
                    for r in restrictions {
                        r.evaluate(ctx, grantor, expires, replay)?;
                    }
                }
                Ok(())
            }
        }
    }

    fn encode_into(&self, e: &mut Encoder) {
        match self {
            Restriction::Grantee {
                delegates,
                required,
            } => {
                e.u8(1).u32(*required).count(delegates.len());
                for d in delegates {
                    e.str(d.as_str());
                }
            }
            Restriction::ForUseByGroup { groups, required } => {
                e.u8(2).u32(*required).count(groups.len());
                for g in groups {
                    e.str(g.server.as_str()).str(&g.name);
                }
            }
            Restriction::IssuedFor { servers } => {
                e.u8(3).count(servers.len());
                for s in servers {
                    e.str(s.as_str());
                }
            }
            Restriction::Quota { currency, limit } => {
                e.u8(4).str(currency.as_str()).u64(*limit);
            }
            Restriction::Authorized { entries } => {
                e.u8(5).count(entries.len());
                for entry in entries {
                    e.str(entry.object.as_str());
                    match &entry.operations {
                        None => {
                            e.u8(0);
                        }
                        Some(ops) => {
                            e.u8(1).count(ops.len());
                            for op in ops {
                                e.str(op.as_str());
                            }
                        }
                    }
                }
            }
            Restriction::GroupMembership { groups } => {
                e.u8(6).count(groups.len());
                for g in groups {
                    e.str(g.server.as_str()).str(&g.name);
                }
            }
            Restriction::AcceptOnce { id } => {
                e.u8(7).u64(*id);
            }
            Restriction::LimitRestriction {
                servers,
                restrictions,
            } => {
                e.u8(8).count(servers.len());
                for s in servers {
                    e.str(s.as_str());
                }
                e.count(restrictions.len());
                for r in restrictions {
                    r.encode_into(e);
                }
            }
        }
    }

    fn decode_from(d: &mut Decoder<'_>) -> Result<Restriction, DecodeError> {
        let tag = d.u8()?;
        Ok(match tag {
            1 => {
                let required = d.u32()?;
                let n = d.counted(4)?;
                let mut delegates = Vec::with_capacity(n);
                for _ in 0..n {
                    delegates.push(d.principal()?);
                }
                Restriction::Grantee {
                    delegates,
                    required,
                }
            }
            2 => {
                let required = d.u32()?;
                let n = d.counted(8)?;
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    let server = d.principal()?;
                    let name = d.str()?.to_string();
                    groups.push(GroupName { server, name });
                }
                Restriction::ForUseByGroup { groups, required }
            }
            3 => {
                let n = d.counted(4)?;
                let mut servers = Vec::with_capacity(n);
                for _ in 0..n {
                    servers.push(d.principal()?);
                }
                Restriction::IssuedFor { servers }
            }
            4 => Restriction::Quota {
                currency: Currency::try_new(d.str()?)
                    .ok_or(DecodeError::InvalidValue("empty currency"))?,
                limit: d.u64()?,
            },
            5 => {
                let n = d.counted(5)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let object = ObjectName::new(d.str()?);
                    let operations = match d.u8()? {
                        0 => None,
                        1 => {
                            let m = d.counted(4)?;
                            let mut ops = Vec::with_capacity(m);
                            for _ in 0..m {
                                ops.push(Operation::new(d.str()?));
                            }
                            Some(ops)
                        }
                        t => return Err(DecodeError::BadTag(t)),
                    };
                    entries.push(AuthorizedEntry { object, operations });
                }
                Restriction::Authorized { entries }
            }
            6 => {
                let n = d.counted(8)?;
                let mut groups = Vec::with_capacity(n);
                for _ in 0..n {
                    let server = d.principal()?;
                    let name = d.str()?.to_string();
                    groups.push(GroupName { server, name });
                }
                Restriction::GroupMembership { groups }
            }
            7 => Restriction::AcceptOnce { id: d.u64()? },
            8 => {
                let n = d.counted(4)?;
                let mut servers = Vec::with_capacity(n);
                for _ in 0..n {
                    servers.push(d.principal()?);
                }
                // The nested restriction list recurses; the decoder's
                // depth guard bounds how far hostile input can push the
                // stack.
                d.descend()?;
                let m = d.counted(1)?;
                let mut restrictions = Vec::with_capacity(m);
                for _ in 0..m {
                    restrictions.push(Restriction::decode_from(d)?);
                }
                d.ascend();
                Restriction::LimitRestriction {
                    servers,
                    restrictions,
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

/// An additive collection of restrictions.
///
/// The set supports union (adding restrictions) but intentionally provides
/// no way to remove a restriction once present — the type-level embodiment
/// of §2's "it is not possible to remove restrictions".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestrictionSet(Vec<Restriction>);

impl RestrictionSet {
    /// The empty (unrestricted) set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set with room for `n` restrictions — lets hot paths that
    /// assemble a set of known size pay exactly one allocation instead of
    /// a growth sequence.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self(Vec::with_capacity(n))
    }

    /// Builds a set from restrictions, dropping exact duplicates.
    #[must_use]
    pub fn from_vec(restrictions: Vec<Restriction>) -> Self {
        let mut set = Self::new();
        for r in restrictions {
            set.push(r);
        }
        set
    }

    /// Adds one restriction (no-op if an identical one is present).
    pub fn push(&mut self, restriction: Restriction) {
        if !self.0.contains(&restriction) {
            self.0.push(restriction);
        }
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with(mut self, restriction: Restriction) -> Self {
        self.push(restriction);
        self
    }

    /// Returns the additive union of two sets. The result denies anything
    /// either input denies.
    #[must_use]
    pub fn union(&self, other: &RestrictionSet) -> RestrictionSet {
        let mut out = self.clone();
        for r in &other.0 {
            out.push(r.clone());
        }
        out
    }

    /// Number of restrictions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when unrestricted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates the restrictions.
    pub fn iter(&self) -> std::slice::Iter<'_, Restriction> {
        self.0.iter()
    }

    /// True when a `grantee` restriction is present — i.e. the proxy is a
    /// *delegate* proxy (§7.1).
    #[must_use]
    pub fn has_grantee(&self) -> bool {
        self.0
            .iter()
            .any(|r| matches!(r, Restriction::Grantee { .. }))
    }

    /// The delegates named by `grantee` restrictions, if any.
    #[must_use]
    pub fn delegates(&self) -> Vec<&PrincipalId> {
        self.0
            .iter()
            .filter_map(|r| match r {
                Restriction::Grantee { delegates, .. } => Some(delegates.iter()),
                // Enumerated (not `_`) so a new Restriction variant forces
                // an explicit decision here (§7.9): only `grantee` names
                // delegates today.
                Restriction::ForUseByGroup { .. }
                | Restriction::IssuedFor { .. }
                | Restriction::Quota { .. }
                | Restriction::Authorized { .. }
                | Restriction::GroupMembership { .. }
                | Restriction::AcceptOnce { .. }
                | Restriction::LimitRestriction { .. } => None,
            })
            .flatten()
            .collect()
    }

    /// Evaluates every restriction; all must pass.
    ///
    /// # Errors
    ///
    /// Returns the first [`Denial`] encountered.
    pub fn evaluate(
        &self,
        ctx: &RequestContext,
        grantor: &PrincipalId,
        expires: Timestamp,
        replay: &mut dyn ReplayGuard,
    ) -> Result<(), Denial> {
        for r in &self.0 {
            r.evaluate(ctx, grantor, expires, replay)?;
        }
        Ok(())
    }

    /// §7.9 propagation: the restrictions to copy into a proxy that will be
    /// issued based on this one and usable only at `target_servers`.
    ///
    /// All unscoped restrictions propagate. A `limit-restriction` may be
    /// dropped only when it is guaranteed never to reach its servers —
    /// i.e. when its server list is disjoint from every target. With an
    /// unknown target (`None`), everything propagates.
    #[must_use]
    pub fn propagate(&self, target_servers: Option<&[PrincipalId]>) -> RestrictionSet {
        let Some(targets) = target_servers else {
            return self.clone();
        };
        let kept = self
            .0
            .iter()
            .filter(|r| match r {
                Restriction::LimitRestriction { servers, .. } => {
                    servers.iter().any(|s| targets.contains(s))
                }
                // Every unscoped restriction propagates (§7.9: restrictions
                // are additive and never silently shed). Enumerated (not
                // `_`) so a new variant forces a propagation decision.
                Restriction::Grantee { .. }
                | Restriction::ForUseByGroup { .. }
                | Restriction::IssuedFor { .. }
                | Restriction::Quota { .. }
                | Restriction::Authorized { .. }
                | Restriction::GroupMembership { .. }
                | Restriction::AcceptOnce { .. } => true,
            })
            .cloned()
            .collect();
        RestrictionSet(kept)
    }

    /// Canonical encoding (embedded in certificate bodies).
    pub fn encode_into(&self, e: &mut Encoder) {
        e.count(self.0.len());
        for r in &self.0 {
            r.encode_into(e);
        }
    }

    /// Decodes a set encoded by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Propagates [`DecodeError`] from the codec.
    pub fn decode_from(d: &mut Decoder<'_>) -> Result<RestrictionSet, DecodeError> {
        let n = d.counted(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(Restriction::decode_from(d)?);
        }
        Ok(RestrictionSet(out))
    }
}

impl FromIterator<Restriction> for RestrictionSet {
    fn from_iter<T: IntoIterator<Item = Restriction>>(iter: T) -> Self {
        Self::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a RestrictionSet {
    type Item = &'a Restriction;
    type IntoIter = std::slice::Iter<'a, Restriction>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for RestrictionSet {
    type Item = Restriction;
    type IntoIter = std::vec::IntoIter<Restriction>;
    /// Consumes the set, yielding its restrictions by value — lets callers
    /// that fold one set into another move the elements instead of cloning.
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RequestContext;
    use crate::replay::MemoryReplayGuard;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn base_ctx() -> RequestContext {
        RequestContext::new(
            p("fileserver"),
            Operation::new("read"),
            ObjectName::new("/etc/motd"),
        )
    }

    fn eval(r: &Restriction, ctx: &RequestContext) -> Result<(), Denial> {
        let mut guard = MemoryReplayGuard::new();
        r.evaluate(ctx, &p("grantor"), Timestamp(100), &mut guard)
    }

    #[test]
    fn grantee_requires_authenticated_delegate() {
        let r = Restriction::grantee_one(p("bob"));
        let mut ctx = base_ctx();
        assert_eq!(
            eval(&r, &ctx),
            Err(Denial::GranteeNotPresent {
                required: 1,
                present: 0
            })
        );
        ctx.authenticated.push(p("bob"));
        assert_eq!(eval(&r, &ctx), Ok(()));
    }

    #[test]
    fn grantee_multi_party_concurrence() {
        // Separation of privilege: two of three named delegates required.
        let r = Restriction::Grantee {
            delegates: vec![p("alice"), p("bob"), p("carol")],
            required: 2,
        };
        let mut ctx = base_ctx();
        ctx.authenticated.push(p("alice"));
        assert!(matches!(
            eval(&r, &ctx),
            Err(Denial::GranteeNotPresent { .. })
        ));
        ctx.authenticated.push(p("carol"));
        assert_eq!(eval(&r, &ctx), Ok(()));
    }

    #[test]
    fn issued_for_checks_server() {
        let r = Restriction::issued_for_one(p("fileserver"));
        assert_eq!(eval(&r, &base_ctx()), Ok(()));
        let mut ctx = base_ctx();
        ctx.server = p("mailserver");
        assert_eq!(
            eval(&r, &ctx),
            Err(Denial::ServerNotAuthorized {
                server: p("mailserver")
            })
        );
    }

    #[test]
    fn quota_limits_only_its_currency() {
        let r = Restriction::Quota {
            currency: Currency::new("pages"),
            limit: 10,
        };
        let mut ctx = base_ctx();
        ctx.amounts.push((Currency::new("pages"), 10));
        assert_eq!(eval(&r, &ctx), Ok(()));
        ctx.amounts[0].1 = 11;
        assert!(matches!(eval(&r, &ctx), Err(Denial::QuotaExceeded { .. })));
        // A different currency is untouched by this quota.
        ctx.amounts[0] = (Currency::new("bytes"), 1_000_000);
        assert_eq!(eval(&r, &ctx), Ok(()));
    }

    #[test]
    fn authorized_matches_object_and_operation() {
        let r = Restriction::authorize_op(ObjectName::new("/etc/motd"), Operation::new("read"));
        assert_eq!(eval(&r, &base_ctx()), Ok(()));
        let mut ctx = base_ctx();
        ctx.operation = Operation::new("write");
        assert!(matches!(eval(&r, &ctx), Err(Denial::NotAuthorized { .. })));
        let mut ctx = base_ctx();
        ctx.object = ObjectName::new("/etc/passwd");
        assert!(matches!(eval(&r, &ctx), Err(Denial::NotAuthorized { .. })));
    }

    #[test]
    fn authorized_any_op_entry() {
        let r = Restriction::Authorized {
            entries: vec![AuthorizedEntry::any_op(ObjectName::new("/etc/motd"))],
        };
        let mut ctx = base_ctx();
        ctx.operation = Operation::new("delete");
        assert_eq!(eval(&r, &ctx), Ok(()));
    }

    #[test]
    fn for_use_by_group_counts_assertions() {
        let g1 = GroupName::new(p("gs"), "staff");
        let g2 = GroupName::new(p("gs"), "admins");
        let r = Restriction::ForUseByGroup {
            groups: vec![g1.clone(), g2.clone()],
            required: 2,
        };
        let mut ctx = base_ctx();
        ctx.asserted_groups.push(g1);
        assert!(matches!(
            eval(&r, &ctx),
            Err(Denial::GroupRequirementNotMet { .. })
        ));
        ctx.asserted_groups.push(g2);
        assert_eq!(eval(&r, &ctx), Ok(()));
    }

    #[test]
    fn group_membership_scopes_assertions_to_grantor() {
        let listed = GroupName::new(p("grantor"), "staff");
        let unlisted = GroupName::new(p("grantor"), "admins");
        let foreign = GroupName::new(p("other-gs"), "admins");
        let r = Restriction::GroupMembership {
            groups: vec![listed.clone()],
        };
        let mut ctx = base_ctx();
        ctx.asserted_groups.push(listed);
        assert_eq!(eval(&r, &ctx), Ok(()));
        // Assertions about *other* group servers are not this proxy's business.
        ctx.asserted_groups.push(foreign);
        assert_eq!(eval(&r, &ctx), Ok(()));
        ctx.asserted_groups.push(unlisted.clone());
        assert_eq!(
            eval(&r, &ctx),
            Err(Denial::GroupAssertionNotAllowed { group: unlisted })
        );
    }

    #[test]
    fn accept_once_rejects_replay() {
        let r = Restriction::AcceptOnce { id: 42 };
        let ctx = base_ctx();
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            r.evaluate(&ctx, &p("grantor"), Timestamp(100), &mut guard),
            Ok(())
        );
        assert_eq!(
            r.evaluate(&ctx, &p("grantor"), Timestamp(100), &mut guard),
            Err(Denial::AlreadyAccepted { id: 42 })
        );
        // Same id from a *different* grantor is fresh (§7.7: "from the same
        // grantor bearing the same identifier").
        assert_eq!(
            r.evaluate(&ctx, &p("other"), Timestamp(100), &mut guard),
            Ok(())
        );
    }

    #[test]
    fn limit_restriction_applies_only_at_named_servers() {
        let inner = Restriction::authorize_op(ObjectName::new("x"), Operation::new("op"));
        let r = Restriction::LimitRestriction {
            servers: vec![p("fileserver")],
            restrictions: vec![inner],
        };
        // At fileserver the inner restriction bites (ctx asks for /etc/motd read).
        assert!(matches!(
            eval(&r, &base_ctx()),
            Err(Denial::NotAuthorized { .. })
        ));
        // At another server it is ignored.
        let mut ctx = base_ctx();
        ctx.server = p("mailserver");
        assert_eq!(eval(&r, &ctx), Ok(()));
    }

    #[test]
    fn union_is_additive_and_dedups() {
        let a = RestrictionSet::new().with(Restriction::issued_for_one(p("s1")));
        let b = RestrictionSet::new()
            .with(Restriction::issued_for_one(p("s1")))
            .with(Restriction::AcceptOnce { id: 1 });
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        // Union never removes: every restriction of both inputs is present.
        for r in a.iter().chain(b.iter()) {
            assert!(u.iter().any(|x| x == r));
        }
    }

    #[test]
    fn union_of_quotas_is_most_restrictive() {
        let a = RestrictionSet::new().with(Restriction::Quota {
            currency: Currency::new("pages"),
            limit: 100,
        });
        let b = RestrictionSet::new().with(Restriction::Quota {
            currency: Currency::new("pages"),
            limit: 10,
        });
        let u = a.union(&b);
        let mut ctx = base_ctx();
        ctx.amounts.push((Currency::new("pages"), 50));
        let mut guard = MemoryReplayGuard::new();
        // 50 ≤ 100 but > 10: the union must deny.
        assert!(matches!(
            u.evaluate(&ctx, &p("g"), Timestamp(10), &mut guard),
            Err(Denial::QuotaExceeded { limit: 10, .. })
        ));
    }

    #[test]
    fn propagate_drops_unreachable_limit_restrictions() {
        let scoped_to_print = Restriction::LimitRestriction {
            servers: vec![p("printserver")],
            restrictions: vec![Restriction::AcceptOnce { id: 9 }],
        };
        let global = Restriction::issued_for_one(p("authz"));
        let set = RestrictionSet::new()
            .with(scoped_to_print.clone())
            .with(global.clone());
        // Issuing a proxy usable only at the mailserver: the print-scoped
        // restriction can be dropped, the global one cannot.
        let out = set.propagate(Some(&[p("mailserver")]));
        assert_eq!(out.len(), 1);
        assert!(out.iter().any(|r| *r == global));
        // Target includes printserver: everything propagates.
        let out = set.propagate(Some(&[p("printserver"), p("mailserver")]));
        assert_eq!(out.len(), 2);
        // Unknown target: everything propagates.
        assert_eq!(set.propagate(None).len(), 2);
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        let set = RestrictionSet::from_vec(vec![
            Restriction::Grantee {
                delegates: vec![p("a"), p("b")],
                required: 2,
            },
            Restriction::ForUseByGroup {
                groups: vec![GroupName::new(p("gs"), "staff")],
                required: 1,
            },
            Restriction::IssuedFor {
                servers: vec![p("s1"), p("s2")],
            },
            Restriction::Quota {
                currency: Currency::new("USD"),
                limit: 999,
            },
            Restriction::Authorized {
                entries: vec![
                    AuthorizedEntry::any_op(ObjectName::new("obj1")),
                    AuthorizedEntry::ops(
                        ObjectName::new("obj2"),
                        vec![Operation::new("read"), Operation::new("write")],
                    ),
                ],
            },
            Restriction::GroupMembership {
                groups: vec![GroupName::new(p("gs"), "g")],
            },
            Restriction::AcceptOnce { id: 77 },
            Restriction::LimitRestriction {
                servers: vec![p("s3")],
                restrictions: vec![Restriction::AcceptOnce { id: 5 }],
            },
        ]);
        let mut e = Encoder::new();
        set.encode_into(&mut e);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let decoded = RestrictionSet::decode_from(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(decoded, set);
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut e = Encoder::new();
        e.count(1).u8(99);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(
            RestrictionSet::decode_from(&mut d),
            Err(DecodeError::BadTag(99))
        );
    }

    #[test]
    fn unknown_restriction_nested_in_limit_restriction_is_rejected() {
        // §7.9: a verifier must never skip a restriction it does not
        // understand. The decode layer enforces this structurally —
        // including for restrictions smuggled *inside* a
        // limit-restriction's nested list, which is the spot a lazy
        // decoder would be most tempted to skip over.
        let mut e = Encoder::new();
        e.count(1); // one restriction in the set
        e.u8(8).count(1); // limit-restriction, one server
        e.str("s");
        e.count(1); // one nested restriction ...
        e.u8(99); // ... with an unknown tag
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(
            RestrictionSet::decode_from(&mut d),
            Err(DecodeError::BadTag(99))
        );
    }

    #[test]
    fn deeply_nested_limit_restriction_rejected_not_overflowed() {
        // 64 levels of limit-restriction nesting — well past the decoder's
        // depth bound; the encoder will happily produce it, the decoder
        // must refuse it instead of recursing toward stack exhaustion.
        let mut r = Restriction::AcceptOnce { id: 1 };
        for _ in 0..64 {
            r = Restriction::LimitRestriction {
                servers: vec![p("s")],
                restrictions: vec![r],
            };
        }
        let set = RestrictionSet::from_vec(vec![r]);
        let mut e = Encoder::new();
        set.encode_into(&mut e);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(
            RestrictionSet::decode_from(&mut d),
            Err(DecodeError::TooDeep(crate::encode::MAX_DECODE_DEPTH))
        );
    }

    #[test]
    fn restriction_count_bounded_by_input_size() {
        // A count prefix claiming 2^20 restrictions with 4 bytes behind it
        // must fail before any allocation proportional to the count.
        let mut e = Encoder::new();
        e.count(1 << 20).u32(0);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(
            RestrictionSet::decode_from(&mut d),
            Err(DecodeError::BadLength(1 << 20))
        );
    }

    #[test]
    fn has_grantee_classifies_proxy_kind() {
        assert!(!RestrictionSet::new().has_grantee()); // bearer
        let delegate = RestrictionSet::new().with(Restriction::grantee_one(p("x")));
        assert!(delegate.has_grantee());
        assert_eq!(delegate.delegates(), vec![&p("x")]);
    }

    #[test]
    fn empty_set_allows_everything() {
        let set = RestrictionSet::new();
        let mut guard = MemoryReplayGuard::new();
        assert_eq!(
            set.evaluate(&base_ctx(), &p("g"), Timestamp(1), &mut guard),
            Ok(())
        );
    }
}
