//! Logical timestamps.
//!
//! Every certificate carries an expiration time (§3.1: "as implemented on
//! most authentication systems, the resulting capability would have an
//! expiration time. This is a feature."). The workspace runs on the
//! deterministic `netsim` clock, so time is a plain logical tick count.

use std::fmt;

/// A logical instant (tick count on the simulation clock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The epoch (tick zero).
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable instant, used for "effectively
    /// non-expiring" proxies (§3.1: "If a nonexpiring capability is
    /// desired, the expiration time can be set sufficiently far in the
    /// future").
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Returns this instant advanced by `ticks`.
    #[must_use]
    pub fn plus(self, ticks: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(ticks))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A half-open validity interval `[from, until)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Validity {
    /// First instant at which the credential is valid.
    pub from: Timestamp,
    /// First instant at which the credential is no longer valid.
    pub until: Timestamp,
}

impl Validity {
    /// Creates a validity window.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until` (an empty window is a construction bug).
    #[must_use]
    pub fn new(from: Timestamp, until: Timestamp) -> Self {
        assert!(from < until, "validity window must be non-empty");
        Self { from, until }
    }

    /// Window starting now and lasting `ticks`.
    #[must_use]
    pub fn starting_at(from: Timestamp, ticks: u64) -> Self {
        Self::new(from, from.plus(ticks))
    }

    /// True when `now` falls inside the window.
    #[must_use]
    pub fn contains(&self, now: Timestamp) -> bool {
        self.from <= now && now < self.until
    }

    /// Intersection of two windows — used when cascading proxies, since a
    /// derived proxy can never outlive its parent.
    #[must_use]
    pub fn intersect(&self, other: &Validity) -> Option<Validity> {
        let from = self.from.max(other.from);
        let until = self.until.min(other.until);
        (from < until).then_some(Validity { from, until })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let v = Validity::new(Timestamp(10), Timestamp(20));
        assert!(!v.contains(Timestamp(9)));
        assert!(v.contains(Timestamp(10)));
        assert!(v.contains(Timestamp(19)));
        assert!(!v.contains(Timestamp(20)));
    }

    #[test]
    fn intersect_narrows() {
        let a = Validity::new(Timestamp(0), Timestamp(100));
        let b = Validity::new(Timestamp(50), Timestamp(200));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Validity::new(Timestamp(50), Timestamp(100)));
    }

    #[test]
    fn disjoint_windows_do_not_intersect() {
        let a = Validity::new(Timestamp(0), Timestamp(10));
        let b = Validity::new(Timestamp(10), Timestamp(20));
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        let _ = Validity::new(Timestamp(5), Timestamp(5));
    }

    #[test]
    fn plus_saturates() {
        assert_eq!(Timestamp::MAX.plus(1), Timestamp::MAX);
        assert_eq!(Timestamp(5).plus(10), Timestamp(15));
    }
}
