//! Compressed revocation index and signed, diffable distribution.
//!
//! The paper handles revocation implicitly — proxies expire (§3.1) and a
//! grantor can be stripped from the ACL — which forces short lifetimes or
//! stale decisions at scale. This module adds *explicit* revocation by
//! serial number, answered locally in O(1) by every end-server:
//!
//! * [`SerialSet`] — a roaring-style compressed set of revoked `u64`
//!   serials: the high 48 bits pick a chunk, the low 16 bits live in an
//!   array, run, or bitmap container, whichever encodes smallest. A
//!   million sequential serials occupy 16 bitmap chunks (~128 KiB) and a
//!   `contains` check is one hash probe plus one container probe,
//!   independent of set size.
//! * [`RevocationArtifact`] — an epoch-numbered snapshot or delta of an
//!   issuer's revoked set, sealed under the issuer's [`GrantAuthority`]
//!   exactly like a certificate (HMAC in the conventional flavor,
//!   Ed25519 in the public-key flavor). Deltas apply only against their
//!   exact base epoch; anything else is rejected fail-closed and the
//!   receiver keeps enforcing its last good epoch.
//! * [`RevocationRegistry`] — the issuer side: accumulate revocations,
//!   publish sealed deltas (kept in a bounded replay log so lagging
//!   receivers can catch up) or snapshots.
//! * [`RevocationDirectory`] — the receiver side: per-issuer epoch +
//!   `Arc<SerialSet>` behind a lock that the verify hot path only ever
//!   *reads* to clone the `Arc`; applying an update builds the new set
//!   off-lock and swaps it in, so delta application never blocks
//!   verification.
//!
//! Decoding is part of the hostile-input surface (artifacts arrive over
//! the wire), so every path here is panic-free and fail-closed: typed
//! errors only, structural invariants (sorted arrays, non-overlapping
//! runs, strictly increasing chunk keys) enforced before a byte is
//! trusted, and allocation bounded by the input that justifies it.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use proxy_crypto::ed25519::{Signature, SIGNATURE_LEN};
use proxy_crypto::hmac::HmacSha256;

use crate::cert::CertSeal;
use crate::encode::{DecodeError, Decoder, Encoder};
use crate::key::{GrantAuthority, GrantorVerifier};
use crate::principal::PrincipalId;

/// Domain-separation label sealed over by revocation artifacts.
const ARTIFACT_LABEL: &[u8] = b"proxy-aa revocation artifact v1";

/// Most values an array container may hold *on the wire* (the crossover
/// where 2 bytes/entry exceeds the fixed 8 KiB bitmap).
const ARRAY_MAX: usize = 4096;

/// In *memory*, an array container promotes to a bitmap past this
/// cardinality — well below [`ARRAY_MAX`]. A bitmap probe is one
/// branch-free bit test, while a binary search over a dense array is a
/// chain of data-dependent branches whose mispredictions serialize the
/// pipeline and defeat memory-level parallelism on large sets. The wire
/// format is unaffected: encoding always picks the smallest container
/// for the cardinality, whatever the in-memory representation. The
/// representation is a pure function of cardinality (containers only
/// ever grow), so structural equality stays content-deterministic.
const DENSE_PROBE_MIN: usize = 256;

/// Words in a bitmap container (65536 bits).
const BITMAP_WORDS: usize = 1024;

/// Most chunk containers accepted when decoding one serial set. 65536
/// chunks cover 2^32 serials densely; hostile inputs cannot go further.
pub const MAX_CONTAINERS: usize = 65536;

/// Published delta artifacts a registry retains for lagging receivers;
/// older receivers fall back to a snapshot.
pub const DELTA_LOG_DEPTH: usize = 64;

/// Container tags on the wire.
const TAG_ARRAY: u8 = 0;
const TAG_RUN: u8 = 1;
const TAG_BITMAP: u8 = 2;

/// Artifact kind tags on the wire.
const TAG_SNAPSHOT: u8 = 0;
const TAG_DELTA: u8 = 1;

fn low16(serial: u64) -> u16 {
    u16::try_from(serial & 0xFFFF).unwrap_or(0)
}

/// One chunk's worth of low-16-bit values.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Container {
    /// Sorted, deduplicated values; at most [`ARRAY_MAX`] entries.
    Array(Vec<u16>),
    /// One bit per value.
    Bitmap(Box<[u64; BITMAP_WORDS]>),
}

impl Container {
    fn new() -> Self {
        Container::Array(Vec::new())
    }

    fn contains(&self, v: u16) -> bool {
        match self {
            Container::Array(vals) => vals.binary_search(&v).is_ok(),
            Container::Bitmap(words) => {
                let word = words.get(usize::from(v >> 6)).copied().unwrap_or(0);
                word & (1u64 << (v & 63)) != 0
            }
        }
    }

    /// Sorted, deduplicated values as a container in the canonical
    /// in-memory representation for their cardinality.
    fn from_sorted(vals: Vec<u16>) -> Self {
        if vals.len() > DENSE_PROBE_MIN {
            let mut words = Box::new([0u64; BITMAP_WORDS]);
            for &x in &vals {
                if let Some(w) = words.get_mut(usize::from(x >> 6)) {
                    *w |= 1u64 << (x & 63);
                }
            }
            Container::Bitmap(words)
        } else {
            Container::Array(vals)
        }
    }

    /// Inserts `v`; true when newly present. Arrays overflowing
    /// [`DENSE_PROBE_MIN`] convert to bitmaps.
    fn insert(&mut self, v: u16) -> bool {
        match self {
            Container::Array(vals) => match vals.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    if vals.len() >= DENSE_PROBE_MIN {
                        let mut words = Box::new([0u64; BITMAP_WORDS]);
                        for &x in vals.iter() {
                            if let Some(w) = words.get_mut(usize::from(x >> 6)) {
                                *w |= 1u64 << (x & 63);
                            }
                        }
                        if let Some(w) = words.get_mut(usize::from(v >> 6)) {
                            *w |= 1u64 << (v & 63);
                        }
                        *self = Container::Bitmap(words);
                    } else {
                        vals.insert(pos, v);
                    }
                    true
                }
            },
            Container::Bitmap(words) => match words.get_mut(usize::from(v >> 6)) {
                Some(w) => {
                    let bit = 1u64 << (v & 63);
                    let fresh = *w & bit == 0;
                    *w |= bit;
                    fresh
                }
                None => false,
            },
        }
    }

    fn len(&self) -> usize {
        match self {
            Container::Array(vals) => vals.len(),
            Container::Bitmap(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Sorted values, as (start, length-1) runs of consecutive entries.
    fn runs(&self) -> Vec<(u16, u16)> {
        let mut runs: Vec<(u16, u16)> = Vec::new();
        self.for_each(|v| match runs.last_mut() {
            Some((start, span)) if u32::from(*start) + u32::from(*span) + 1 == u32::from(v) => {
                *span += 1;
            }
            _ => runs.push((v, 0)),
        });
        runs
    }

    fn for_each(&self, mut f: impl FnMut(u16)) {
        match self {
            Container::Array(vals) => {
                for &v in vals {
                    f(v);
                }
            }
            Container::Bitmap(words) => {
                for (i, &word) in words.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        let value = u32::try_from(i).unwrap_or(0) * 64 + bit;
                        f(u16::try_from(value).unwrap_or(u16::MAX));
                        w &= w - 1;
                    }
                }
            }
        }
    }

    /// Canonical encoding: the smallest of array (2 B/value), run
    /// (4 B/run), or bitmap (8 KiB); ties prefer the lower tag.
    fn encode_into(&self, e: &mut Encoder) {
        let n = self.len();
        let runs = self.runs();
        let array_bytes = 2usize.saturating_mul(n);
        let run_bytes = 4usize.saturating_mul(runs.len());
        let bitmap_bytes = BITMAP_WORDS * 8;
        if n <= ARRAY_MAX && array_bytes <= run_bytes && array_bytes <= bitmap_bytes {
            e.u8(TAG_ARRAY).count(n);
            self.for_each(|v| {
                e.u16(v);
            });
        } else if run_bytes <= bitmap_bytes {
            e.u8(TAG_RUN).count(runs.len());
            for (start, span) in runs {
                e.u16(start).u16(span);
            }
        } else {
            e.u8(TAG_BITMAP);
            match self {
                Container::Bitmap(words) => {
                    for &w in words.iter() {
                        e.u64(w);
                    }
                }
                Container::Array(vals) => {
                    let mut words = [0u64; BITMAP_WORDS];
                    for &v in vals {
                        if let Some(w) = words.get_mut(usize::from(v >> 6)) {
                            *w |= 1u64 << (v & 63);
                        }
                    }
                    for &w in words.iter() {
                        e.u64(w);
                    }
                }
            }
        }
    }

    /// Decodes one container, enforcing structural invariants: arrays
    /// strictly increasing, runs sorted and non-overlapping, bitmaps
    /// complete. Violations fail closed.
    fn decode_from(d: &mut Decoder<'_>) -> Result<Container, DecodeError> {
        match d.u8()? {
            TAG_ARRAY => {
                let n = d.counted(2)?;
                if n > ARRAY_MAX {
                    return Err(DecodeError::BadLength(n as u64));
                }
                let mut vals = Vec::with_capacity(n);
                let mut prev: Option<u16> = None;
                for _ in 0..n {
                    let v = d.u16()?;
                    if prev.is_some_and(|p| p >= v) {
                        return Err(DecodeError::InvalidValue("array container not increasing"));
                    }
                    prev = Some(v);
                    vals.push(v);
                }
                Ok(Container::from_sorted(vals))
            }
            TAG_RUN => {
                let n = d.counted(4)?;
                let mut c = Container::new();
                // Next admissible start; None once 0xFFFF has been covered.
                let mut next: Option<u32> = Some(0);
                for _ in 0..n {
                    let start = d.u16()?;
                    let span = d.u16()?;
                    let floor =
                        next.ok_or(DecodeError::InvalidValue("run container past end of chunk"))?;
                    if u32::from(start) < floor {
                        return Err(DecodeError::InvalidValue(
                            "run containers overlap or are unsorted",
                        ));
                    }
                    let end = u32::from(start) + u32::from(span);
                    next = end.checked_add(2);
                    for v in start..=u16::try_from(end).unwrap_or(u16::MAX) {
                        c.insert(v);
                    }
                }
                Ok(c)
            }
            TAG_BITMAP => {
                let mut words = Box::new([0u64; BITMAP_WORDS]);
                for w in words.iter_mut() {
                    *w = d.u64()?;
                }
                Ok(Container::Bitmap(words))
            }
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

/// A compressed set of `u64` serial numbers (roaring-style).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SerialSet {
    chunks: HashMap<u64, Container>,
}

impl SerialSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `serial`; true when newly present.
    pub fn insert(&mut self, serial: u64) -> bool {
        self.chunks
            .entry(serial >> 16)
            .or_insert_with(Container::new)
            .insert(low16(serial))
    }

    /// True when `serial` is present — one hash probe plus one container
    /// probe, independent of set size.
    #[must_use]
    pub fn contains(&self, serial: u64) -> bool {
        self.chunks
            .get(&(serial >> 16))
            .is_some_and(|c| c.contains(low16(serial)))
    }

    /// Counts how many of `serials` are present. Equivalent to summing
    /// [`SerialSet::contains`] over the slice, but software-pipelined in
    /// blocks: the hash-table lookups for a block of probes all resolve
    /// first, then the container probes run as a tight branch-free
    /// micro-loop, so cache misses to distinct chunks overlap instead of
    /// serializing behind one another. This is the bulk primitive for
    /// batch reconciliation (and the figures harness); single-probe
    /// callers should keep using [`SerialSet::contains`].
    #[must_use]
    pub fn count_contained(&self, serials: &[u64]) -> u64 {
        const BLOCK: usize = 16;
        let mut resolved: [Option<(&Container, u16)>; BLOCK] = [None; BLOCK];
        let mut hits = 0u64;
        for block in serials.chunks(BLOCK) {
            for (slot, &s) in resolved.iter_mut().zip(block) {
                *slot = self.chunks.get(&(s >> 16)).map(|c| (c, low16(s)));
            }
            for (c, v) in resolved.iter().take(block.len()).flatten() {
                hits += u64::from(c.contains(*v));
            }
        }
        hits
    }

    /// Number of serials in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunks.values().map(Container::len).sum()
    }

    /// True when no serial is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty() || self.len() == 0
    }

    /// Adds every serial of `other` to `self`.
    pub fn union_with(&mut self, other: &SerialSet) {
        for (&key, container) in &other.chunks {
            let dst = self.chunks.entry(key).or_insert_with(Container::new);
            container.for_each(|v| {
                dst.insert(v);
            });
        }
    }

    /// Visits every serial (ascending within a chunk; chunk order is
    /// unspecified).
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        for (&key, container) in &self.chunks {
            container.for_each(|v| f((key << 16) | u64::from(v)));
        }
    }

    /// Canonical byte encoding: chunks sorted by key, each as its
    /// smallest container representation. One set, one byte string —
    /// artifacts are sealed over this.
    pub fn encode_into(&self, e: &mut Encoder) {
        let mut keys: Vec<u64> = self.chunks.keys().copied().collect();
        keys.sort_unstable();
        e.count(keys.len());
        for key in keys {
            if let Some(container) = self.chunks.get(&key) {
                e.u64(key);
                container.encode_into(e);
            }
        }
    }

    /// Decodes a canonical encoding, rejecting unsorted or duplicate
    /// chunk keys, oversized counts, and malformed containers.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on any structural violation; no input panics.
    pub fn decode_from(d: &mut Decoder<'_>) -> Result<SerialSet, DecodeError> {
        // Each chunk costs at least key (8) + tag (1) + count (4) bytes.
        let n = d.counted(13)?;
        if n > MAX_CONTAINERS {
            return Err(DecodeError::BadLength(n as u64));
        }
        let mut chunks = HashMap::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let key = d.u64()?;
            if prev.is_some_and(|p| p >= key) {
                return Err(DecodeError::InvalidValue("chunk keys not increasing"));
            }
            prev = Some(key);
            chunks.insert(key, Container::decode_from(d)?);
        }
        Ok(SerialSet { chunks })
    }

    /// Canonical encoding as an owned byte vector.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_into(&mut e);
        e.finish()
    }

    /// Decodes [`SerialSet::encode`] output, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input.
    pub fn decode(input: &[u8]) -> Result<SerialSet, DecodeError> {
        let mut d = Decoder::new(input);
        let set = Self::decode_from(&mut d)?;
        d.finish()?;
        Ok(set)
    }
}

impl FromIterator<u64> for SerialSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut set = SerialSet::new();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

/// Whether an artifact replaces state or extends an exact prior epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// The issuer's complete revoked set as of the artifact's epoch.
    Snapshot,
    /// Serials revoked between `base_epoch` and the artifact's epoch;
    /// applies only when the receiver is exactly at `base_epoch`.
    Delta {
        /// The epoch this delta extends.
        base_epoch: u64,
    },
}

/// A sealed, epoch-numbered revocation announcement from one issuer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevocationArtifact {
    /// The grantor whose issued serials this artifact revokes. Only this
    /// principal's authority may seal it.
    pub issuer: PrincipalId,
    /// Monotone publication counter; receivers never move backwards.
    pub epoch: u64,
    /// Snapshot or delta semantics.
    pub kind: ArtifactKind,
    /// The revoked serials (full set for snapshots, additions for
    /// deltas).
    pub serials: SerialSet,
    /// Seal over [`RevocationArtifact::body_bytes`] by the issuer.
    pub seal: CertSeal,
}

impl RevocationArtifact {
    /// The canonical byte string the seal covers: every field but the
    /// seal, behind a domain-separation label.
    #[must_use]
    pub fn body_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(ARTIFACT_LABEL);
        e.str(self.issuer.as_str());
        e.u64(self.epoch);
        match self.kind {
            ArtifactKind::Snapshot => {
                e.u8(TAG_SNAPSHOT);
            }
            ArtifactKind::Delta { base_epoch } => {
                e.u8(TAG_DELTA).u64(base_epoch);
            }
        }
        self.serials.encode_into(&mut e);
        e.finish()
    }

    /// Builds and seals an artifact under `authority`.
    #[must_use]
    pub fn seal(
        issuer: PrincipalId,
        epoch: u64,
        kind: ArtifactKind,
        serials: SerialSet,
        authority: &GrantAuthority,
    ) -> Self {
        let mut artifact = Self {
            issuer,
            epoch,
            kind,
            serials,
            seal: CertSeal::Hmac([0u8; 32]),
        };
        artifact.seal = seal_body(authority, &artifact.body_bytes());
        artifact
    }

    /// Checks the seal against the issuer's verification material.
    /// Flavor mismatches (HMAC seal, public-key verifier or vice versa)
    /// fail closed.
    #[must_use]
    pub fn verify_seal(&self, verifier: &GrantorVerifier) -> bool {
        verify_body_seal(verifier, &self.body_bytes(), &self.seal)
    }

    /// Full wire encoding (body + seal).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_onto(&mut e);
        e.finish()
    }

    /// Appends the wire encoding to `e`.
    pub fn encode_onto(&self, e: &mut Encoder) {
        e.bytes(&self.body_bytes());
        encode_seal(e, &self.seal);
    }

    /// Decodes one artifact from a decoder stream.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input. The decoded artifact is
    /// *unverified*: its seal must still be checked.
    pub fn decode_from(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let body = decode_artifact_body(d)?.to_vec();
        let seal = decode_seal(d)?;
        let mut b = Decoder::new(&body);
        if b.bytes()? != ARTIFACT_LABEL {
            return Err(DecodeError::InvalidValue("revocation artifact label"));
        }
        let issuer = b.principal()?;
        let epoch = b.u64()?;
        let kind = match b.u8()? {
            TAG_SNAPSHOT => ArtifactKind::Snapshot,
            TAG_DELTA => ArtifactKind::Delta {
                base_epoch: b.u64()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        if let ArtifactKind::Delta { base_epoch } = kind {
            // A delta that does not advance past its own base is
            // internally inconsistent — reject it at the wire boundary
            // rather than let it reach epoch bookkeeping.
            if epoch <= base_epoch {
                return Err(DecodeError::InvalidValue("delta epoch not after its base"));
            }
        }
        let serials = SerialSet::decode_from(&mut b)?;
        b.finish()?;
        Ok(Self {
            issuer,
            epoch,
            kind,
            serials,
            seal,
        })
    }

    /// Decodes [`RevocationArtifact::encode`] output, rejecting trailing
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input.
    pub fn decode(input: &[u8]) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(input);
        let artifact = Self::decode_from(&mut d)?;
        d.finish()?;
        Ok(artifact)
    }
}

/// Upper bound on a sealed artifact body. A 1M-serial revocation
/// snapshot encodes to ≈2 MB and a 1M-member roster snapshot to ≈16 MB
/// — both past the codec's general collection sanity bound — so the
/// artifact decoders read their body through this dedicated limit
/// instead of [`Decoder::bytes`]. The check runs before any copy, and
/// the borrow-then-`to_vec` shape keeps allocation bounded by the
/// actual input length, never by the declared one. (On the wire,
/// artifacts are further capped by the frame-body limit; bodies this
/// large travel as delta chains or out-of-band files.)
pub const MAX_ARTIFACT_BODY: usize = 32 << 20;

/// Reads a u32-length-prefixed artifact body bounded by
/// [`MAX_ARTIFACT_BODY`].
pub(crate) fn decode_artifact_body<'a>(d: &mut Decoder<'a>) -> Result<&'a [u8], DecodeError> {
    let len = d.u32()? as usize;
    if len > MAX_ARTIFACT_BODY {
        return Err(DecodeError::BadLength(len as u64));
    }
    d.raw(len)
}

/// Seals `body` under `authority` (shared helper for every sealed
/// artifact flavor in this crate).
#[must_use]
pub(crate) fn seal_body(authority: &GrantAuthority, body: &[u8]) -> CertSeal {
    match authority {
        GrantAuthority::SharedKey(k) => CertSeal::Hmac(HmacSha256::mac(k.as_bytes(), body)),
        GrantAuthority::Keypair(sk) => CertSeal::Ed25519(sk.sign(body)),
    }
}

/// Verifies `seal` over `body` against `verifier`; flavor mismatches
/// fail closed.
#[must_use]
pub(crate) fn verify_body_seal(verifier: &GrantorVerifier, body: &[u8], seal: &CertSeal) -> bool {
    match (verifier, seal) {
        (GrantorVerifier::SharedKey(k), CertSeal::Hmac(tag)) => {
            HmacSha256::verify(k.as_bytes(), body, tag)
        }
        (GrantorVerifier::PublicKey(vk), CertSeal::Ed25519(sig)) => vk.verify(body, sig).is_ok(),
        _ => false,
    }
}

pub(crate) fn encode_seal(e: &mut Encoder, seal: &CertSeal) {
    match seal {
        CertSeal::Hmac(tag) => {
            e.u8(0).raw(tag);
        }
        CertSeal::Ed25519(sig) => {
            e.u8(1).raw(sig.as_bytes());
        }
    }
}

pub(crate) fn decode_seal(d: &mut Decoder<'_>) -> Result<CertSeal, DecodeError> {
    match d.u8()? {
        0 => Ok(CertSeal::Hmac(d.raw_array::<32>()?)),
        1 => {
            let sig = Signature::try_from_slice(d.raw(SIGNATURE_LEN)?)
                .map_err(|_| DecodeError::UnexpectedEnd)?;
            Ok(CertSeal::Ed25519(sig))
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Why an artifact was rejected (always fail-closed: the receiver keeps
/// its last good state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The seal did not verify under the claimed issuer's material.
    BadSeal,
    /// No verification material for the claimed issuer.
    UnknownIssuer(PrincipalId),
    /// A snapshot (or delta target) at or below the receiver's epoch —
    /// a replayed or rolled-back artifact.
    EpochRegression {
        /// The receiver's current epoch.
        current: u64,
        /// The epoch the artifact offered.
        offered: u64,
    },
    /// A delta whose base is not the receiver's exact current epoch.
    BaseMismatch {
        /// The receiver's current epoch.
        current: u64,
        /// The base epoch the delta requires.
        base: u64,
    },
    /// The artifact failed wire decoding.
    Decode(DecodeError),
    /// The registry's delta log no longer reaches back to the requested
    /// epoch; the requester must take a snapshot.
    LogTruncated,
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::BadSeal => write!(f, "artifact seal verification failed"),
            ArtifactError::UnknownIssuer(p) => {
                write!(f, "no verification material for artifact issuer {p}")
            }
            ArtifactError::EpochRegression { current, offered } => {
                write!(f, "artifact epoch {offered} not beyond current {current}")
            }
            ArtifactError::BaseMismatch { current, base } => {
                write!(
                    f,
                    "delta base epoch {base} does not match current {current}"
                )
            }
            ArtifactError::Decode(e) => write!(f, "malformed artifact: {e}"),
            ArtifactError::LogTruncated => {
                write!(f, "delta log truncated; a snapshot is required")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<DecodeError> for ArtifactError {
    fn from(e: DecodeError) -> Self {
        ArtifactError::Decode(e)
    }
}

struct RegistryState {
    epoch: u64,
    set: Arc<SerialSet>,
    /// Serials revoked since the last published artifact.
    pending: SerialSet,
    /// Published deltas, oldest first, each carrying its own epoch.
    log: Vec<RevocationArtifact>,
}

/// The issuer side: accumulates revocations and publishes sealed
/// artifacts. All operations take `&self`.
pub struct RevocationRegistry {
    issuer: PrincipalId,
    state: RwLock<RegistryState>,
}

impl std::fmt::Debug for RevocationRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RevocationRegistry")
            .field("issuer", &self.issuer)
            .finish_non_exhaustive()
    }
}

impl RevocationRegistry {
    /// An empty registry for `issuer` at epoch 0.
    #[must_use]
    pub fn new(issuer: PrincipalId) -> Self {
        Self {
            issuer,
            state: RwLock::new(RegistryState {
                epoch: 0,
                set: Arc::new(SerialSet::new()),
                pending: SerialSet::new(),
                log: Vec::new(),
            }),
        }
    }

    /// The issuer this registry revokes for.
    #[must_use]
    pub fn issuer(&self) -> &PrincipalId {
        &self.issuer
    }

    /// Marks `serial` revoked; true when newly revoked. Visible to
    /// artifact consumers only after the next publish.
    pub fn revoke(&self, serial: u64) -> bool {
        match self.state.write() {
            Ok(mut s) => {
                if s.set.contains(serial) {
                    return false;
                }
                let mut set = (*s.set).clone();
                let fresh = set.insert(serial);
                s.set = Arc::new(set);
                if fresh {
                    s.pending.insert(serial);
                }
                fresh
            }
            // A poisoned registry can no longer promise anything; drop
            // the revocation on the floor rather than panic — publishes
            // from a poisoned registry are refused too.
            Err(_) => false,
        }
    }

    /// Marks many serials revoked in one epoch-coherent batch.
    pub fn revoke_all(&self, serials: impl IntoIterator<Item = u64>) {
        if let Ok(mut s) = self.state.write() {
            let mut set = (*s.set).clone();
            for serial in serials {
                if set.insert(serial) {
                    s.pending.insert(serial);
                }
            }
            s.set = Arc::new(set);
        }
    }

    /// Current published epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.state.read().map_or(0, |s| s.epoch)
    }

    /// True when `serial` is revoked (including not-yet-published ones —
    /// the issuer itself always enforces immediately).
    #[must_use]
    pub fn is_revoked(&self, serial: u64) -> bool {
        // Poisoned state answers "revoked": fail closed.
        self.state.read().map_or(true, |s| s.set.contains(serial))
    }

    /// Publishes pending revocations as a sealed delta, bumping the
    /// epoch. Returns `None` when nothing is pending (the epoch does not
    /// move) or the registry is poisoned.
    pub fn publish_delta(&self, authority: &GrantAuthority) -> Option<RevocationArtifact> {
        let mut s = self.state.write().ok()?;
        if s.pending.is_empty() {
            return None;
        }
        let base = s.epoch;
        let adds = std::mem::take(&mut s.pending);
        let artifact = RevocationArtifact::seal(
            self.issuer.clone(),
            base + 1,
            ArtifactKind::Delta { base_epoch: base },
            adds,
            authority,
        );
        s.epoch = base + 1;
        s.log.push(artifact.clone());
        if s.log.len() > DELTA_LOG_DEPTH {
            let excess = s.log.len() - DELTA_LOG_DEPTH;
            s.log.drain(..excess);
        }
        Some(artifact)
    }

    /// Publishes the complete revoked set as a sealed snapshot at the
    /// current epoch (pending revocations are folded in first via an
    /// implicit delta publish). Returns `None` when poisoned.
    pub fn publish_snapshot(&self, authority: &GrantAuthority) -> Option<RevocationArtifact> {
        self.publish_delta(authority);
        let s = self.state.read().ok()?;
        Some(RevocationArtifact::seal(
            self.issuer.clone(),
            s.epoch,
            ArtifactKind::Snapshot,
            (*s.set).clone(),
            authority,
        ))
    }

    /// The artifacts that bring a receiver at `have_epoch` up to date:
    /// the contiguous delta chain when the log still covers it, else one
    /// snapshot. Pending revocations are published first. An empty vec
    /// means the receiver is already current.
    pub fn updates_since(
        &self,
        have_epoch: u64,
        authority: &GrantAuthority,
    ) -> Vec<RevocationArtifact> {
        self.publish_delta(authority);
        if let Ok(s) = self.state.read() {
            if have_epoch >= s.epoch {
                return Vec::new();
            }
            let chain: Vec<RevocationArtifact> = s
                .log
                .iter()
                .filter(|a| a.epoch > have_epoch)
                .cloned()
                .collect();
            let covered = chain.first().is_some_and(
                |a| matches!(a.kind, ArtifactKind::Delta { base_epoch } if base_epoch <= have_epoch),
            );
            if covered {
                return chain;
            }
        }
        self.publish_snapshot(authority).into_iter().collect()
    }
}

/// Per-issuer applied state on a receiver.
#[derive(Clone, Debug)]
struct MirrorState {
    epoch: u64,
    set: Arc<SerialSet>,
}

/// The receiver side: per-issuer revocation mirrors consulted on the
/// verify hot path. `is_revoked` answers under one shared shard
/// read-lock (a point probe, tens of nanoseconds); applying artifacts
/// builds the successor set off-lock and swaps one `Arc` in, so updates
/// never block verification.
#[derive(Debug, Default)]
pub struct RevocationDirectory {
    mirrors: crate::shard::ShardMap<PrincipalId, MirrorState>,
}

impl RevocationDirectory {
    /// An empty directory: nothing is revoked until an artifact says so
    /// (absence of revocation data falls back to the paper's
    /// expiry-based model).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when `issuer` has revoked `serial` per the mirrored state.
    #[must_use]
    pub fn is_revoked(&self, issuer: &PrincipalId, serial: u64) -> bool {
        // The probe runs inside the shard read closure: shared lock, one
        // point lookup, no refcount traffic. Writers swap a fresh `Arc`
        // in, so the lock is never held across a set rebuild.
        self.mirrors
            .read(issuer, |m| m.is_some_and(|m| m.set.contains(serial)))
    }

    /// The mirrored epoch for `issuer` (0 when no artifact has applied).
    #[must_use]
    pub fn epoch_of(&self, issuer: &PrincipalId) -> u64 {
        self.mirrors.read(issuer, |m| m.map_or(0, |m| m.epoch))
    }

    /// Applies a *seal-verified* artifact. Snapshots must advance the
    /// epoch (or establish a first mirror); deltas must extend the exact
    /// current epoch. Rejections leave the last good state enforced.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::EpochRegression`] / [`ArtifactError::BaseMismatch`].
    pub fn apply_verified(&self, artifact: &RevocationArtifact) -> Result<(), ArtifactError> {
        let issuer = artifact.issuer.clone();
        match artifact.kind {
            ArtifactKind::Snapshot => {
                // Built off the hot path; the upsert below only swaps.
                let fresh = Arc::new(artifact.serials.clone());
                self.mirrors.upsert(
                    issuer,
                    || MirrorState {
                        epoch: 0,
                        set: Arc::new(SerialSet::new()),
                    },
                    |m| {
                        if artifact.epoch < m.epoch
                            || (artifact.epoch == m.epoch && artifact.epoch != 0)
                        {
                            return Err(ArtifactError::EpochRegression {
                                current: m.epoch,
                                offered: artifact.epoch,
                            });
                        }
                        m.epoch = artifact.epoch;
                        m.set = fresh;
                        Ok(())
                    },
                )
            }
            ArtifactKind::Delta { base_epoch } => {
                if artifact.epoch <= base_epoch {
                    return Err(ArtifactError::EpochRegression {
                        current: base_epoch,
                        offered: artifact.epoch,
                    });
                }
                // Read the current set, build the successor off-lock.
                let current = self
                    .mirrors
                    .read(&issuer, |m| m.map(|m| (m.epoch, m.set.clone())));
                let (cur_epoch, cur_set) = match current {
                    Some(pair) => pair,
                    None => (0, Arc::new(SerialSet::new())),
                };
                if cur_epoch != base_epoch {
                    return Err(ArtifactError::BaseMismatch {
                        current: cur_epoch,
                        base: base_epoch,
                    });
                }
                let mut next = (*cur_set).clone();
                next.union_with(&artifact.serials);
                let next = Arc::new(next);
                // Swap in, re-checking the epoch under the shard lock (a
                // racing update may have advanced it; fail closed then).
                self.mirrors.upsert(
                    issuer,
                    || MirrorState {
                        epoch: 0,
                        set: Arc::new(SerialSet::new()),
                    },
                    |m| {
                        if m.epoch != base_epoch {
                            return Err(ArtifactError::BaseMismatch {
                                current: m.epoch,
                                base: base_epoch,
                            });
                        }
                        m.epoch = artifact.epoch;
                        m.set = next;
                        Ok(())
                    },
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxy_crypto::ed25519::SigningKey;
    use proxy_crypto::keys::SymmetricKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    #[test]
    fn serial_set_insert_contains() {
        let mut s = SerialSet::new();
        assert!(!s.contains(7));
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(s.insert(7 + (1 << 16)));
        assert!(s.contains(7 + (1 << 16)));
        assert!(!s.contains(8));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn array_promotes_to_bitmap_past_threshold() {
        let mut s = SerialSet::new();
        for v in 0..(ARRAY_MAX as u64 + 10) {
            // Every other value, so runs stay short.
            s.insert(v * 2);
        }
        assert_eq!(s.len(), ARRAY_MAX + 10);
        for v in 0..(ARRAY_MAX as u64 + 10) {
            assert!(s.contains(v * 2));
            assert!(!s.contains(v * 2 + 1) || v * 2 + 1 == (ARRAY_MAX as u64 + 9) * 2);
        }
    }

    #[test]
    fn count_contained_matches_scalar_probes() {
        let s: SerialSet = (0..5_000u64).map(|i| i * 37).collect();
        let probes: Vec<u64> = (0..1_000u64).map(|i| i * 91).collect();
        let expected = probes.iter().filter(|&&p| s.contains(p)).count() as u64;
        assert_eq!(s.count_contained(&probes), expected);
        assert_eq!(s.count_contained(&[]), 0);
        // Shorter than the pipeline lookahead still answers correctly.
        assert_eq!(s.count_contained(&[0, 1, 37]), 2);
    }

    #[test]
    fn dense_chunks_round_trip_as_runs() {
        // 100k sequential serials: runs compress to a few bytes/chunk.
        let s: SerialSet = (0..100_000u64).collect();
        let bytes = s.encode();
        assert!(
            bytes.len() < 100,
            "sequential serials must run-compress, got {} bytes",
            bytes.len()
        );
        let back = SerialSet::decode(&bytes).unwrap();
        assert_eq!(back.len(), 100_000);
        assert!(back.contains(0) && back.contains(99_999) && !back.contains(100_000));
    }

    #[test]
    fn sparse_sets_round_trip_as_arrays() {
        let s: SerialSet = (0..100u64).map(|i| i * 1_000_003).collect();
        let back = SerialSet::decode(&s.encode()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn union_merges_everything() {
        let a: SerialSet = (0..1000u64).collect();
        let b: SerialSet = (500..1500u64).collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 1500);
    }

    #[test]
    fn decode_rejects_unsorted_chunks_and_arrays() {
        // Unsorted chunk keys.
        let mut e = Encoder::new();
        e.count(2);
        e.u64(5).u8(TAG_ARRAY).count(1).u16(1);
        e.u64(4).u8(TAG_ARRAY).count(1).u16(1);
        assert!(SerialSet::decode(&e.finish()).is_err());
        // Non-increasing array values.
        let mut e = Encoder::new();
        e.count(1);
        e.u64(0).u8(TAG_ARRAY).count(2).u16(9).u16(9);
        assert!(SerialSet::decode(&e.finish()).is_err());
    }

    #[test]
    fn decode_rejects_overlapping_runs() {
        let mut e = Encoder::new();
        e.count(1);
        e.u64(0).u8(TAG_RUN).count(2);
        e.u16(0).u16(10); // covers 0..=10
        e.u16(5).u16(3); // overlaps
        assert!(SerialSet::decode(&e.finish()).is_err());
        // Adjacent-but-merged runs are non-canonical too (next start must
        // leave a gap of at least one value).
        let mut e = Encoder::new();
        e.count(1);
        e.u64(0).u8(TAG_RUN).count(2);
        e.u16(0).u16(4); // 0..=4
        e.u16(5).u16(1); // touches: should have been one run
        assert!(SerialSet::decode(&e.finish()).is_err());
    }

    #[test]
    fn decode_rejects_truncated_bitmap() {
        let mut e = Encoder::new();
        e.count(1);
        e.u64(0).u8(TAG_BITMAP);
        for _ in 0..10 {
            e.u64(u64::MAX); // far fewer than 1024 words
        }
        assert_eq!(
            SerialSet::decode(&e.finish()),
            Err(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn decode_rejects_allocation_bombs() {
        let mut e = Encoder::new();
        e.count(1_000_000); // claims a million chunks, provides none
        assert!(matches!(
            SerialSet::decode(&e.finish()),
            Err(DecodeError::BadLength(_))
        ));
    }

    #[test]
    fn artifact_seal_round_trip_hmac_and_ed25519() {
        let mut rng = StdRng::seed_from_u64(1);
        let shared = SymmetricKey::generate(&mut rng);
        let sk = SigningKey::generate(&mut rng);
        for (authority, verifier) in [
            (
                GrantAuthority::SharedKey(shared.clone()),
                GrantorVerifier::SharedKey(shared.clone()),
            ),
            (
                GrantAuthority::Keypair(sk.clone()),
                GrantorVerifier::PublicKey(sk.verifying_key()),
            ),
        ] {
            let artifact = RevocationArtifact::seal(
                p("authz"),
                3,
                ArtifactKind::Delta { base_epoch: 2 },
                (0..50u64).collect(),
                &authority,
            );
            assert!(artifact.verify_seal(&verifier));
            let back = RevocationArtifact::decode(&artifact.encode()).unwrap();
            assert_eq!(back, artifact);
            assert!(back.verify_seal(&verifier));
        }
    }

    #[test]
    fn tampered_artifact_fails_seal() {
        let mut rng = StdRng::seed_from_u64(2);
        let shared = SymmetricKey::generate(&mut rng);
        let authority = GrantAuthority::SharedKey(shared.clone());
        let verifier = GrantorVerifier::SharedKey(shared);
        let mut artifact = RevocationArtifact::seal(
            p("authz"),
            1,
            ArtifactKind::Snapshot,
            (0..10u64).collect(),
            &authority,
        );
        artifact.serials.insert(11); // sneak one more serial in
        assert!(!artifact.verify_seal(&verifier));
        // Flavor mismatch also fails closed.
        let sk = SigningKey::generate(&mut rng);
        assert!(!artifact.verify_seal(&GrantorVerifier::PublicKey(sk.verifying_key())));
    }

    #[test]
    fn registry_publishes_deltas_then_snapshot_fallback() {
        let mut rng = StdRng::seed_from_u64(3);
        let authority = GrantAuthority::SharedKey(SymmetricKey::generate(&mut rng));
        let reg = RevocationRegistry::new(p("authz"));
        assert!(reg.publish_delta(&authority).is_none(), "nothing pending");
        reg.revoke(1);
        reg.revoke(2);
        let d1 = reg.publish_delta(&authority).unwrap();
        assert_eq!(d1.epoch, 1);
        assert_eq!(d1.kind, ArtifactKind::Delta { base_epoch: 0 });
        assert_eq!(d1.serials.len(), 2);
        reg.revoke(3);
        let updates = reg.updates_since(1, &authority);
        assert_eq!(updates.len(), 1, "one delta from epoch 1 to 2");
        assert_eq!(updates[0].epoch, 2);
        assert!(reg.updates_since(2, &authority).is_empty(), "current");
        // A receiver far behind a truncated log gets a snapshot.
        for i in 0..(DELTA_LOG_DEPTH as u64 + 4) {
            reg.revoke(100 + i);
            reg.publish_delta(&authority);
        }
        let updates = reg.updates_since(1, &authority);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].kind, ArtifactKind::Snapshot);
        assert_eq!(
            updates[0].serials.len(),
            reg.state.read().unwrap().set.len()
        );
    }

    #[test]
    fn directory_applies_snapshots_and_deltas_atomically() {
        let dir = RevocationDirectory::new();
        assert!(!dir.is_revoked(&p("authz"), 5));
        let snap = RevocationArtifact {
            issuer: p("authz"),
            epoch: 3,
            kind: ArtifactKind::Snapshot,
            serials: (0..10u64).collect(),
            seal: CertSeal::Hmac([0u8; 32]),
        };
        dir.apply_verified(&snap).unwrap();
        assert!(dir.is_revoked(&p("authz"), 5));
        assert_eq!(dir.epoch_of(&p("authz")), 3);
        // Delta extending epoch 3.
        let delta = RevocationArtifact {
            issuer: p("authz"),
            epoch: 4,
            kind: ArtifactKind::Delta { base_epoch: 3 },
            serials: (20..25u64).collect(),
            seal: CertSeal::Hmac([0u8; 32]),
        };
        dir.apply_verified(&delta).unwrap();
        assert!(dir.is_revoked(&p("authz"), 22) && dir.is_revoked(&p("authz"), 5));
        // Epoch rollback rejected; last good state kept.
        let rollback = RevocationArtifact {
            issuer: p("authz"),
            epoch: 2,
            kind: ArtifactKind::Snapshot,
            serials: SerialSet::new(),
            seal: CertSeal::Hmac([0u8; 32]),
        };
        assert!(matches!(
            dir.apply_verified(&rollback),
            Err(ArtifactError::EpochRegression {
                current: 4,
                offered: 2
            })
        ));
        assert!(dir.is_revoked(&p("authz"), 5), "last good epoch enforced");
        // Delta against the wrong base rejected.
        let wrong_base = RevocationArtifact {
            issuer: p("authz"),
            epoch: 9,
            kind: ArtifactKind::Delta { base_epoch: 7 },
            serials: (30..31u64).collect(),
            seal: CertSeal::Hmac([0u8; 32]),
        };
        assert!(matches!(
            dir.apply_verified(&wrong_base),
            Err(ArtifactError::BaseMismatch {
                current: 4,
                base: 7
            })
        ));
        assert!(!dir.is_revoked(&p("authz"), 30));
    }

    #[test]
    fn registry_end_to_end_into_directory() {
        let mut rng = StdRng::seed_from_u64(4);
        let shared = SymmetricKey::generate(&mut rng);
        let authority = GrantAuthority::SharedKey(shared.clone());
        let verifier = GrantorVerifier::SharedKey(shared);
        let reg = RevocationRegistry::new(p("authz"));
        let dir = RevocationDirectory::new();
        reg.revoke_all(0..1000);
        for artifact in reg.updates_since(dir.epoch_of(&p("authz")), &authority) {
            assert!(artifact.verify_seal(&verifier));
            dir.apply_verified(&artifact).unwrap();
        }
        assert!(dir.is_revoked(&p("authz"), 999));
        assert!(!dir.is_revoked(&p("authz"), 1000));
        // Incremental catch-up.
        reg.revoke(5000);
        for artifact in reg.updates_since(dir.epoch_of(&p("authz")), &authority) {
            dir.apply_verified(&artifact).unwrap();
        }
        assert!(dir.is_revoked(&p("authz"), 5000));
        assert_eq!(dir.epoch_of(&p("authz")), reg.epoch());
    }
}
