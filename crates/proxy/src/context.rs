//! The request context a proxy is evaluated against.

use crate::principal::{GroupName, PrincipalId};
use crate::restriction::{Currency, ObjectName, Operation};
use crate::time::Timestamp;

/// Everything an end-server knows about a request when deciding whether a
/// presented proxy authorizes it.
#[derive(Clone, Debug)]
pub struct RequestContext {
    /// The end-server receiving the request (checked by `issued-for` and
    /// `limit-restriction`).
    pub server: PrincipalId,
    /// The requested operation.
    pub operation: Operation,
    /// The object the operation targets.
    pub object: ObjectName,
    /// Current logical time (expiry checking).
    pub now: Timestamp,
    /// Principals whose own credentials were verified alongside the proxy
    /// presentation (satisfies `grantee` restrictions).
    pub authenticated: Vec<PrincipalId>,
    /// Group memberships proven by accompanying group proxies (satisfies
    /// `for-use-by-group`; checked against `group-membership`).
    pub asserted_groups: Vec<GroupName>,
    /// Resources this operation would consume, per currency (checked by
    /// `quota`).
    pub amounts: Vec<(Currency, u64)>,
}

impl RequestContext {
    /// Creates a minimal context for `operation` on `object` at `server`,
    /// at time zero with no authenticated parties, groups, or amounts.
    #[must_use]
    pub fn new(server: PrincipalId, operation: Operation, object: ObjectName) -> Self {
        Self {
            server,
            operation,
            object,
            now: Timestamp::ZERO,
            authenticated: Vec::new(),
            asserted_groups: Vec::new(),
            amounts: Vec::new(),
        }
    }

    /// Sets the evaluation time.
    #[must_use]
    pub fn at(mut self, now: Timestamp) -> Self {
        self.now = now;
        self
    }

    /// Records an authenticated principal.
    #[must_use]
    pub fn authenticated_as(mut self, principal: PrincipalId) -> Self {
        self.authenticated.push(principal);
        self
    }

    /// Records a proven group membership.
    #[must_use]
    pub fn with_group(mut self, group: GroupName) -> Self {
        self.asserted_groups.push(group);
        self
    }

    /// Records a resource demand.
    #[must_use]
    pub fn consuming(mut self, currency: Currency, amount: u64) -> Self {
        self.amounts.push((currency, amount));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let ctx = RequestContext::new(
            PrincipalId::new("s"),
            Operation::new("read"),
            ObjectName::new("o"),
        )
        .at(Timestamp(5))
        .authenticated_as(PrincipalId::new("alice"))
        .with_group(GroupName::new(PrincipalId::new("gs"), "staff"))
        .consuming(Currency::new("pages"), 3);
        assert_eq!(ctx.now, Timestamp(5));
        assert_eq!(ctx.authenticated.len(), 1);
        assert_eq!(ctx.asserted_groups.len(), 1);
        assert_eq!(ctx.amounts, vec![(Currency::new("pages"), 3)]);
    }
}
