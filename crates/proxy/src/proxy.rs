//! Granting, deriving (bearer cascade), and delegate-cascading proxies.
//!
//! * [`grant`] issues a fresh proxy — the head of a chain (Fig. 1).
//! * [`Proxy::derive`] adds restrictions to a bearer proxy by signing a new
//!   certificate with the current proxy key (Fig. 4). No party identity is
//!   involved, so the cascade leaves no audit trail.
//! * [`delegate_cascade`] passes a *delegate* proxy onward: the
//!   intermediate signs the new certificate with its own authority and
//!   names the subordinate, leaving an audit trail (§3.4).

use rand::RngCore;

use proxy_crypto::hmac::HmacSha256;
use proxy_crypto::keys::SymmetricKey;

use crate::cert::{CertSeal, Certificate, SigningAuthorityKind};
use crate::error::GrantError;
use crate::key::{GrantAuthority, KeyMaterial, ProxyKey};
use crate::principal::PrincipalId;
use crate::restriction::{Restriction, RestrictionSet};
use crate::time::Validity;

/// A proxy as held by its grantee: the certificate chain plus the (secret)
/// proxy key for the final link.
#[derive(Clone, Debug)]
pub struct Proxy {
    /// Certificate chain, head (original grantor) first.
    pub certs: Vec<Certificate>,
    /// Secret proxy key matching the final certificate's key material.
    pub key: ProxyKey,
}

impl Proxy {
    /// The original grantor — the principal whose rights the proxy conveys.
    #[must_use]
    pub fn grantor(&self) -> &PrincipalId {
        &self.certs[0].grantor
    }

    /// The final certificate in the chain.
    #[must_use]
    pub fn final_cert(&self) -> &Certificate {
        self.certs.last().expect("proxy chains are non-empty")
    }

    /// The union of all restrictions along the chain.
    #[must_use]
    pub fn combined_restrictions(&self) -> RestrictionSet {
        self.certs
            .iter()
            .fold(RestrictionSet::new(), |acc, c| acc.union(&c.restrictions))
    }

    /// The effective validity window (intersection along the chain), or
    /// `None` for a malformed chain with disjoint windows.
    #[must_use]
    pub fn effective_validity(&self) -> Option<Validity> {
        let mut iter = self.certs.iter();
        let mut v = iter.next()?.validity;
        for cert in iter {
            v = v.intersect(&cert.validity)?;
        }
        Some(v)
    }

    /// True when any certificate carries a `grantee` restriction, making
    /// this a delegate proxy (§7.1).
    #[must_use]
    pub fn is_delegate(&self) -> bool {
        self.certs.iter().any(|c| c.restrictions.has_grantee())
    }

    /// Total wire size of the certificate chain in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        self.certs.iter().map(Certificate::encoded_len).sum()
    }

    /// A human-readable audit trail of the chain: one line per link,
    /// showing who sealed it and with what authority. Delegate cascades
    /// name every intermediate (the §3.4 audit property); bearer cascades
    /// show as anonymous key-sealed links.
    #[must_use]
    pub fn audit_trail(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, cert) in self.certs.iter().enumerate() {
            let how = match cert.authority {
                SigningAuthorityKind::Grantor => format!("sealed by {}", cert.grantor),
                SigningAuthorityKind::PriorProxyKey => {
                    "sealed with the prior proxy key (anonymous)".to_string()
                }
            };
            let _ = writeln!(
                out,
                "[{i}] serial {} — {} — {} restriction(s), valid {}..{}",
                cert.serial,
                how,
                cert.restrictions.len(),
                cert.validity.from,
                cert.validity.until,
            );
        }
        out
    }

    /// Derives a more-restricted proxy by signing a new certificate with
    /// the current proxy key (bearer cascade, Fig. 4).
    ///
    /// The new certificate carries only `additional` restrictions — the
    /// parent's restrictions keep applying because the parent certificates
    /// stay in the chain. The requested validity is clipped to the parent's
    /// effective window.
    ///
    /// # Errors
    ///
    /// [`GrantError::ValidityOutsideParent`] when `validity` does not
    /// overlap the parent's effective window.
    pub fn derive<R: RngCore>(
        &self,
        additional: RestrictionSet,
        validity: Validity,
        serial: u64,
        rng: &mut R,
    ) -> Result<Proxy, GrantError> {
        let parent_window = self.effective_validity().ok_or(GrantError::EmptyParent)?;
        let validity = validity
            .intersect(&parent_window)
            .ok_or(GrantError::ValidityOutsideParent)?;
        let grantor = self.grantor().clone();
        let (new_key, key_material, sealer): (ProxyKey, KeyMaterial, Sealer<'_>) = match &self.key {
            ProxyKey::Symmetric(old) => {
                let fresh = SymmetricKey::generate(rng);
                let material = KeyMaterial::seal_symmetric(&fresh, old, rng);
                (ProxyKey::Symmetric(fresh), material, Sealer::Hmac(old))
            }
            ProxyKey::Ed25519(old) => {
                let fresh = proxy_crypto::ed25519::SigningKey::generate(rng);
                let material = KeyMaterial::PublicKey(fresh.verifying_key());
                (ProxyKey::Ed25519(fresh), material, Sealer::Ed25519(old))
            }
        };
        let mut cert = Certificate {
            grantor,
            serial,
            validity,
            restrictions: additional,
            key_material,
            authority: SigningAuthorityKind::PriorProxyKey,
            seal: CertSeal::Hmac([0u8; 32]),
        };
        cert.seal = sealer.seal(&cert.body_bytes());
        let mut certs = self.certs.clone();
        certs.push(cert);
        Ok(Proxy {
            certs,
            key: new_key,
        })
    }
}

enum Sealer<'a> {
    Hmac(&'a SymmetricKey),
    Ed25519(&'a proxy_crypto::ed25519::SigningKey),
}

impl Sealer<'_> {
    fn seal(&self, body: &[u8]) -> CertSeal {
        match self {
            Sealer::Hmac(key) => CertSeal::Hmac(HmacSha256::mac(key.as_bytes(), body)),
            Sealer::Ed25519(key) => CertSeal::Ed25519(key.sign(body)),
        }
    }
}

fn grantor_sealed_cert<R: RngCore>(
    grantor: &PrincipalId,
    authority: &GrantAuthority,
    restrictions: RestrictionSet,
    validity: Validity,
    serial: u64,
    rng: &mut R,
) -> (Certificate, ProxyKey) {
    let (key, key_material, sealer) = match authority {
        GrantAuthority::SharedKey(shared) => {
            let fresh = SymmetricKey::generate(rng);
            let material = KeyMaterial::seal_symmetric(&fresh, shared, rng);
            (ProxyKey::Symmetric(fresh), material, Sealer::Hmac(shared))
        }
        GrantAuthority::Keypair(sk) => {
            let fresh = proxy_crypto::ed25519::SigningKey::generate(rng);
            let material = KeyMaterial::PublicKey(fresh.verifying_key());
            (ProxyKey::Ed25519(fresh), material, Sealer::Ed25519(sk))
        }
    };
    let mut cert = Certificate {
        grantor: grantor.clone(),
        serial,
        validity,
        restrictions,
        key_material,
        authority: SigningAuthorityKind::Grantor,
        seal: CertSeal::Hmac([0u8; 32]),
    };
    cert.seal = sealer.seal(&cert.body_bytes());
    (cert, key)
}

/// Grants a fresh restricted proxy (Fig. 1).
///
/// For a *bearer* proxy, leave `grantee` restrictions out of
/// `restrictions`; for a *delegate* proxy include one (§7.1). The returned
/// [`Proxy`] bundles the certificate and the secret proxy key; transfer to
/// the grantee must protect the key from disclosure (§2).
pub fn grant<R: RngCore>(
    grantor: &PrincipalId,
    authority: &GrantAuthority,
    restrictions: RestrictionSet,
    validity: Validity,
    serial: u64,
    rng: &mut R,
) -> Proxy {
    let (cert, key) = grantor_sealed_cert(grantor, authority, restrictions, validity, serial, rng);
    Proxy {
        certs: vec![cert],
        key,
    }
}

/// Passes a delegate proxy to a subordinate (§3.4).
///
/// `parent_certs` is the chain of the delegate proxy naming `intermediate`;
/// the new certificate is signed directly by `intermediate` (not with the
/// proxy key), names `subordinate` as its grantee, and is appended to the
/// chain — so the chain records exactly which intermediaries took part (the
/// audit trail the paper contrasts with bearer cascades).
///
/// # Errors
///
/// [`GrantError::EmptyParent`] when `parent_certs` is empty;
/// [`GrantError::ValidityOutsideParent`] when `validity` does not overlap
/// the parent chain's effective window.
#[allow(clippy::too_many_arguments)]
pub fn delegate_cascade<R: RngCore>(
    parent_certs: &[Certificate],
    intermediate: &PrincipalId,
    authority: &GrantAuthority,
    subordinate: PrincipalId,
    additional: RestrictionSet,
    validity: Validity,
    serial: u64,
    rng: &mut R,
) -> Result<Proxy, GrantError> {
    if parent_certs.is_empty() {
        return Err(GrantError::EmptyParent);
    }
    let mut window = parent_certs[0].validity;
    for cert in &parent_certs[1..] {
        window = window
            .intersect(&cert.validity)
            .ok_or(GrantError::ValidityOutsideParent)?;
    }
    let validity = validity
        .intersect(&window)
        .ok_or(GrantError::ValidityOutsideParent)?;
    let restrictions = additional.with(Restriction::grantee_one(subordinate));
    let (cert, key) =
        grantor_sealed_cert(intermediate, authority, restrictions, validity, serial, rng);
    let mut certs = parent_certs.to_vec();
    certs.push(cert);
    Ok(Proxy { certs, key })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restriction::{ObjectName, Operation};
    use crate::time::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn window(a: u64, b: u64) -> Validity {
        Validity::new(Timestamp(a), Timestamp(b))
    }

    fn symmetric_authority(rng: &mut StdRng) -> GrantAuthority {
        GrantAuthority::SharedKey(SymmetricKey::generate(rng))
    }

    #[test]
    fn grant_produces_single_cert_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let auth = symmetric_authority(&mut rng);
        let proxy = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(0, 100),
            1,
            &mut rng,
        );
        assert_eq!(proxy.certs.len(), 1);
        assert_eq!(proxy.grantor(), &p("alice"));
        assert!(!proxy.is_delegate());
        assert_eq!(proxy.effective_validity(), Some(window(0, 100)));
    }

    #[test]
    fn derive_appends_and_narrows_validity() {
        let mut rng = StdRng::seed_from_u64(2);
        let auth = symmetric_authority(&mut rng);
        let parent = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(0, 100),
            1,
            &mut rng,
        );
        let child = parent
            .derive(
                RestrictionSet::new().with(Restriction::authorize_op(
                    ObjectName::new("f"),
                    Operation::new("read"),
                )),
                window(0, 500),
                2,
                &mut rng,
            )
            .unwrap();
        assert_eq!(child.certs.len(), 2);
        // Clipped to the parent's window.
        assert_eq!(child.effective_validity(), Some(window(0, 100)));
        assert_eq!(child.combined_restrictions().len(), 1);
        assert_eq!(child.grantor(), &p("alice"));
        assert_eq!(
            child.certs[1].authority,
            SigningAuthorityKind::PriorProxyKey
        );
    }

    #[test]
    fn derive_rejects_disjoint_validity() {
        let mut rng = StdRng::seed_from_u64(3);
        let auth = symmetric_authority(&mut rng);
        let parent = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(0, 10),
            1,
            &mut rng,
        );
        let err = parent
            .derive(RestrictionSet::new(), window(10, 20), 2, &mut rng)
            .unwrap_err();
        assert_eq!(err, GrantError::ValidityOutsideParent);
    }

    #[test]
    fn derive_chains_deepen() {
        let mut rng = StdRng::seed_from_u64(4);
        let auth = GrantAuthority::Keypair(proxy_crypto::ed25519::SigningKey::generate(&mut rng));
        let mut proxy = grant(
            &p("a"),
            &auth,
            RestrictionSet::new(),
            window(0, 1000),
            0,
            &mut rng,
        );
        for i in 1..=5 {
            proxy = proxy
                .derive(
                    RestrictionSet::new().with(Restriction::AcceptOnce { id: i }),
                    window(0, 1000),
                    i,
                    &mut rng,
                )
                .unwrap();
        }
        assert_eq!(proxy.certs.len(), 6);
        assert_eq!(proxy.combined_restrictions().len(), 5);
    }

    #[test]
    fn delegate_cascade_names_subordinate_and_keeps_audit_trail() {
        let mut rng = StdRng::seed_from_u64(5);
        let alice_auth = symmetric_authority(&mut rng);
        let parent = grant(
            &p("alice"),
            &alice_auth,
            RestrictionSet::new().with(Restriction::grantee_one(p("printserver"))),
            window(0, 100),
            1,
            &mut rng,
        );
        assert!(parent.is_delegate());
        let print_auth = symmetric_authority(&mut rng);
        let child = delegate_cascade(
            &parent.certs,
            &p("printserver"),
            &print_auth,
            p("fileserver"),
            RestrictionSet::new(),
            window(0, 100),
            2,
            &mut rng,
        )
        .unwrap();
        assert_eq!(child.certs.len(), 2);
        // Audit trail: the new link records the intermediate's identity.
        assert_eq!(child.certs[1].grantor, p("printserver"));
        assert_eq!(child.certs[1].authority, SigningAuthorityKind::Grantor);
        assert!(child.certs[1].restrictions.has_grantee());
        // The chain still conveys alice's rights.
        assert_eq!(child.grantor(), &p("alice"));
    }

    #[test]
    fn delegate_cascade_rejects_empty_parent() {
        let mut rng = StdRng::seed_from_u64(6);
        let auth = symmetric_authority(&mut rng);
        let err = delegate_cascade(
            &[],
            &p("i"),
            &auth,
            p("s"),
            RestrictionSet::new(),
            window(0, 10),
            0,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, GrantError::EmptyParent);
    }

    #[test]
    fn combined_restrictions_union_across_links() {
        let mut rng = StdRng::seed_from_u64(7);
        let auth = symmetric_authority(&mut rng);
        let r1 = Restriction::issued_for_one(p("s1"));
        let r2 = Restriction::AcceptOnce { id: 9 };
        let parent = grant(
            &p("a"),
            &auth,
            RestrictionSet::new().with(r1.clone()),
            window(0, 100),
            1,
            &mut rng,
        );
        let child = parent
            .derive(
                RestrictionSet::new().with(r2.clone()),
                window(0, 100),
                2,
                &mut rng,
            )
            .unwrap();
        let combined = child.combined_restrictions();
        assert!(combined.iter().any(|r| *r == r1));
        assert!(combined.iter().any(|r| *r == r2));
    }

    #[test]
    fn audit_trail_names_intermediaries_only_on_delegate_cascades() {
        let mut rng = StdRng::seed_from_u64(8);
        let auth = symmetric_authority(&mut rng);
        let parent = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new().with(Restriction::grantee_one(p("spooler"))),
            window(0, 100),
            1,
            &mut rng,
        );
        let spool_auth = symmetric_authority(&mut rng);
        let cascaded = delegate_cascade(
            &parent.certs,
            &p("spooler"),
            &spool_auth,
            p("worker"),
            RestrictionSet::new(),
            window(0, 100),
            2,
            &mut rng,
        )
        .unwrap();
        let trail = cascaded.audit_trail();
        assert!(trail.contains("sealed by alice"));
        assert!(trail.contains("sealed by spooler"));
        // Bearer cascade: anonymous.
        let bearer = grant(
            &p("alice"),
            &auth,
            RestrictionSet::new(),
            window(0, 100),
            3,
            &mut rng,
        )
        .derive(RestrictionSet::new(), window(0, 100), 4, &mut rng)
        .unwrap();
        assert!(bearer.audit_trail().contains("anonymous"));
    }
}
