//! Canonical, deterministic byte encoding.
//!
//! Certificates are signed over their byte encoding, so the encoding must
//! be canonical: one value, one byte string. This module provides a small
//! length-prefixed binary codec (no external serializers, no ambiguity).
//! All integers are little-endian; collections are length-prefixed with a
//! `u32` count; strings are UTF-8 with a `u32` byte length.

use std::fmt;

/// Errors produced when decoding a wire value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input (or a sanity bound).
    BadLength(u64),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An enum tag byte was not recognized.
    BadTag(u8),
    /// The input had trailing bytes after the value.
    TrailingBytes(usize),
    /// A field decoded structurally but held a semantically invalid value
    /// (e.g. an empty principal name).
    InvalidValue(&'static str),
    /// Nested values exceeded the decoder's depth bound (e.g. a
    /// `limit`-restriction tree deep enough to threaten the stack).
    TooDeep(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadLength(n) => write!(f, "implausible length prefix {n}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::BadTag(t) => write!(f, "unrecognized tag byte {t:#04x}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            DecodeError::TooDeep(max) => write!(f, "nesting deeper than {max} levels"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum accepted collection length; prevents allocation bombs when
/// decoding attacker-supplied bytes.
const MAX_COLLECTION: u32 = 1 << 20;

/// Default bound on recursive nesting accepted by a [`Decoder`]
/// (see [`Decoder::descend`]). Legitimate encodings nest one or two
/// levels; sixteen leaves headroom without letting hostile input recurse
/// toward stack exhaustion.
pub const MAX_DECODE_DEPTH: usize = 16;

/// Append-only canonical encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty encoder with `capacity` bytes pre-reserved, so an
    /// encode of known size pays exactly one allocation.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Creates an encoder that appends to `buf`, preserving its existing
    /// contents and capacity — the reusable-scratch-buffer encode path:
    /// a pooled buffer cycles through `from_vec` → encode → [`finish`]
    /// without ever reallocating once warm.
    ///
    /// [`finish`]: Self::finish
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Finishes encoding and returns the bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends raw bytes with a u32 length prefix.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(u32::try_from(v.len()).expect("value too large to encode"));
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed nested value encoded in place: writes a
    /// `u32` length placeholder, runs `f` against this encoder, then
    /// backfills the placeholder with the number of bytes `f` appended.
    ///
    /// Byte-identical to encoding the nested value into a temporary
    /// encoder and appending it with [`bytes`](Self::bytes), without the
    /// temporary allocation — the scratch-buffer path for hot encodes.
    ///
    /// # Panics
    ///
    /// Panics if the nested value exceeds `u32::MAX` bytes.
    pub fn nested(&mut self, f: impl FnOnce(&mut Self)) -> &mut Self {
        let len_at = self.buf.len();
        self.u32(0);
        let start = self.buf.len();
        f(self);
        let len = u32::try_from(self.buf.len() - start).expect("nested value too large to encode");
        if let Some(slot) = self.buf.get_mut(len_at..start) {
            slot.copy_from_slice(&len.to_le_bytes());
        }
        self
    }

    /// Appends fixed-width raw bytes with no length prefix (for keys,
    /// tags, and signatures whose width is fixed by context).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a UTF-8 string with a u32 length prefix.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Appends a collection count prefix.
    pub fn count(&mut self, n: usize) -> &mut Self {
        self.u32(u32::try_from(n).expect("collection too large to encode"))
    }
}

/// Cursor-based canonical decoder.
#[derive(Debug)]
pub struct Decoder<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `input`.
    #[must_use]
    pub fn new(input: &'a [u8]) -> Self {
        Self {
            input,
            pos: 0,
            depth: 0,
            max_depth: MAX_DECODE_DEPTH,
        }
    }

    /// Replaces the nesting bound enforced by [`Decoder::descend`].
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Bytes not yet consumed.
    ///
    /// Outer protocols (the wire framing) use this to cap what a nested
    /// value may claim to contain before allocating for it.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Enters one level of recursive decoding; pair with
    /// [`Decoder::ascend`]. Recursive decoders (the `limit` restriction
    /// holds a nested restriction list) call this so attacker-chosen
    /// nesting is bounded in one place rather than per message.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TooDeep`] when nesting exceeds the configured bound.
    pub fn descend(&mut self) -> Result<(), DecodeError> {
        if self.depth >= self.max_depth {
            return Err(DecodeError::TooDeep(self.max_depth));
        }
        self.depth += 1;
        Ok(())
    }

    /// Leaves one level of recursive decoding.
    pub fn ascend(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Asserts the input is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] when bytes remain.
    pub fn finish(self) -> Result<(), DecodeError> {
        let rest = self.input.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(rest))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEnd)?;
        let out = self
            .input
            .get(self.pos..end)
            .ok_or(DecodeError::UnexpectedEnd)?;
        self.pos = end;
        Ok(out)
    }

    /// Reads exactly `N` bytes as an array.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when fewer than `N` bytes remain.
    pub fn raw_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        self.take(N)?
            .first_chunk::<N>()
            .copied()
            .ok_or(DecodeError::UnexpectedEnd)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when the input is exhausted.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let [b] = self.raw_array::<1>()?;
        Ok(b)
    }

    /// Reads a little-endian u16.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when the input is exhausted.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.raw_array::<2>()?))
    }

    /// Reads a little-endian u32.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when the input is exhausted.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.raw_array::<4>()?))
    }

    /// Reads a little-endian u64.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when the input is exhausted.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.raw_array::<8>()?))
    }

    /// Reads a u32-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadLength`] on implausible lengths,
    /// [`DecodeError::UnexpectedEnd`] when truncated.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()?;
        if len > MAX_COLLECTION {
            return Err(DecodeError::BadLength(len as u64));
        }
        self.take(len as usize)
    }

    /// Reads fixed-width raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] when truncated.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads a UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadUtf8`] on invalid UTF-8, plus the errors of
    /// [`Decoder::bytes`].
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a principal name, rejecting empty names.
    ///
    /// # Errors
    ///
    /// [`DecodeError::InvalidValue`] for empty names, plus the errors of
    /// [`Decoder::str`].
    pub fn principal(&mut self) -> Result<crate::principal::PrincipalId, DecodeError> {
        crate::principal::PrincipalId::try_new(self.str()?)
            .ok_or(DecodeError::InvalidValue("empty principal name"))
    }

    /// Reads a collection count prefix.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadLength`] when the count exceeds the sanity bound.
    pub fn count(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()?;
        if n > MAX_COLLECTION {
            return Err(DecodeError::BadLength(n as u64));
        }
        Ok(n as usize)
    }

    /// Reads a collection count prefix and additionally requires that
    /// `count * min_item_bytes` fit in the remaining input, so a count
    /// can never commit the caller to allocating more than the input
    /// could possibly justify. Collection decoders should prefer this
    /// over [`Decoder::count`] whenever each element occupies at least
    /// `min_item_bytes` on the wire.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadLength`] when the count exceeds the sanity
    /// bound or outruns the remaining input.
    pub fn counted(&mut self, min_item_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.count()?;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(DecodeError::BadLength(n as u64));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut e = Encoder::new();
        e.u8(7)
            .u32(0xdead_beef)
            .u64(u64::MAX)
            .str("hello")
            .bytes(b"\x00\x01");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xdead_beef);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.bytes().unwrap(), b"\x00\x01");
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.u64(1);
        let buf = e.finish();
        let mut d = Decoder::new(&buf[..4]);
        assert_eq!(d.u64(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn every_primitive_errors_on_short_input() {
        // Regression: these paths once sliced/`expect`ed internally; a
        // hostile short buffer must come back as UnexpectedEnd at every
        // width, never a panic.
        assert_eq!(Decoder::new(&[]).u8(), Err(DecodeError::UnexpectedEnd));
        assert_eq!(
            Decoder::new(&[1, 2, 3]).u32(),
            Err(DecodeError::UnexpectedEnd)
        );
        assert_eq!(
            Decoder::new(&[1, 2, 3, 4, 5, 6, 7]).u64(),
            Err(DecodeError::UnexpectedEnd)
        );
        assert_eq!(
            Decoder::new(&[0u8; 31]).raw_array::<32>(),
            Err(DecodeError::UnexpectedEnd)
        );
        let mut d = Decoder::new(&[9, 8]);
        assert_eq!(d.raw_array::<2>(), Ok([9, 8]));
        d.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.u8(1).u8(2);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 1);
        assert_eq!(d.finish(), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut d = Decoder::new(&buf);
        assert_eq!(d.bytes(), Err(DecodeError::BadLength(u32::MAX as u64)));
        let mut d = Decoder::new(&buf);
        assert_eq!(d.count(), Err(DecodeError::BadLength(u32::MAX as u64)));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut e = Encoder::new();
        e.bytes(&[0xff, 0xfe]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.str(), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn counted_rejects_counts_exceeding_remaining_input() {
        // Claims 1000 elements of >= 4 bytes each, but only 8 bytes follow.
        let mut e = Encoder::new();
        e.count(1000).u64(0);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.counted(4), Err(DecodeError::BadLength(1000)));
        // The same count is fine when the input could actually hold it.
        let mut e = Encoder::new();
        e.count(2).u64(0);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.counted(4), Ok(2));
    }

    #[test]
    fn depth_guard_stops_runaway_recursion() {
        let mut d = Decoder::new(&[]).with_max_depth(2);
        d.descend().unwrap();
        d.descend().unwrap();
        assert_eq!(d.descend(), Err(DecodeError::TooDeep(2)));
        d.ascend();
        assert!(d.descend().is_ok());
    }

    #[test]
    fn remaining_tracks_cursor() {
        let mut e = Encoder::new();
        e.u32(7).u8(1);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.remaining(), 5);
        d.u32().unwrap();
        assert_eq!(d.remaining(), 1);
    }

    #[test]
    fn encoding_is_deterministic() {
        let encode = || {
            let mut e = Encoder::new();
            e.str("abc").u64(42).count(3);
            e.finish()
        };
        assert_eq!(encode(), encode());
    }
}
