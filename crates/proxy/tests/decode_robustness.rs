//! Decoder robustness: arbitrary attacker-supplied bytes must produce
//! errors, never panics, across every wire structure in the workspace.

use proptest::prelude::*;

use proxy_crypto::keys::SymmetricKey;
use restricted_proxy::cert::Certificate;
use restricted_proxy::encode::Decoder;
use restricted_proxy::nameserver::KeyBinding;
use restricted_proxy::present::Presentation;
use restricted_proxy::proxy::Proxy;
use restricted_proxy::restriction::RestrictionSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn certificate_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Certificate::decode(&bytes);
    }

    #[test]
    fn presentation_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Presentation::decode(&bytes);
    }

    #[test]
    fn restriction_set_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut d = Decoder::new(&bytes);
        let _ = RestrictionSet::decode_from(&mut d);
    }

    #[test]
    fn key_binding_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = KeyBinding::decode(&bytes);
    }

    #[test]
    fn transfer_unseal_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512),
                                    key in any::<[u8; 32]>()) {
        let _ = Proxy::unseal_transfer(&bytes, &SymmetricKey::from_bytes(key));
    }

    /// Valid prefixes with garbage appended are rejected (trailing bytes).
    #[test]
    fn trailing_garbage_rejected(tail in proptest::collection::vec(any::<u8>(), 1..16)) {
        use rand::SeedableRng;
        use restricted_proxy::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let shared = SymmetricKey::generate(&mut rng);
        let proxy = grant(
            &PrincipalId::new("alice"),
            &GrantAuthority::SharedKey(shared),
            RestrictionSet::new(),
            Validity::new(Timestamp(0), Timestamp(10)),
            1,
            &mut rng,
        );
        let mut wire = proxy.certs[0].encode();
        wire.extend_from_slice(&tail);
        prop_assert!(Certificate::decode(&wire).is_err());
    }
}
