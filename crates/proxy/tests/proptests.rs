//! Property-based tests for the restricted-proxy core.
//!
//! The central invariant is the paper's §2: a derived proxy is *never* more
//! powerful than its parent — restrictions accumulate monotonically.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_crypto::keys::SymmetricKey;
use restricted_proxy::encode::{Decoder, Encoder};
use restricted_proxy::prelude::*;

fn principal_strategy() -> impl Strategy<Value = PrincipalId> {
    prop_oneof![
        Just(PrincipalId::new("alice")),
        Just(PrincipalId::new("bob")),
        Just(PrincipalId::new("fs")),
        Just(PrincipalId::new("mail")),
        Just(PrincipalId::new("gs")),
    ]
}

fn group_strategy() -> impl Strategy<Value = GroupName> {
    (
        principal_strategy(),
        prop_oneof![Just("staff"), Just("admins")],
    )
        .prop_map(|(server, name)| GroupName::new(server, name))
}

fn currency_strategy() -> impl Strategy<Value = Currency> {
    prop_oneof![Just(Currency::new("USD")), Just(Currency::new("pages"))]
}

fn leaf_restriction_strategy() -> impl Strategy<Value = Restriction> {
    prop_oneof![
        (
            proptest::collection::vec(principal_strategy(), 1..4),
            1u32..3
        )
            .prop_map(|(delegates, required)| {
                let required = required.min(delegates.len() as u32);
                Restriction::Grantee {
                    delegates,
                    required,
                }
            }),
        (proptest::collection::vec(group_strategy(), 1..3), 1u32..2)
            .prop_map(|(groups, required)| Restriction::ForUseByGroup { groups, required }),
        proptest::collection::vec(principal_strategy(), 1..3)
            .prop_map(|servers| Restriction::IssuedFor { servers }),
        (currency_strategy(), 0u64..1000)
            .prop_map(|(currency, limit)| Restriction::Quota { currency, limit }),
        prop_oneof![Just("fileA"), Just("fileB")].prop_map(|o| {
            Restriction::Authorized {
                entries: vec![AuthorizedEntry::ops(
                    ObjectName::new(o),
                    vec![Operation::new("read"), Operation::new("write")],
                )],
            }
        }),
        proptest::collection::vec(group_strategy(), 0..3)
            .prop_map(|groups| Restriction::GroupMembership { groups }),
        (0u64..100).prop_map(|id| Restriction::AcceptOnce { id }),
    ]
}

fn restriction_strategy() -> impl Strategy<Value = Restriction> {
    prop_oneof![
        4 => leaf_restriction_strategy(),
        1 => (
            proptest::collection::vec(principal_strategy(), 1..3),
            proptest::collection::vec(leaf_restriction_strategy(), 0..3),
        )
            .prop_map(|(servers, restrictions)| Restriction::LimitRestriction {
                servers,
                restrictions,
            }),
    ]
}

fn restriction_set_strategy(max: usize) -> impl Strategy<Value = RestrictionSet> {
    proptest::collection::vec(restriction_strategy(), 0..max).prop_map(RestrictionSet::from_vec)
}

fn ctx_strategy() -> impl Strategy<Value = RequestContext> {
    (
        principal_strategy(),
        prop_oneof![Just("read"), Just("write")],
        prop_oneof![Just("fileA"), Just("fileB")],
        proptest::collection::vec(principal_strategy(), 0..3),
        proptest::collection::vec(group_strategy(), 0..3),
        proptest::collection::vec((currency_strategy(), 0u64..2000), 0..2),
    )
        .prop_map(|(server, op, obj, authenticated, groups, amounts)| {
            let mut ctx = RequestContext::new(server, Operation::new(op), ObjectName::new(obj))
                .at(Timestamp(10));
            ctx.authenticated = authenticated;
            ctx.asserted_groups = groups;
            ctx.amounts = amounts;
            ctx
        })
}

proptest! {
    /// Monotonicity: any request a derived (more-restricted) proxy allows,
    /// the parent proxy also allows. Equivalently: deriving can only shrink
    /// authority.
    #[test]
    fn derived_proxy_never_exceeds_parent(
        parent_set in restriction_set_strategy(4),
        child_set in restriction_set_strategy(3),
        ctx in ctx_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = SymmetricKey::generate(&mut rng);
        let grantor = PrincipalId::new("alice");
        let auth = GrantAuthority::SharedKey(shared.clone());
        let validity = Validity::new(Timestamp(0), Timestamp(1000));
        let parent = grant(&grantor, &auth, parent_set, validity, 1, &mut rng);
        let child = parent.derive(child_set, validity, 2, &mut rng).unwrap();

        let resolver = MapResolver::new()
            .with(grantor.clone(), GrantorVerifier::SharedKey(shared));
        let verifier = Verifier::new(ctx.server.clone(), resolver);

        let child_pres = child.present_bearer([1u8; 32], &ctx.server);
        let parent_pres = parent.present_bearer([2u8; 32], &ctx.server);
        // Fresh replay guards so accept-once state doesn't couple the runs.
        let child_ok = verifier
            .verify(&child_pres, &ctx, &mut MemoryReplayGuard::new())
            .is_ok();
        let parent_ok = verifier
            .verify(&parent_pres, &ctx, &mut MemoryReplayGuard::new())
            .is_ok();
        prop_assert!(!child_ok || parent_ok,
            "child allowed a request the parent denies");
    }

    /// The additive union itself is monotone: adding restrictions can turn
    /// an allow into a deny but never a deny into an allow.
    #[test]
    fn union_is_monotone(
        a in restriction_set_strategy(4),
        b in restriction_set_strategy(4),
        ctx in ctx_strategy(),
    ) {
        let grantor = PrincipalId::new("alice");
        let u = a.union(&b);
        let a_ok = a
            .evaluate(&ctx, &grantor, Timestamp(1000), &mut MemoryReplayGuard::new())
            .is_ok();
        let u_ok = u
            .evaluate(&ctx, &grantor, Timestamp(1000), &mut MemoryReplayGuard::new())
            .is_ok();
        prop_assert!(!u_ok || a_ok, "union allowed what a component denies");
    }

    /// Union is commutative with respect to evaluation outcomes.
    #[test]
    fn union_evaluation_commutes(
        a in restriction_set_strategy(3),
        b in restriction_set_strategy(3),
        ctx in ctx_strategy(),
    ) {
        let grantor = PrincipalId::new("alice");
        let ab = a.union(&b);
        let ba = b.union(&a);
        let r1 = ab.evaluate(&ctx, &grantor, Timestamp(1000), &mut MemoryReplayGuard::new());
        let r2 = ba.evaluate(&ctx, &grantor, Timestamp(1000), &mut MemoryReplayGuard::new());
        prop_assert_eq!(r1.is_ok(), r2.is_ok());
    }

    /// Restriction sets survive the wire.
    #[test]
    fn restriction_set_round_trips(set in restriction_set_strategy(6)) {
        let mut e = Encoder::new();
        set.encode_into(&mut e);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let decoded = RestrictionSet::decode_from(&mut d).unwrap();
        d.finish().unwrap();
        prop_assert_eq!(decoded, set);
    }

    /// Certificates and presentations survive the wire, and a decoded
    /// presentation still verifies.
    #[test]
    fn presentation_round_trips_and_verifies(
        set in restriction_set_strategy(3),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = SymmetricKey::generate(&mut rng);
        let grantor = PrincipalId::new("alice");
        let fs = PrincipalId::new("fs");
        let auth = GrantAuthority::SharedKey(shared.clone());
        let proxy = grant(
            &grantor,
            &auth,
            set,
            Validity::new(Timestamp(0), Timestamp(1000)),
            1,
            &mut rng,
        );
        let pres = proxy.present_bearer([9u8; 32], &fs);
        let decoded = Presentation::decode(&pres.encode()).unwrap();
        prop_assert_eq!(&decoded, &pres);
        // Whatever the restrictions, seal + possession checks must pass
        // (restriction evaluation may legitimately deny).
        let resolver = MapResolver::new()
            .with(grantor, GrantorVerifier::SharedKey(shared));
        let verifier = Verifier::new(fs.clone(), resolver);
        let ctx = RequestContext::new(fs, Operation::new("read"), ObjectName::new("fileA"))
            .at(Timestamp(10));
        match verifier.verify(&decoded, &ctx, &mut MemoryReplayGuard::new()) {
            Ok(_) | Err(VerifyError::Denied(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
        }
    }

    /// Tampering with any byte of a certificate on the wire breaks either
    /// decoding or seal verification — never yields a different valid proxy.
    #[test]
    fn certificate_tampering_never_verifies(
        set in restriction_set_strategy(3),
        seed in any::<u64>(),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = SymmetricKey::generate(&mut rng);
        let grantor = PrincipalId::new("alice");
        let fs = PrincipalId::new("fs");
        let auth = GrantAuthority::SharedKey(shared.clone());
        let proxy = grant(
            &grantor,
            &auth,
            set,
            Validity::new(Timestamp(0), Timestamp(1000)),
            1,
            &mut rng,
        );
        let pres = proxy.present_bearer([3u8; 32], &fs);
        let mut wire = pres.certs[0].encode();
        let idx = flip_byte % wire.len();
        wire[idx] ^= 1 << flip_bit;
        let Ok(tampered) = restricted_proxy::cert::Certificate::decode(&wire) else {
            return Ok(()); // decoding rejected the tampering — fine
        };
        if tampered == pres.certs[0] {
            return Ok(()); // flip landed in encoding slack? (should not happen)
        }
        let mut tampered_pres = pres.clone();
        tampered_pres.certs[0] = tampered;
        let resolver = MapResolver::new()
            .with(grantor, GrantorVerifier::SharedKey(shared));
        let verifier = Verifier::new(fs.clone(), resolver);
        let ctx = RequestContext::new(fs, Operation::new("read"), ObjectName::new("fileA"))
            .at(Timestamp(10));
        let result = verifier.verify(&tampered_pres, &ctx, &mut MemoryReplayGuard::new());
        prop_assert!(
            result.is_err(),
            "tampered certificate verified: {result:?}"
        );
    }
}
