//! On-disk record framing for the write-ahead log.
//!
//! Every record is framed as `[u32 payload-length][u32 crc32(payload)]
//! [payload]`, little-endian, using the same CRC-32C as the wire layer
//! (`proxy_wire::crc`). The format is deliberately dumb: a segment is a
//! concatenation of frames with no index, so the only failure modes are
//! a *torn tail* (the residue of a crash mid-write — a frame whose
//! header or payload runs past end-of-file) and *corruption* (a frame
//! that is structurally complete but fails its integrity check).
//!
//! The distinction is load-bearing for crash recovery (DESIGN.md §15.3):
//!
//! * A torn tail is expected after a kill between `write` and `fsync`.
//!   The truncated record was never acknowledged durable, so recovery
//!   drops it and truncates the segment to the last whole record.
//! * A CRC mismatch or implausible length *before* end-of-file cannot be
//!   produced by tearing an append-only stream — appends never rewrite
//!   earlier bytes — so it is bit rot or tampering, and recovery refuses
//!   to proceed past it (fail-closed), naming the exact record.
//!
//! This module is pure byte manipulation (no I/O) and sits on the
//! proxy-lint L1 panic-freedom scope: decode rejects hostile or damaged
//! input with typed errors, never a panic.

use proxy_wire::crc::crc32;

use crate::{CorruptKind, StorageError, MAX_RECORD};

/// Frame header width: length prefix plus CRC.
pub const FRAME_HEADER: usize = 8;

/// Appends one framed record onto `buf`.
///
/// # Errors
///
/// [`StorageError::TooLarge`] when the record exceeds [`MAX_RECORD`].
pub fn frame_into(buf: &mut Vec<u8>, record: &[u8]) -> Result<(), StorageError> {
    if record.len() > MAX_RECORD {
        return Err(StorageError::TooLarge(record.len()));
    }
    let len = u32::try_from(record.len()).map_err(|_| StorageError::TooLarge(record.len()))?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&crc32(record).to_le_bytes());
    buf.extend_from_slice(record);
    Ok(())
}

/// The result of scanning one log segment.
#[derive(Debug, Clone, Default)]
pub struct SegmentScan {
    /// The whole, integrity-checked records, in order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of the segment covered by whole records; a recovering
    /// backend truncates the file to this length when a tail was torn.
    pub valid_len: u64,
    /// True when the segment ended in an incomplete frame.
    pub torn_tail: bool,
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let raw = bytes.get(at..at.checked_add(4)?)?;
    let arr: [u8; 4] = raw.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Scans a segment's bytes into whole records, distinguishing a torn
/// tail (tolerated, truncated) from corruption (fail-closed error at the
/// exact record).
///
/// # Errors
///
/// [`StorageError::Corrupt`] at the first record whose CRC fails or
/// whose length prefix is implausible while the frame is structurally
/// complete.
pub fn scan_segment(bytes: &[u8]) -> Result<SegmentScan, StorageError> {
    let mut scan = SegmentScan::default();
    let mut pos: usize = 0;
    let mut index: u64 = 0;
    while pos < bytes.len() {
        let corrupt = |reason: CorruptKind| StorageError::Corrupt {
            record: index,
            offset: pos as u64,
            reason,
        };
        let (Some(len), Some(crc)) = (read_u32(bytes, pos), read_u32(bytes, pos.wrapping_add(4)))
        else {
            // Header itself is truncated: torn tail.
            scan.torn_tail = true;
            break;
        };
        let len = len as usize;
        if len > MAX_RECORD {
            // A length a writer could never have framed: corruption even
            // at the tail (torn writes only shorten, they cannot invent
            // an implausible header that passed `frame_into`'s bound).
            return Err(corrupt(CorruptKind::ImplausibleLength(len as u64)));
        }
        let body_start = match pos.checked_add(FRAME_HEADER) {
            Some(s) => s,
            None => return Err(corrupt(CorruptKind::ImplausibleLength(len as u64))),
        };
        let body_end = match body_start.checked_add(len) {
            Some(e) => e,
            None => return Err(corrupt(CorruptKind::ImplausibleLength(len as u64))),
        };
        let Some(payload) = bytes.get(body_start..body_end) else {
            // Payload runs past end-of-file: torn tail.
            scan.torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            return Err(corrupt(CorruptKind::CrcMismatch));
        }
        scan.records.push(payload.to_vec());
        pos = body_end;
        index = index.saturating_add(1);
    }
    scan.valid_len = pos as u64;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(records: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in records {
            frame_into(&mut buf, r).expect("frame");
        }
        buf
    }

    #[test]
    fn round_trip_multiple_records() {
        let buf = segment(&[b"alpha", b"", b"gamma-gamma"]);
        let scan = scan_segment(&buf).expect("scan");
        assert_eq!(
            scan.records,
            vec![b"alpha".to_vec(), vec![], b"gamma-gamma".to_vec()]
        );
        assert_eq!(scan.valid_len, buf.len() as u64);
        assert!(!scan.torn_tail);
    }

    #[test]
    fn torn_header_is_tolerated_and_truncated() {
        let mut buf = segment(&[b"whole"]);
        let good = buf.len();
        buf.extend_from_slice(&[7, 0, 0]); // 3 bytes of a future header
        let scan = scan_segment(&buf).expect("scan");
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, good as u64);
        assert!(scan.torn_tail);
    }

    #[test]
    fn torn_payload_is_tolerated_and_truncated() {
        let mut buf = segment(&[b"whole"]);
        let good = buf.len();
        let mut tail = Vec::new();
        frame_into(&mut tail, b"lost-in-the-crash").expect("frame");
        tail.truncate(tail.len() - 5);
        buf.extend_from_slice(&tail);
        let scan = scan_segment(&buf).expect("scan");
        assert_eq!(scan.records, vec![b"whole".to_vec()]);
        assert_eq!(scan.valid_len, good as u64);
        assert!(scan.torn_tail);
    }

    #[test]
    fn bit_flip_is_fail_closed_at_the_exact_record() {
        let mut buf = segment(&[b"first", b"second", b"third"]);
        // Flip one payload bit inside record 1.
        let r0 = FRAME_HEADER + 5;
        buf[r0 + FRAME_HEADER + 2] ^= 0x40;
        let err = scan_segment(&buf).expect_err("must fail closed");
        assert_eq!(
            err,
            StorageError::Corrupt {
                record: 1,
                offset: r0 as u64,
                reason: CorruptKind::CrcMismatch
            }
        );
    }

    #[test]
    fn implausible_length_is_corruption_not_torn_tail() {
        let mut buf = segment(&[b"ok"]);
        let off = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        let err = scan_segment(&buf).expect_err("must fail closed");
        assert_eq!(
            err,
            StorageError::Corrupt {
                record: 1,
                offset: off as u64,
                reason: CorruptKind::ImplausibleLength(u64::from(u32::MAX)),
            }
        );
    }

    #[test]
    fn oversized_record_rejected_at_frame_time() {
        let mut buf = Vec::new();
        let big = vec![0u8; MAX_RECORD + 1];
        assert_eq!(
            frame_into(&mut buf, &big),
            Err(StorageError::TooLarge(MAX_RECORD + 1))
        );
        assert!(buf.is_empty());
    }
}
