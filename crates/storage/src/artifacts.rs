//! Persistence for signed directory artifacts (revocation lists,
//! membership certificates).
//!
//! The PR-7 directories (`restricted_proxy::revocation`,
//! `restricted_proxy::membership`) hold *mirrors* of grantor-signed
//! artifacts; on restart a bare directory would fail closed on every
//! serial until it refetched from the grantor. An [`ArtifactStore`]
//! keeps the last-good artifacts on the same [`Storage`] trait the
//! accounting journal uses, so a restarted server can re-apply them —
//! through the normal `apply_verified` seal checks — without a network
//! round trip.
//!
//! The store is deliberately *byte-level*: it persists tagged, opaque
//! artifact encodings and leaves decoding, seal verification, and
//! epoch ordering to the consumer. Storage integrity (CRC framing) is
//! not a substitute for the seal check — a disk is not a trusted party —
//! which is why rehydration goes through `apply_verified` and a record
//! that fails its seal is dropped, not trusted.

use restricted_proxy::encode::{Decoder, Encoder};

use crate::{CorruptKind, Storage, StorageError};

/// Envelope tags for stored artifact records.
const TAG_REVOCATION: u8 = 1;
const TAG_MEMBERSHIP: u8 = 2;

/// One persisted artifact, still in its signed wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredArtifact {
    /// A `RevocationArtifact` encoding (snapshot or delta).
    Revocation(Vec<u8>),
    /// A `MembershipArtifact` encoding.
    Membership(Vec<u8>),
}

impl StoredArtifact {
    fn tag(&self) -> u8 {
        match self {
            StoredArtifact::Revocation(_) => TAG_REVOCATION,
            StoredArtifact::Membership(_) => TAG_MEMBERSHIP,
        }
    }

    fn bytes(&self) -> &[u8] {
        match self {
            StoredArtifact::Revocation(b) | StoredArtifact::Membership(b) => b,
        }
    }

    fn encode_onto(&self, e: &mut Encoder) {
        e.u8(self.tag()).bytes(self.bytes());
    }

    fn decode_from(d: &mut Decoder<'_>) -> Option<StoredArtifact> {
        let tag = d.u8().ok()?;
        let bytes = d.bytes().ok()?.to_vec();
        match tag {
            TAG_REVOCATION => Some(StoredArtifact::Revocation(bytes)),
            TAG_MEMBERSHIP => Some(StoredArtifact::Membership(bytes)),
            _ => None,
        }
    }
}

/// A persistent log of directory artifacts over any [`Storage`]
/// backend; see the module docs.
#[derive(Debug)]
pub struct ArtifactStore<S: Storage> {
    store: S,
}

fn envelope_corrupt(record: u64) -> StorageError {
    StorageError::Corrupt {
        record,
        offset: 0,
        reason: CorruptKind::BadEnvelope,
    }
}

impl<S: Storage> ArtifactStore<S> {
    /// Wraps `store`; artifacts share it with nothing else (the
    /// accounting journal uses its own store/directory).
    pub fn new(store: S) -> Self {
        Self { store }
    }

    /// The underlying backend (tests use this to inject crashes).
    pub fn backend(&self) -> &S {
        &self.store
    }

    /// Durably appends one artifact in its signed encoding.
    ///
    /// # Errors
    ///
    /// Any [`StorageError`] from the backend; the artifact must not be
    /// considered persisted.
    pub fn record(&self, artifact: &StoredArtifact) -> Result<(), StorageError> {
        let mut e = Encoder::new();
        artifact.encode_onto(&mut e);
        self.store.append(&e.finish())
    }

    /// Replaces the whole history with `fulls` — the latest *full*
    /// (snapshot-kind) artifact per source — via the backend's atomic
    /// snapshot, so the log does not grow without bound under a steady
    /// drip of deltas.
    ///
    /// # Errors
    ///
    /// Any [`StorageError`] from the backend; the previous history
    /// stays in effect.
    pub fn compact(&self, fulls: &[StoredArtifact]) -> Result<(), StorageError> {
        let mut e = Encoder::new();
        e.count(fulls.len());
        for a in fulls {
            a.encode_onto(&mut e);
        }
        self.store.install_snapshot(&e.finish())
    }

    /// Loads every persisted artifact, oldest first (compacted set,
    /// then post-compaction records). The consumer re-applies them in
    /// this order through `apply_verified`, which enforces seals and
    /// epoch monotonicity.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] (fail-closed) when a stored envelope
    /// does not decode — CRC-valid bytes we could not have written.
    pub fn load(&self) -> Result<Vec<StoredArtifact>, StorageError> {
        let recovered = self.store.load()?;
        let mut out = Vec::new();
        if let Some(blob) = &recovered.snapshot {
            let mut d = Decoder::new(blob);
            let n = d.counted(2).map_err(|_| envelope_corrupt(0))?;
            for _ in 0..n {
                out.push(StoredArtifact::decode_from(&mut d).ok_or_else(|| envelope_corrupt(0))?);
            }
            d.finish().map_err(|_| envelope_corrupt(0))?;
        }
        for (i, rec) in recovered.records.iter().enumerate() {
            let mut d = Decoder::new(rec);
            let a =
                StoredArtifact::decode_from(&mut d).ok_or_else(|| envelope_corrupt(i as u64))?;
            d.finish().map_err(|_| envelope_corrupt(i as u64))?;
            out.push(a);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStorage;

    #[test]
    fn record_and_load_round_trip_in_order() {
        let s = ArtifactStore::new(MemStorage::new());
        let a = StoredArtifact::Revocation(b"rev-snap-epoch-1".to_vec());
        let b = StoredArtifact::Membership(b"members-epoch-1".to_vec());
        let c = StoredArtifact::Revocation(b"rev-delta-epoch-2".to_vec());
        s.record(&a).unwrap();
        s.record(&b).unwrap();
        s.record(&c).unwrap();
        assert_eq!(s.load().unwrap(), vec![a, b, c]);
    }

    #[test]
    fn compact_folds_history_and_later_records_follow() {
        let s = ArtifactStore::new(MemStorage::new());
        s.record(&StoredArtifact::Revocation(b"superseded".to_vec()))
            .unwrap();
        let full = StoredArtifact::Revocation(b"full-epoch-5".to_vec());
        let members = StoredArtifact::Membership(b"members-epoch-3".to_vec());
        s.compact(&[full.clone(), members.clone()]).unwrap();
        let delta = StoredArtifact::Revocation(b"delta-epoch-6".to_vec());
        s.record(&delta).unwrap();
        assert_eq!(s.load().unwrap(), vec![full, members, delta]);
    }

    #[test]
    fn unknown_tag_fails_closed() {
        let raw = MemStorage::new();
        let mut e = Encoder::new();
        e.u8(9).bytes(b"mystery");
        raw.append(&e.finish()).unwrap();
        let s = ArtifactStore::new(raw);
        assert_eq!(
            s.load(),
            Err(StorageError::Corrupt {
                record: 0,
                offset: 0,
                reason: CorruptKind::BadEnvelope
            })
        );
    }

    #[test]
    fn truncated_envelope_fails_closed() {
        let raw = MemStorage::new();
        raw.append(&[TAG_REVOCATION]).unwrap(); // tag with no body
        let s = ArtifactStore::new(raw);
        assert!(matches!(
            s.load(),
            Err(StorageError::Corrupt {
                reason: CorruptKind::BadEnvelope,
                ..
            })
        ));
    }
}
