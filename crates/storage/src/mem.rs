//! In-memory [`Storage`]: today's volatile behavior, made explicit.
//!
//! A [`MemStorage`] keeps the record log and snapshot in process memory.
//! It exists for three reasons: netsim/bench determinism (no filesystem
//! in the timed path), as the semantic reference the WAL backend is
//! tested against, and for in-process "restart" tests — the store is
//! shared by `Arc`, so a test can drop a server and reopen a new one
//! from the same store, exercising the recovery path without touching
//! disk.

use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::{Recovered, Storage, StorageError, Ticket, MAX_RECORD};

#[derive(Debug, Default)]
struct MemInner {
    snapshot: Option<Vec<u8>>,
    records: Vec<Vec<u8>>,
    staged: u64,
    crash_after: Option<u64>,
}

/// An in-memory [`Storage`] backend. Every staged record is immediately
/// "durable" (it lives exactly as long as the store).
#[derive(Debug, Default)]
pub struct MemStorage {
    inner: Mutex<MemInner>,
}

impl MemStorage {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the injected crash point: the `n`-th staged record from now
    /// is recorded durably but its `stage` call returns
    /// [`StorageError::Crashed`] (as does everything after), simulating
    /// a kill between the WAL append and the reply.
    pub fn crash_after_stages(&self, n: u64) {
        let mut inner = self.lock();
        let at = inner.staged.saturating_add(n);
        inner.crash_after = Some(at);
    }

    /// Number of records currently in the log (post-snapshot).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.lock().records.len()
    }

    fn lock(&self) -> MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Storage for MemStorage {
    fn stage(&self, record: &[u8]) -> Result<Ticket, StorageError> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::TooLarge(record.len()));
        }
        let mut inner = self.lock();
        if let Some(at) = inner.crash_after {
            if inner.staged >= at {
                return Err(StorageError::Crashed);
            }
        }
        inner.staged += 1;
        inner.records.push(record.to_vec());
        let ticket = Ticket(inner.staged);
        if inner.crash_after == Some(inner.staged) {
            // The record is in the log — the client just never hears
            // back. (Durable-then-dead, the exactly-once crash window.)
            return Err(StorageError::Crashed);
        }
        Ok(ticket)
    }

    fn wait_durable(&self, _ticket: Ticket) -> Result<(), StorageError> {
        Ok(())
    }

    fn install_snapshot(&self, state: &[u8]) -> Result<(), StorageError> {
        let mut inner = self.lock();
        inner.snapshot = Some(state.to_vec());
        inner.records.clear();
        Ok(())
    }

    fn load(&self) -> Result<Recovered, StorageError> {
        let inner = self.lock();
        Ok(Recovered {
            snapshot: inner.snapshot.clone(),
            records: inner.records.clone(),
            torn_tail: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_load_round_trip() {
        let s = MemStorage::new();
        s.append(b"one").unwrap();
        s.append(b"two").unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(r.snapshot.is_none());
        assert!(!r.torn_tail);
    }

    #[test]
    fn snapshot_truncates_log() {
        let s = MemStorage::new();
        s.append(b"folded").unwrap();
        s.install_snapshot(b"state").unwrap();
        s.append(b"fresh").unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"state".as_slice()));
        assert_eq!(r.records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn crash_point_records_then_reports_death() {
        let s = MemStorage::new();
        s.append(b"before").unwrap();
        s.crash_after_stages(1);
        // The doomed append: durable but unacknowledged.
        assert_eq!(s.append(b"doomed"), Err(StorageError::Crashed));
        // Everything after is gone with the process.
        assert_eq!(s.append(b"lost"), Err(StorageError::Crashed));
        let r = s.load().unwrap();
        assert_eq!(r.records, vec![b"before".to_vec(), b"doomed".to_vec()]);
    }
}
