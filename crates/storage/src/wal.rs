//! The durable [`Storage`] backend: an append-only, CRC-framed
//! write-ahead log with group-commit fsync and snapshot rotation.
//!
//! ## On-disk layout
//!
//! A store is a directory holding one *generation* of files:
//!
//! ```text
//! wal.<gen>    append-only record log (frames, see crate::log)
//! snap.<gen>   compacted snapshot: one frame holding the state blob
//! ```
//!
//! [`WalStorage::install_snapshot`] rotates generations: it writes
//! `snap.<gen+1>.tmp`, fsyncs, atomically renames it to `snap.<gen+1>`
//! (the commit point), fsyncs the directory, creates an empty
//! `wal.<gen+1>`, and only then deletes the old generation. Recovery
//! after a crash at *any* point in that sequence converges: the current
//! generation is the highest `snap.<g>` on disk (generation 0 has no
//! snapshot), a missing `wal.<g>` is an empty log, and every other file
//! — `.tmp` residue, superseded generations — is deleted at open.
//!
//! ## Group-commit fsync
//!
//! `fsync` dominates the append path (~100µs+ on common filesystems), so
//! [`FsyncMode::GroupCommit`] amortizes it with the leader/follower
//! protocol of `restricted_proxy::batcher::SealBatcher`: the first
//! waiter that finds no flush in progress becomes the **leader**. If it
//! is alone it flushes inline (a lone client pays one fsync, no added
//! latency); otherwise it lingers — bounded by `flush_wait`, broken the
//! moment the batch fills (`batch_max`) or an arrival-free linger slice
//! says the burst is over — then takes the whole buffer and flushes it
//! under a single fsync. **Followers** park until the leader publishes
//! durability, re-checking on a timeout so a stalled leader's batch is
//! rescued rather than wedged.
//!
//! ## Failure policy
//!
//! Torn tails at open — the residue of dying between `write` and `fsync`
//! — are truncated (the torn record was never acknowledged durable).
//! Any structurally complete defect is [`StorageError::Corrupt`],
//! fail-closed at the exact record. After any I/O failure the store
//! *poisons*: every later call returns the original error, so a durable
//! server stops rather than diverge from its log (fail-stop).

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::log::{frame_into, scan_segment};
use crate::{CorruptKind, Recovered, Storage, StorageError, Ticket, MAX_RECORD};

/// Default flush threshold: a batch this large stops lingering and goes
/// to disk.
pub const DEFAULT_BATCH_MAX: usize = 16;

/// Default bound on how long a group-commit leader lingers for the
/// batch to fill before flushing a partial batch.
pub const DEFAULT_FLUSH_WAIT: Duration = Duration::from_millis(1);

/// A lingering leader samples arrivals in slices of this length; a
/// slice with no new arrivals ends the linger early (the burst is over,
/// waiting longer only adds latency).
const LINGER_SLICE: Duration = Duration::from_micros(100);

/// How long a follower parks before re-checking whether it must rescue
/// the batch itself.
const FOLLOWER_RECHECK: Duration = Duration::from_millis(2);

/// When the log must actually reach the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncMode {
    /// Never fsync: durability limited to OS page-cache survival. The
    /// honest upper bound for WAL throughput (write cost, no flush).
    NoFsync,
    /// One synchronous write+fsync per record, serialized — the naive
    /// baseline group commit is measured against.
    PerRecord,
    /// Batched fsync via the leader/follower protocol (module docs).
    GroupCommit,
}

/// Tuning for [`WalStorage`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Durability policy for appended records.
    pub fsync: FsyncMode,
    /// Records per flush at which a lingering leader stops waiting.
    pub batch_max: usize,
    /// Upper bound on the leader's linger for a partial batch.
    pub flush_wait: Duration,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            fsync: FsyncMode::GroupCommit,
            batch_max: DEFAULT_BATCH_MAX,
            flush_wait: DEFAULT_FLUSH_WAIT,
        }
    }
}

/// Mutable append state, under one lock. The file handle lives in a
/// separate lock ([`WalFile`]) so the leader can write and fsync without
/// blocking staging; lock order is state → file, never the reverse.
#[derive(Debug, Default)]
struct WalState {
    /// Framed records staged but not yet written.
    buf: Vec<u8>,
    /// Tickets issued.
    staged: u64,
    /// Highest ticket durable under the store's fsync policy.
    durable: u64,
    /// A leader (or snapshot installer) currently owns the file.
    flushing: bool,
    /// First I/O failure; once set, every call returns it (fail-stop).
    poison: Option<StorageError>,
    /// Injected crash points (tests): absolute ticket numbers.
    crash_after: Option<u64>,
    crash_before: Option<u64>,
}

#[derive(Debug)]
struct WalFile {
    file: File,
    gen: u64,
}

/// The write-ahead-log [`Storage`] backend; see the module docs.
#[derive(Debug)]
pub struct WalStorage {
    dir: PathBuf,
    opts: WalOptions,
    state: Mutex<WalState>,
    /// Wakes a lingering leader on arrivals.
    arrivals: Condvar,
    /// Wakes followers when durability advances or leadership frees.
    completed: Condvar,
    file: Mutex<WalFile>,
    /// A torn tail was found (and truncated) when this store opened.
    torn_at_open: bool,
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> StorageError {
    move |e| StorageError::Io {
        op,
        detail: e.to_string(),
    }
}

fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal.{gen}"))
}

fn snap_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap.{gen}"))
}

/// Fsyncs the directory itself so renames/creates/unlinks are durable.
fn sync_dir(dir: &Path) -> Result<(), StorageError> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(io_err("directory fsync"))
}

/// Parses `prefix.<gen>` file names.
fn parse_gen(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.parse().ok()
}

impl WalStorage {
    /// Opens (creating if needed) the store rooted at `dir`, recovering
    /// from any crash state: `.tmp` residue and superseded generations
    /// are deleted, a torn log tail is truncated, and a structurally
    /// corrupt log refuses to open.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on filesystem failure;
    /// [`StorageError::Corrupt`] (fail-closed) when the surviving log or
    /// snapshot fails its integrity scan.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> Result<Self, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(io_err("create storage dir"))?;

        // Inventory the directory: the current generation is the highest
        // committed snapshot (the rename is the commit point); with no
        // snapshot yet we are still in generation 0.
        let mut snaps: Vec<u64> = Vec::new();
        let mut wals: Vec<u64> = Vec::new();
        let mut stale: Vec<PathBuf> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(io_err("list storage dir"))?;
        for entry in entries {
            let entry = entry.map_err(io_err("list storage dir"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                stale.push(entry.path());
            } else if let Some(g) = parse_gen(name, "snap.") {
                snaps.push(g);
            } else if let Some(g) = parse_gen(name, "wal.") {
                wals.push(g);
            }
        }
        let gen = snaps.iter().copied().max().unwrap_or(0);
        for g in snaps {
            if g != gen {
                stale.push(snap_path(&dir, g));
            }
        }
        for g in wals {
            if g != gen {
                stale.push(wal_path(&dir, g));
            }
        }
        let had_stale = !stale.is_empty();
        for path in stale {
            fs::remove_file(&path).map_err(io_err("remove stale file"))?;
        }
        if had_stale {
            sync_dir(&dir)?;
        }

        // Open the current log, scanning it now so a torn tail is
        // truncated before anything is appended after it.
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(wal_path(&dir, gen))
            .map_err(io_err("open wal"))?;
        let mut bytes = Vec::new();
        (&file)
            .read_to_end(&mut bytes)
            .map_err(io_err("read wal"))?;
        let scan = scan_segment(&bytes)?;
        if scan.torn_tail {
            file.set_len(scan.valid_len)
                .map_err(io_err("truncate torn tail"))?;
            file.sync_data().map_err(io_err("wal fsync"))?;
        }

        Ok(Self {
            dir,
            opts,
            state: Mutex::new(WalState::default()),
            arrivals: Condvar::new(),
            completed: Condvar::new(),
            file: Mutex::new(WalFile { file, gen }),
            torn_at_open: scan.torn_tail,
        })
    }

    /// The generation currently live (increments per installed
    /// snapshot); exposed for rotation tests.
    #[must_use]
    pub fn current_gen(&self) -> u64 {
        self.file_guard().gen
    }

    /// Arms the injected crash point: the `n`-th record staged from now
    /// is made durable, but its `stage` call — and every call after —
    /// returns [`StorageError::Crashed`]. Models a kill between the WAL
    /// append and the client reply.
    pub fn crash_after_appends(&self, n: u64) {
        let mut st = self.state_guard();
        st.crash_after = Some(st.staged.saturating_add(n));
    }

    /// Arms the other side of the crash window: the `n`-th record staged
    /// from now is **not** written at all before the simulated death.
    pub fn crash_before_appends(&self, n: u64) {
        let mut st = self.state_guard();
        st.crash_before = Some(st.staged.saturating_add(n));
    }

    /// The state carries monotone counters and a byte buffer with no
    /// cross-field invariant a panic could tear; recover a poisoned lock
    /// rather than wedging every worker. (I/O failures have their own
    /// fail-stop poisoning via `WalState::poison`.)
    fn state_guard(&self) -> MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn file_guard(&self) -> MutexGuard<'_, WalFile> {
        self.file.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes (and per policy fsyncs) one taken batch. Called with the
    /// state lock *released* (group commit) or held (per-record,
    /// injected-crash flush) — safe either way since state → file is the
    /// only lock order used.
    fn write_batch(&self, batch: &[u8]) -> Result<(), StorageError> {
        if batch.is_empty() {
            return Ok(());
        }
        let wf = self.file_guard();
        (&wf.file).write_all(batch).map_err(io_err("wal append"))?;
        if self.opts.fsync != FsyncMode::NoFsync {
            wf.file.sync_data().map_err(io_err("wal fsync"))?;
        }
        Ok(())
    }

    /// Leader linger: wait (bounded) for the batch to fill. Returns with
    /// the state lock re-held. Inline at low load: a leader whose record
    /// is alone in the buffer flushes immediately.
    fn linger<'a>(&self, mut st: MutexGuard<'a, WalState>) -> MutexGuard<'a, WalState> {
        if self.opts.fsync != FsyncMode::GroupCommit || self.opts.flush_wait.is_zero() {
            return st;
        }
        if st.staged - st.durable <= 1 {
            return st;
        }
        let deadline = Instant::now() + self.opts.flush_wait;
        loop {
            let pending = st.staged - st.durable;
            if pending >= self.opts.batch_max as u64 || st.poison.is_some() {
                return st;
            }
            let now = Instant::now();
            if now >= deadline {
                return st;
            }
            let slice = LINGER_SLICE.min(deadline - now);
            let (guard, _timeout) = self
                .arrivals
                .wait_timeout(st, slice)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if st.staged - st.durable == pending {
                // An arrival-free slice: the burst is over, flush now
                // rather than burn the rest of the deadline on latency.
                return st;
            }
        }
    }

    /// Synchronous write+fsync of everything buffered, holding the state
    /// lock. Used by the per-record mode and the injected crash point
    /// (which must make the doomed record durable before "dying").
    fn flush_now_locked(&self, st: &mut WalState) -> Result<(), StorageError> {
        let batch = std::mem::take(&mut st.buf);
        self.write_batch(&batch)?;
        st.durable = st.staged;
        Ok(())
    }
}

impl Storage for WalStorage {
    fn stage(&self, record: &[u8]) -> Result<Ticket, StorageError> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::TooLarge(record.len()));
        }
        let mut st = self.state_guard();
        if let Some(p) = &st.poison {
            return Err(p.clone());
        }
        let ticket = st.staged + 1;
        if st.crash_before.is_some_and(|at| ticket >= at) {
            // Died before the write hit the log: the record is simply
            // gone, and so (fail-stop) is the server.
            st.poison = Some(StorageError::Crashed);
            self.completed.notify_all();
            return Err(StorageError::Crashed);
        }
        if st.crash_after.is_some_and(|at| ticket > at) {
            st.poison = Some(StorageError::Crashed);
            self.completed.notify_all();
            return Err(StorageError::Crashed);
        }
        st.staged = ticket;
        frame_into(&mut st.buf, record)?;
        if st.crash_after == Some(ticket) {
            // Died *after* the write reached the log but before any
            // reply: force everything buffered durable, then report the
            // death. The client never hears back; recovery must still
            // count this record exactly once.
            let res = self.flush_now_locked(&mut st);
            st.poison = Some(StorageError::Crashed);
            self.completed.notify_all();
            return Err(res.err().unwrap_or(StorageError::Crashed));
        }
        if self.opts.fsync == FsyncMode::PerRecord {
            // Naive baseline: one synchronous write+fsync per record,
            // serialized under the state lock.
            if let Err(e) = self.flush_now_locked(&mut st) {
                st.poison = Some(e.clone());
                self.completed.notify_all();
                return Err(e);
            }
            return Ok(Ticket(ticket));
        }
        // Group-commit / no-fsync: buffered; a lingering leader may be
        // waiting for exactly this arrival.
        self.arrivals.notify_one();
        Ok(Ticket(ticket))
    }

    fn wait_durable(&self, ticket: Ticket) -> Result<(), StorageError> {
        let mut st = self.state_guard();
        loop {
            if let Some(p) = &st.poison {
                // Even if the record itself reached the platter, the
                // store is dead: no acknowledgement may go out.
                return Err(p.clone());
            }
            if st.durable >= ticket.0 {
                return Ok(());
            }
            if !st.flushing {
                // Lead: linger for the batch, then flush it.
                st.flushing = true;
                st = self.linger(st);
                let batch = std::mem::take(&mut st.buf);
                let upto = st.staged;
                drop(st);
                let res = self.write_batch(&batch);
                st = self.state_guard();
                st.flushing = false;
                match res {
                    Ok(()) => st.durable = st.durable.max(upto),
                    Err(e) => st.poison = Some(e),
                }
                self.completed.notify_all();
                continue;
            }
            // Follow: park until durability advances; the timeout lets a
            // follower rescue the batch if its leader stalled.
            let (guard, _timeout) = self
                .completed
                .wait_timeout(st, FOLLOWER_RECHECK)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn install_snapshot(&self, state: &[u8]) -> Result<(), StorageError> {
        // Claim the flush slot so no leader owns the file mid-rotation.
        let mut st = self.state_guard();
        loop {
            if let Some(p) = &st.poison {
                return Err(p.clone());
            }
            if !st.flushing {
                break;
            }
            let (guard, _timeout) = self
                .completed
                .wait_timeout(st, FOLLOWER_RECHECK)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        st.flushing = true;
        let pending = std::mem::take(&mut st.buf);
        let upto = st.staged;
        drop(st);

        let res = self.rotate(state, &pending);

        let mut st = self.state_guard();
        st.flushing = false;
        match &res {
            // Every record staged so far is either folded into the
            // snapshot or (the pending tail) flushed by the rotation.
            Ok(()) => st.durable = st.durable.max(upto),
            Err(e) => st.poison = Some(e.clone()),
        }
        self.completed.notify_all();
        drop(st);
        res
    }

    fn load(&self) -> Result<Recovered, StorageError> {
        let wf = self.file_guard();
        let snap = snap_path(&self.dir, wf.gen);
        let snapshot = match fs::read(&snap) {
            Ok(bytes) => {
                let scan = scan_segment(&bytes)?;
                if scan.torn_tail || scan.records.len() != 1 {
                    return Err(StorageError::Corrupt {
                        record: 0,
                        offset: 0,
                        reason: CorruptKind::BadSnapshot,
                    });
                }
                scan.records.into_iter().next()
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err("read snapshot")(e)),
        };
        let mut bytes = Vec::new();
        (&wf.file)
            .seek(SeekFrom::Start(0))
            .map_err(io_err("seek wal"))?;
        (&wf.file)
            .read_to_end(&mut bytes)
            .map_err(io_err("read wal"))?;
        let scan = scan_segment(&bytes)?;
        if scan.torn_tail {
            // Appends since open are whole frames; a torn tail here
            // means the file changed under us.
            return Err(StorageError::Corrupt {
                record: scan.records.len() as u64,
                offset: scan.valid_len,
                reason: CorruptKind::BadSnapshot,
            });
        }
        Ok(Recovered {
            snapshot,
            records: scan.records,
            torn_tail: self.torn_at_open,
        })
    }
}

impl WalStorage {
    /// The rotation sequence (module docs): complete the old log, commit
    /// the new snapshot by atomic rename, open the next log, then retire
    /// the old generation. A crash anywhere in here is recovered by
    /// [`WalStorage::open`].
    fn rotate(&self, state: &[u8], pending: &[u8]) -> Result<(), StorageError> {
        let mut wf = self.file_guard();
        // Leave the old generation internally consistent first: if the
        // rotation dies before its commit point, recovery falls back to
        // the old snapshot + a complete old log.
        if !pending.is_empty() {
            (&wf.file)
                .write_all(pending)
                .map_err(io_err("wal append"))?;
            wf.file.sync_data().map_err(io_err("wal fsync"))?;
        }

        let next = wf.gen + 1;
        let mut framed = Vec::with_capacity(state.len() + crate::log::FRAME_HEADER);
        frame_into(&mut framed, state)?;
        let tmp = self.dir.join(format!("snap.{next}.tmp"));
        let mut f = File::create(&tmp).map_err(io_err("create snapshot tmp"))?;
        f.write_all(&framed).map_err(io_err("write snapshot"))?;
        f.sync_data().map_err(io_err("snapshot fsync"))?;
        drop(f);
        // Commit point: after this rename (made durable by the directory
        // fsync) recovery selects generation `next`.
        fs::rename(&tmp, snap_path(&self.dir, next)).map_err(io_err("commit snapshot"))?;
        sync_dir(&self.dir)?;

        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(wal_path(&self.dir, next))
            .map_err(io_err("open wal"))?;
        file.sync_data().map_err(io_err("wal fsync"))?;
        sync_dir(&self.dir)?;

        let old = wf.gen;
        wf.file = file;
        wf.gen = next;
        drop(wf);

        // Retiring the old generation is not load-bearing: open()
        // deletes superseded files, so a failure here only wastes disk.
        let _ = fs::remove_file(wal_path(&self.dir, old));
        let _ = fs::remove_file(snap_path(&self.dir, old));
        let _ = sync_dir(&self.dir);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!(
            "proxy-storage-wal-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn no_fsync() -> WalOptions {
        // Unit tests exercise logic, not the platter.
        WalOptions {
            fsync: FsyncMode::NoFsync,
            ..WalOptions::default()
        }
    }

    #[test]
    fn reopen_round_trip() {
        let dir = tmpdir("reopen");
        {
            let w = WalStorage::open(&dir, no_fsync()).unwrap();
            w.append(b"a").unwrap();
            w.append(b"bb").unwrap();
            w.append(b"ccc").unwrap();
        }
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        let r = w.load().unwrap();
        assert_eq!(
            r.records,
            vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]
        );
        assert!(r.snapshot.is_none());
        assert!(!r.torn_tail);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let dir = tmpdir("torn");
        {
            let w = WalStorage::open(&dir, no_fsync()).unwrap();
            w.append(b"whole-1").unwrap();
            w.append(b"whole-2").unwrap();
        }
        // Simulate a crash mid-append: half a frame at the tail.
        let mut tail = Vec::new();
        frame_into(&mut tail, b"torn-by-the-crash").unwrap();
        tail.truncate(tail.len() - 7);
        let path = wal_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&tail).unwrap();
        drop(f);

        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        let r = w.load().unwrap();
        assert_eq!(r.records, vec![b"whole-1".to_vec(), b"whole-2".to_vec()]);
        assert!(r.torn_tail, "the truncated tail must be reported");
        // The tail is gone from disk: appending and reopening is clean.
        w.append(b"after-recovery").unwrap();
        drop(w);
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        let r = w.load().unwrap();
        assert_eq!(r.records.len(), 3);
        assert!(!r.torn_tail);
    }

    #[test]
    fn bit_flip_refuses_to_open_at_exact_record() {
        let dir = tmpdir("flip");
        {
            let w = WalStorage::open(&dir, no_fsync()).unwrap();
            w.append(b"first").unwrap();
            w.append(b"second").unwrap();
            w.append(b"third").unwrap();
        }
        let path = wal_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit inside record 1's payload.
        let r1 = crate::log::FRAME_HEADER + 5;
        bytes[r1 + crate::log::FRAME_HEADER + 1] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let err = WalStorage::open(&dir, no_fsync()).expect_err("must fail closed");
        assert_eq!(
            err,
            StorageError::Corrupt {
                record: 1,
                offset: r1 as u64,
                reason: CorruptKind::CrcMismatch
            }
        );
    }

    #[test]
    fn snapshot_rotates_generation_and_truncates_log() {
        let dir = tmpdir("snap");
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        w.append(b"folded-1").unwrap();
        w.append(b"folded-2").unwrap();
        w.install_snapshot(b"the-state").unwrap();
        assert_eq!(w.current_gen(), 1);
        w.append(b"fresh").unwrap();
        drop(w);

        assert!(!wal_path(&dir, 0).exists(), "old log retired");
        assert!(!snap_path(&dir, 0).exists());
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        let r = w.load().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"the-state".as_slice()));
        assert_eq!(r.records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn aborted_rotation_recovers_to_committed_snapshot() {
        let dir = tmpdir("aborted");
        {
            let w = WalStorage::open(&dir, no_fsync()).unwrap();
            w.append(b"old-log-record").unwrap();
        }
        // Crash window: snap.1 renamed in, but wal.1 never created and
        // the old generation never deleted.
        let mut framed = Vec::new();
        frame_into(&mut framed, b"committed-state").unwrap();
        fs::write(snap_path(&dir, 1), &framed).unwrap();

        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        assert_eq!(w.current_gen(), 1);
        let r = w.load().unwrap();
        assert_eq!(r.snapshot.as_deref(), Some(b"committed-state".as_slice()));
        assert!(r.records.is_empty(), "old generation's log is retired");
        assert!(!wal_path(&dir, 0).exists());
    }

    #[test]
    fn tmp_residue_is_cleaned_at_open() {
        let dir = tmpdir("tmp");
        {
            let w = WalStorage::open(&dir, no_fsync()).unwrap();
            w.append(b"keep").unwrap();
        }
        // Crash during snapshot write: a partial tmp file.
        fs::write(dir.join("snap.1.tmp"), b"partial-garbage").unwrap();
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        assert!(!dir.join("snap.1.tmp").exists());
        assert_eq!(w.load().unwrap().records, vec![b"keep".to_vec()]);
    }

    #[test]
    fn group_commit_concurrent_appends_all_become_durable() {
        let dir = tmpdir("group");
        let w = Arc::new(
            WalStorage::open(
                &dir,
                WalOptions {
                    fsync: FsyncMode::GroupCommit,
                    batch_max: 8,
                    flush_wait: Duration::from_millis(1),
                },
            )
            .unwrap(),
        );
        let threads: Vec<_> = (0..8u8)
            .map(|i| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for round in 0..20u8 {
                        w.append(&[i, round]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(w);
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        let r = w.load().unwrap();
        assert_eq!(r.records.len(), 8 * 20);
        let mut seen: Vec<[u8; 2]> = r.records.iter().map(|b| [b[0], b[1]]).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8 * 20, "every append exactly once");
    }

    #[test]
    fn per_thread_order_is_preserved() {
        let dir = tmpdir("order");
        let w = Arc::new(WalStorage::open(&dir, no_fsync()).unwrap());
        let threads: Vec<_> = (0..4u8)
            .map(|i| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for round in 0..50u8 {
                        w.append(&[i, round]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let r = w.load().unwrap();
        // Stage order is the durable order: each thread's rounds appear
        // monotonically.
        let mut last = [0u8; 4];
        for rec in &r.records {
            let (thread, round) = (rec[0] as usize, rec[1]);
            assert!(round >= last[thread]);
            last[thread] = round;
        }
    }

    #[test]
    fn crash_after_appends_keeps_the_doomed_record() {
        let dir = tmpdir("crash-after");
        {
            let w = WalStorage::open(&dir, no_fsync()).unwrap();
            w.append(b"acked").unwrap();
            w.crash_after_appends(1);
            assert_eq!(w.append(b"doomed"), Err(StorageError::Crashed));
            assert_eq!(w.append(b"lost"), Err(StorageError::Crashed));
        }
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        let r = w.load().unwrap();
        assert_eq!(r.records, vec![b"acked".to_vec(), b"doomed".to_vec()]);
    }

    #[test]
    fn crash_before_appends_drops_the_record() {
        let dir = tmpdir("crash-before");
        {
            let w = WalStorage::open(&dir, no_fsync()).unwrap();
            w.append(b"acked").unwrap();
            w.crash_before_appends(1);
            assert_eq!(w.append(b"never-written"), Err(StorageError::Crashed));
        }
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        assert_eq!(w.load().unwrap().records, vec![b"acked".to_vec()]);
    }

    #[test]
    fn poisoned_store_refuses_every_later_call() {
        let dir = tmpdir("poison");
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        w.crash_after_appends(1);
        assert_eq!(w.append(b"doomed"), Err(StorageError::Crashed));
        assert_eq!(w.append(b"x"), Err(StorageError::Crashed));
        assert_eq!(w.wait_durable(Ticket(1)), Err(StorageError::Crashed));
        assert_eq!(w.install_snapshot(b"s"), Err(StorageError::Crashed));
    }

    #[test]
    fn per_record_mode_is_durable_at_stage_time() {
        let dir = tmpdir("per-record");
        let w = WalStorage::open(
            &dir,
            WalOptions {
                fsync: FsyncMode::PerRecord,
                ..WalOptions::default()
            },
        )
        .unwrap();
        let t = w.stage(b"committed").unwrap();
        // Already durable: wait is a no-op.
        w.wait_durable(t).unwrap();
        drop(w);
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        assert_eq!(w.load().unwrap().records, vec![b"committed".to_vec()]);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let dir = tmpdir("oversize");
        let w = WalStorage::open(&dir, no_fsync()).unwrap();
        let big = vec![0u8; MAX_RECORD + 1];
        assert_eq!(w.stage(&big), Err(StorageError::TooLarge(MAX_RECORD + 1)));
        assert_eq!(w.load().unwrap().records.len(), 0);
    }
}
