//! # proxy-storage
//!
//! Durable state for the accounting layer (DESIGN.md §15). The paper's
//! accounting server clears checks and maintains currency balances;
//! losing that state on restart forges or destroys money and silently
//! resets the fail-closed replay guard. This crate provides the
//! [`Storage`] trait — an ordered, durably-flushed record log plus a
//! compacted snapshot slot — and two backends:
//!
//! * [`MemStorage`] — everything in memory, shared by `Arc`: today's
//!   behavior for netsim/bench determinism, plus in-process "restart"
//!   tests (drop the server, reopen from the same store).
//! * [`WalStorage`] — an append-only, CRC-framed write-ahead log with
//!   group-commit fsync batching (leader/follower flush, mirroring the
//!   seal micro-batcher in `restricted_proxy::batcher`), periodic
//!   compacted snapshots installed by atomic rename with log rotation,
//!   and deterministic replay on startup. Torn tails (the residue of a
//!   crash mid-write) are truncated; any other framing or CRC defect is
//!   rejected **fail-closed** at the exact corrupted record.
//!
//! The record log is opaque bytes at this layer: the accounting journal
//! (`proxy_accounting::journal`) defines the record semantics on top,
//! and [`artifacts::ArtifactStore`] persists signed revocation /
//! membership artifacts for directory mirrors through the same trait.
//!
//! ## Staging vs. durability
//!
//! [`Storage::stage`] places a record into the global durable order and
//! returns a [`Ticket`]; [`Storage::wait_durable`] blocks until that
//! record is durable under the backend's policy. The split exists so a
//! server can *stage* a record inside the same critical section that
//! commits the in-memory mutation (making log order agree with memory
//! order for non-commuting operations) and then pay the fsync wait
//! outside the lock, where the group-commit batcher amortizes it across
//! concurrent requests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod log;
pub mod mem;
pub mod wal;

pub use artifacts::ArtifactStore;
pub use mem::MemStorage;
pub use wal::{FsyncMode, WalOptions, WalStorage};

use std::fmt;

/// Largest record a backend accepts, matching the artifact decode bound
/// (a journal record may carry a full revocation snapshot artifact).
pub const MAX_RECORD: usize = 64 << 20;

/// A claim ticket for a staged record: pass it to
/// [`Storage::wait_durable`] to block until the record is durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticket(pub u64);

/// Why recovery or an append failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An I/O error, with the operation that failed.
    Io {
        /// What the backend was doing.
        op: &'static str,
        /// The OS error rendered as text (io::Error is not `Clone`).
        detail: String,
    },
    /// A log record failed its integrity check. Recovery refuses to
    /// proceed past it: silently skipping a corrupted record could
    /// resurrect spent checks or destroy settled balances.
    Corrupt {
        /// Zero-based index of the corrupted record in its segment.
        record: u64,
        /// Byte offset of the record's frame header in the segment.
        offset: u64,
        /// What was wrong.
        reason: CorruptKind,
    },
    /// The injected crash point fired (tests only): the backend behaves
    /// as if the process died here — nothing staged after this point is
    /// written, and no reply should reach a client.
    Crashed,
    /// A record exceeded [`MAX_RECORD`].
    TooLarge(usize),
    /// A prior I/O failure poisoned the backend; a durable server must
    /// stop accepting state-changing requests rather than diverge from
    /// its log (fail-stop).
    Poisoned,
}

/// The specific integrity defect of a [`StorageError::Corrupt`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The stored CRC did not match the payload (bit rot / tampering).
    CrcMismatch,
    /// The length prefix exceeded [`MAX_RECORD`] — not producible by a
    /// torn write, so it is corruption, not a crash artifact.
    ImplausibleLength(u64),
    /// A snapshot file failed its integrity check.
    BadSnapshot,
    /// A CRC-valid stored record did not decode as an envelope this
    /// layer could have written (see [`artifacts::ArtifactStore`]).
    BadEnvelope,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, detail } => {
                write!(f, "storage i/o failure during {op}: {detail}")
            }
            StorageError::Corrupt {
                record,
                offset,
                reason,
            } => write!(
                f,
                "log corrupt at record {record} (offset {offset}): {reason}"
            ),
            StorageError::Crashed => write!(f, "injected crash point fired"),
            StorageError::TooLarge(n) => write!(f, "record of {n} bytes exceeds MAX_RECORD"),
            StorageError::Poisoned => write!(f, "storage poisoned by a prior i/o failure"),
        }
    }
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::CrcMismatch => write!(f, "crc mismatch"),
            CorruptKind::ImplausibleLength(n) => write!(f, "implausible length prefix {n}"),
            CorruptKind::BadSnapshot => write!(f, "snapshot integrity check failed"),
            CorruptKind::BadEnvelope => write!(f, "stored record envelope does not decode"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Everything a backend recovered at open time.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// The most recent compacted snapshot, if one was installed.
    pub snapshot: Option<Vec<u8>>,
    /// Records appended after that snapshot, in durable order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn tail (an incomplete final record — the normal
    /// residue of a crash mid-append) was found and truncated. The
    /// truncated record was never acknowledged durable, so dropping it
    /// is exactly-once-safe.
    pub torn_tail: bool,
}

/// An ordered, durably-flushed record log plus a compacted snapshot
/// slot. All methods take `&self`; backends are shared across server
/// worker threads via `Arc<dyn Storage>`.
pub trait Storage: Send + Sync + fmt::Debug {
    /// Places `record` into the durable order and returns its ticket.
    /// The record is *not* necessarily durable yet.
    ///
    /// # Errors
    ///
    /// [`StorageError`] on I/O failure, oversized records, a poisoned
    /// backend, or an injected crash point.
    fn stage(&self, record: &[u8]) -> Result<Ticket, StorageError>;

    /// Blocks until the ticketed record is durable under the backend's
    /// fsync policy. For [`WalStorage`] in group-commit mode this is
    /// where the leader/follower flush happens.
    ///
    /// # Errors
    ///
    /// [`StorageError`] if the flush failed or a crash point fired; the
    /// caller must not acknowledge the operation to its client.
    fn wait_durable(&self, ticket: Ticket) -> Result<(), StorageError>;

    /// Stages `record` and waits for durability: the convenience path
    /// for administrative (non-hot-path) writes.
    ///
    /// # Errors
    ///
    /// The union of [`Storage::stage`] and [`Storage::wait_durable`].
    fn append(&self, record: &[u8]) -> Result<(), StorageError> {
        let t = self.stage(record)?;
        self.wait_durable(t)
    }

    /// Atomically replaces the snapshot with `state` and truncates the
    /// record log: every record staged so far is assumed to be folded
    /// into `state`. Callers must exclude concurrent staging (the
    /// accounting journal holds its compaction gate in write mode).
    ///
    /// # Errors
    ///
    /// [`StorageError`] on I/O failure; the previous snapshot/log pair
    /// stays in effect.
    fn install_snapshot(&self, state: &[u8]) -> Result<(), StorageError>;

    /// Reads back the snapshot and post-snapshot records, verifying
    /// integrity. Fail-closed: a corrupted record is an error naming
    /// the exact record, never a silent skip.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] at the first bad record, or an I/O
    /// error.
    fn load(&self) -> Result<Recovered, StorageError>;
}

/// `Arc<S>` (including `Arc<dyn Storage>`) is itself a backend, so a
/// server and its side stores (e.g. [`ArtifactStore`]) can share one
/// underlying log handle.
impl<T: Storage + ?Sized> Storage for std::sync::Arc<T> {
    fn stage(&self, record: &[u8]) -> Result<Ticket, StorageError> {
        (**self).stage(record)
    }

    fn wait_durable(&self, ticket: Ticket) -> Result<(), StorageError> {
        (**self).wait_durable(ticket)
    }

    fn append(&self, record: &[u8]) -> Result<(), StorageError> {
        (**self).append(record)
    }

    fn install_snapshot(&self, state: &[u8]) -> Result<(), StorageError> {
        (**self).install_snapshot(state)
    }

    fn load(&self) -> Result<Recovered, StorageError> {
        (**self).load()
    }
}
