//! Property tests and a hostile corpus for the WAL record framing
//! (`proxy_storage::log`): arbitrary record sets round-trip exactly,
//! every possible crash truncation recovers the valid prefix, and
//! single-byte mutations never yield a silently-wrong parse — the scan
//! either fails closed or visibly loses the tail, and never panics.

use proptest::prelude::*;

use proxy_storage::log::{frame_into, scan_segment, FRAME_HEADER};
use proxy_storage::{CorruptKind, StorageError, MAX_RECORD};

fn segment(records: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        frame_into(&mut buf, r).expect("frame");
    }
    buf
}

proptest! {
    #[test]
    fn any_record_set_round_trips(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            0..12,
        )
    ) {
        let buf = segment(&records);
        let scan = scan_segment(&buf).expect("intact segment scans");
        prop_assert_eq!(scan.records, records);
        prop_assert_eq!(scan.valid_len, buf.len() as u64);
        prop_assert!(!scan.torn_tail);
    }

    #[test]
    fn any_truncation_recovers_the_valid_prefix(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..100),
            1..8,
        ),
        cut in any::<usize>(),
    ) {
        // A crash can cut an append-only file at any byte; whatever
        // whole records precede the cut must survive, the rest is a
        // tolerated torn tail.
        let buf = segment(&records);
        let cut = cut % (buf.len() + 1); // 0..=len
        let scan = scan_segment(&buf[..cut]).expect("truncation is never corruption");
        prop_assert!(scan.records.len() <= records.len());
        prop_assert_eq!(
            &records[..scan.records.len()],
            &scan.records[..],
            "recovered records are an exact prefix"
        );
        // The tail is torn exactly when the cut landed mid-frame; a cut
        // on a frame boundary is a clean (if shorter) segment.
        prop_assert_eq!(scan.torn_tail, scan.valid_len != cut as u64);
        prop_assert!(scan.valid_len <= cut as u64);
    }

    #[test]
    fn single_byte_mutation_never_parses_silently_wrong(
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..60),
            1..6,
        ),
        at in any::<usize>(),
        xor in 1u8..255,
    ) {
        let original = segment(&records);
        let mut buf = original.clone();
        let at = at % buf.len();
        buf[at] ^= xor;
        // The scan must not panic, and must not claim a clean full
        // parse of the original content: the damage surfaces as a
        // fail-closed error, a torn tail, or changed bytes.
        match scan_segment(&buf) {
            Err(StorageError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
            Ok(scan) => {
                let clean_and_complete = !scan.torn_tail && scan.records == records;
                prop_assert!(
                    !clean_and_complete,
                    "a damaged segment parsed as the undamaged one"
                );
            }
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Hostile input gets a typed result, never a panic (L1 scope).
        let _ = scan_segment(&bytes);
    }
}

#[test]
fn hostile_corpus_fails_closed_where_it_must() {
    // Truncated tail: tolerated, prefix preserved.
    let mut torn = segment(&[b"keep-me".to_vec(), b"casualty".to_vec()]);
    torn.truncate(torn.len() - 3);
    let scan = scan_segment(&torn).expect("torn tail tolerated");
    assert_eq!(scan.records, vec![b"keep-me".to_vec()]);
    assert!(scan.torn_tail);

    // Oversized length prefix: corruption, not a tear, even at the tail.
    let mut oversized = segment(&[b"ok".to_vec()]);
    oversized.extend_from_slice(&(u32::try_from(MAX_RECORD).unwrap() + 1).to_le_bytes());
    oversized.extend_from_slice(&[0u8; 4]);
    let err = scan_segment(&oversized).expect_err("implausible length fails closed");
    assert!(matches!(
        err,
        StorageError::Corrupt {
            record: 1,
            reason: CorruptKind::ImplausibleLength(_),
            ..
        }
    ));

    // CRC mismatch on a structurally complete record: fail-closed at
    // the exact record index.
    let mut flipped = segment(&[b"aaaa".to_vec(), b"bbbb".to_vec()]);
    let second_payload = 2 * FRAME_HEADER + 4;
    flipped[second_payload + 1] ^= 0x80;
    let err = scan_segment(&flipped).expect_err("bit rot fails closed");
    assert!(matches!(
        err,
        StorageError::Corrupt {
            record: 1,
            reason: CorruptKind::CrcMismatch,
            ..
        }
    ));
}
