//! Property-based tests for the accounting layer.
//!
//! The load-bearing invariant: money is conserved and every check settles
//! at most once, for *arbitrary* interleavings of valid and invalid
//! deposits.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use proxy_accounting::{write_check, Account, AccountingServer, ClearingHouse, DepositOutcome};
use proxy_crypto::ed25519::SigningKey;
use restricted_proxy::key::{GrantAuthority, GrantorVerifier};
use restricted_proxy::principal::PrincipalId;
use restricted_proxy::restriction::Currency;
use restricted_proxy::time::{Timestamp, Validity};

fn p(name: &str) -> PrincipalId {
    PrincipalId::new(name)
}

fn usd() -> Currency {
    Currency::new("USD")
}

fn window() -> Validity {
    Validity::new(Timestamp(0), Timestamp(1_000_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary sequences of deposits (including duplicates and over-
    /// drafts) conserve total money, and each distinct check number
    /// settles at most once.
    #[test]
    fn clearing_conserves_money(
        ops in proptest::collection::vec((1u64..20, 1u64..400, any::<bool>()), 1..30),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let carol_key = SigningKey::generate(&mut rng);
        let mut bank = AccountingServer::new(
            p("bank"),
            GrantAuthority::Keypair(SigningKey::generate(&mut rng)),
        );
        bank.register_grantor(p("carol"), GrantorVerifier::PublicKey(carol_key.verifying_key()));
        bank.open_account("carol", vec![p("carol")]);
        bank.open_account("shop", vec![p("shop")]);
        bank.account_mut("carol").unwrap().credit(usd(), 1_000);
        let carol_auth = GrantAuthority::Keypair(carol_key);

        let total = |bank: &AccountingServer| {
            let c: Account = bank.account("carol").unwrap();
            let s: Account = bank.account("shop").unwrap();
            c.balance(&usd()) + c.held(&usd()) + s.balance(&usd())
        };
        let start = total(&bank);
        let mut settled = std::collections::HashSet::new();

        for (check_no, amount, duplicate) in ops {
            let check = write_check(
                &p("carol"), &carol_auth, &p("bank"), "carol", p("shop"),
                check_no, usd(), amount, window(), &mut rng,
            );
            let attempts = if duplicate { 2 } else { 1 };
            for _ in 0..attempts {
                let result = bank.deposit(&check, &p("shop"), "shop", p("bank"), Timestamp(1), &mut rng);
                if let Ok(DepositOutcome::Settled(payment)) = result {
                    prop_assert!(
                        settled.insert(payment.check_no),
                        "check {} settled twice", payment.check_no
                    );
                }
            }
            prop_assert_eq!(total(&bank), start, "money not conserved");
        }
    }

    /// Quota allocate/release sequences conserve balance + allocation.
    #[test]
    fn quota_conserves(ops in proptest::collection::vec((any::<bool>(), 1u64..100), 0..40)) {
        let mut acct = Account::new("a", vec![p("a")]);
        let blocks = Currency::new("blocks");
        acct.credit(blocks.clone(), 1_000);
        for (alloc, amount) in ops {
            if alloc {
                let _ = acct.allocate(blocks.clone(), amount);
            } else {
                let _ = acct.release(&blocks, amount);
            }
            prop_assert_eq!(acct.balance(&blocks) + acct.allocated(&blocks), 1_000);
        }
    }

    /// Multi-hop clearing settles exactly the face amount for any hop
    /// count, and message count is linear in hops: 1 + hops + hops.
    #[test]
    fn multi_hop_message_count(hops in 1usize..6, amount in 1u64..100, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let carol_key = SigningKey::generate(&mut rng);
        let shop_key = SigningKey::generate(&mut rng);
        let n = hops + 1;
        let keys: Vec<SigningKey> = (0..n).map(|_| SigningKey::generate(&mut rng)).collect();
        let names: Vec<PrincipalId> = (0..n).map(|i| p(&format!("b{i}"))).collect();
        let mut house = ClearingHouse::new();
        for (i, name) in names.iter().enumerate() {
            let mut s = AccountingServer::new(name.clone(), GrantAuthority::Keypair(keys[i].clone()));
            if i == 0 {
                s.open_account("shop", vec![p("S")]);
            }
            if i == n - 1 {
                s.open_account("carol", vec![p("C")]);
                s.account_mut("carol").unwrap().credit(usd(), 10_000);
                s.register_grantor(p("C"), GrantorVerifier::PublicKey(carol_key.verifying_key()));
                s.register_grantor(p("S"), GrantorVerifier::PublicKey(shop_key.verifying_key()));
                for (j, k) in keys.iter().enumerate().take(n - 1) {
                    s.register_grantor(names[j].clone(), GrantorVerifier::PublicKey(k.verifying_key()));
                }
            }
            house.add_server(s);
        }
        for i in 0..n.saturating_sub(2) {
            house.set_route(names[i].clone(), names[n - 1].clone(), names[i + 1].clone());
        }
        let check = write_check(
            &p("C"), &GrantAuthority::Keypair(carol_key), &names[n - 1], "carol", p("S"),
            1, usd(), amount, window(), &mut rng,
        );
        let report = house
            .deposit_and_clear(
                &check, &p("S"), &GrantAuthority::Keypair(shop_key), &names[0], "shop",
                Timestamp(1), &mut rng, None,
            )
            .unwrap();
        prop_assert_eq!(report.payment.amount, amount);
        prop_assert_eq!(report.hops, hops);
        prop_assert_eq!(report.messages as usize, 1 + hops + hops);
    }
}
