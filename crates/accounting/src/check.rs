//! Checks as numbered delegate proxies (§4).
//!
//! "A principal authorized to debit an account (the payor) issues a
//! numbered delegate proxy (a check) authorizing the payee to transfer
//! funds from the payor's account to that of the payee." Every semantic
//! field of the check — payee, amount limit, check number, drawee server,
//! debited account — is carried as a *restriction* inside the signed
//! certificate, so tampering with any of them breaks the seal.

use rand::RngCore;

use restricted_proxy::key::GrantAuthority;
use restricted_proxy::principal::PrincipalId;
use restricted_proxy::proxy::{delegate_cascade, grant, Proxy};
use restricted_proxy::restriction::{
    AuthorizedEntry, Currency, ObjectName, Operation, Restriction, RestrictionSet,
};
use restricted_proxy::time::Validity;

use crate::error::AcctError;

/// The operation name used for debiting via checks.
#[must_use]
pub fn debit_op() -> Operation {
    Operation::new("debit")
}

/// The object name representing an account in restriction terms.
#[must_use]
pub fn account_object(account: &str) -> ObjectName {
    ObjectName::new(format!("acct:{account}"))
}

/// A check: a restricted proxy whose certificate chain starts with the
/// payor's numbered delegate proxy and grows by one endorsement per hop
/// (Fig. 5).
#[derive(Clone, Debug)]
pub struct Check {
    /// The underlying proxy chain.
    pub proxy: Proxy,
}

/// The semantic fields of a check, parsed out of its restrictions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckInfo {
    /// Who wrote the check (the payor).
    pub payor: PrincipalId,
    /// Who it is payable to.
    pub payee: PrincipalId,
    /// The check number (`accept-once` identifier).
    pub check_no: u64,
    /// The currency.
    pub currency: Currency,
    /// The face amount (`quota` limit).
    pub amount: u64,
    /// The accounting server the check is drawn on (`issued-for`).
    pub drawn_on: PrincipalId,
    /// The payor's account to debit.
    pub payor_account: String,
}

/// Writes a check (the `check: [ckno,amount,S]C` of Fig. 5).
///
/// `authority` is the payor's signing credential as known to `drawn_on`
/// (session key or identity keypair). The check is a delegate proxy: only
/// `payee` (or a chain of endorsements rooted at `payee`) can negotiate it.
#[allow(clippy::too_many_arguments)]
pub fn write_check<R: RngCore>(
    payor: &PrincipalId,
    authority: &GrantAuthority,
    drawn_on: &PrincipalId,
    payor_account: &str,
    payee: PrincipalId,
    check_no: u64,
    currency: Currency,
    amount: u64,
    validity: Validity,
    rng: &mut R,
) -> Check {
    let restrictions = RestrictionSet::new()
        .with(Restriction::grantee_one(payee))
        .with(Restriction::AcceptOnce { id: check_no })
        .with(Restriction::Quota {
            currency,
            limit: amount,
        })
        .with(Restriction::issued_for_one(drawn_on.clone()))
        .with(Restriction::Authorized {
            entries: vec![AuthorizedEntry::ops(
                account_object(payor_account),
                vec![debit_op()],
            )],
        });
    Check {
        proxy: grant(payor, authority, restrictions, validity, check_no, rng),
    }
}

impl Check {
    /// Parses the check's semantic fields from its head certificate.
    ///
    /// # Errors
    ///
    /// [`AcctError::MalformedCheck`] naming the missing restriction.
    pub fn info(&self) -> Result<CheckInfo, AcctError> {
        let head = self
            .proxy
            .certs
            .first()
            .ok_or(AcctError::MalformedCheck("empty certificate chain"))?;
        let mut payee = None;
        let mut check_no = None;
        let mut money = None;
        let mut drawn_on = None;
        let mut payor_account = None;
        for r in head.restrictions.iter() {
            match r {
                Restriction::Grantee { delegates, .. } => payee = delegates.first().cloned(),
                Restriction::AcceptOnce { id } => check_no = Some(*id),
                Restriction::Quota { currency, limit } => {
                    money = Some((currency.clone(), *limit));
                }
                Restriction::IssuedFor { servers } => drawn_on = servers.first().cloned(),
                Restriction::Authorized { entries } => {
                    payor_account = entries
                        .first()
                        .and_then(|e| e.object.as_str().strip_prefix("acct:").map(str::to_string));
                }
                // Not check fields: these restrict *use* of the check and
                // are enforced by chain verification, not parsed here.
                // Enumerated (not `_`) so a new Restriction variant forces
                // an explicit decision at this site (§7.9).
                Restriction::ForUseByGroup { .. }
                | Restriction::GroupMembership { .. }
                | Restriction::LimitRestriction { .. } => {}
            }
        }
        let (currency, amount) = money.ok_or(AcctError::MalformedCheck("quota"))?;
        Ok(CheckInfo {
            payor: head.grantor.clone(),
            payee: payee.ok_or(AcctError::MalformedCheck("grantee"))?,
            check_no: check_no.ok_or(AcctError::MalformedCheck("accept-once"))?,
            currency,
            amount,
            drawn_on: drawn_on.ok_or(AcctError::MalformedCheck("issued-for"))?,
            payor_account: payor_account.ok_or(AcctError::MalformedCheck("authorized account"))?,
        })
    }

    /// Endorses the check onward (the `E1`/`E2` messages of Fig. 5): the
    /// current holder grants `to` the right to collect on its behalf.
    ///
    /// A *restricted* (deposit-only) endorsement is a delegate cascade —
    /// it names `to` and leaves an audit trail; pass
    /// `deposit_only = Some(account)` to bind the target account into the
    /// signed endorsement. An unrestricted endorsement passes `None`.
    ///
    /// # Errors
    ///
    /// Propagates [`restricted_proxy::error::GrantError`] as
    /// [`AcctError::Verify`]-free grant failures (window mismatch).
    #[allow(clippy::too_many_arguments)]
    pub fn endorse<R: RngCore>(
        &self,
        endorser: &PrincipalId,
        authority: &GrantAuthority,
        to: PrincipalId,
        deposit_only: Option<&str>,
        validity: Validity,
        serial: u64,
        rng: &mut R,
    ) -> Result<Check, AcctError> {
        let mut additional = RestrictionSet::new();
        if let Some(account) = deposit_only {
            // Bind the deposit target into the signed endorsement, scoped
            // to the endorser's processing (ignored by the drawee's
            // restriction evaluation).
            additional.push(Restriction::LimitRestriction {
                servers: vec![endorser.clone()],
                restrictions: vec![Restriction::Authorized {
                    entries: vec![AuthorizedEntry::ops(
                        ObjectName::new(format!("deposit:{account}")),
                        vec![Operation::new("deposit")],
                    )],
                }],
            });
        }
        let proxy = delegate_cascade(
            &self.proxy.certs,
            endorser,
            authority,
            to,
            additional,
            validity,
            serial,
            rng,
        )
        .map_err(|_| AcctError::MalformedCheck("endorsement window"))?;
        Ok(Check { proxy })
    }

    /// Number of endorsements on the check.
    #[must_use]
    pub fn endorsement_count(&self) -> usize {
        self.proxy.certs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxy_crypto::keys::SymmetricKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use restricted_proxy::time::Timestamp;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn window() -> Validity {
        Validity::new(Timestamp(0), Timestamp(1000))
    }

    fn sample_check(rng: &mut StdRng) -> Check {
        let authority = GrantAuthority::SharedKey(SymmetricKey::generate(rng));
        write_check(
            &p("carol"),
            &authority,
            &p("bank2"),
            "carol-checking",
            p("shop"),
            42,
            Currency::new("USD"),
            250,
            window(),
            rng,
        )
    }

    #[test]
    fn info_round_trips_all_fields() {
        let mut rng = StdRng::seed_from_u64(1);
        let check = sample_check(&mut rng);
        let info = check.info().unwrap();
        assert_eq!(
            info,
            CheckInfo {
                payor: p("carol"),
                payee: p("shop"),
                check_no: 42,
                currency: Currency::new("USD"),
                amount: 250,
                drawn_on: p("bank2"),
                payor_account: "carol-checking".into(),
            }
        );
    }

    #[test]
    fn empty_chain_check_is_malformed_not_panic() {
        use restricted_proxy::key::ProxyKey;
        // Regression: `info()` indexed `certs[0]` and panicked on a
        // hand-built check with no certificates; it must fail closed.
        let mut rng = StdRng::seed_from_u64(3);
        let check = Check {
            proxy: Proxy {
                certs: vec![],
                key: ProxyKey::Symmetric(SymmetricKey::generate(&mut rng)),
            },
        };
        assert!(matches!(
            check.info(),
            Err(AcctError::MalformedCheck("empty certificate chain"))
        ));
    }

    #[test]
    fn check_is_delegate_proxy() {
        let mut rng = StdRng::seed_from_u64(2);
        let check = sample_check(&mut rng);
        assert!(check.proxy.is_delegate());
        assert_eq!(check.endorsement_count(), 0);
    }

    #[test]
    fn endorsements_extend_the_chain() {
        let mut rng = StdRng::seed_from_u64(3);
        let check = sample_check(&mut rng);
        let shop_auth = GrantAuthority::SharedKey(SymmetricKey::generate(&mut rng));
        let endorsed = check
            .endorse(
                &p("shop"),
                &shop_auth,
                p("bank1"),
                Some("shop-account"),
                window(),
                1,
                &mut rng,
            )
            .unwrap();
        assert_eq!(endorsed.endorsement_count(), 1);
        // The original fields still parse from the head.
        assert_eq!(endorsed.info().unwrap().check_no, 42);
        // Second endorsement: bank1 → bank2.
        let bank1_auth = GrantAuthority::SharedKey(SymmetricKey::generate(&mut rng));
        let endorsed2 = endorsed
            .endorse(
                &p("bank1"),
                &bank1_auth,
                p("bank2"),
                None,
                window(),
                2,
                &mut rng,
            )
            .unwrap();
        assert_eq!(endorsed2.endorsement_count(), 2);
    }

    #[test]
    fn malformed_check_reports_missing_field() {
        let mut rng = StdRng::seed_from_u64(4);
        let authority = GrantAuthority::SharedKey(SymmetricKey::generate(&mut rng));
        // A plain proxy without check restrictions is not a check.
        let proxy = restricted_proxy::proxy::grant(
            &p("carol"),
            &authority,
            RestrictionSet::new(),
            window(),
            1,
            &mut rng,
        );
        let check = Check { proxy };
        assert_eq!(check.info(), Err(AcctError::MalformedCheck("quota")));
    }
}
