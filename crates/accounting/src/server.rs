//! The accounting server (§4): accounts, check collection, certification.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::RngCore;

use restricted_proxy::batcher::SealBatcher;
use restricted_proxy::cache::VerifiedCertCache;
use restricted_proxy::context::RequestContext;
use restricted_proxy::key::{GrantAuthority, GrantorVerifier, KeyResolver, MapResolver};
use restricted_proxy::principal::PrincipalId;
use restricted_proxy::proxy::{grant, Proxy};
use restricted_proxy::replay::ReplayCache;
use restricted_proxy::restriction::{
    AuthorizedEntry, Currency, ObjectName, Operation, Restriction, RestrictionSet,
};
use restricted_proxy::revocation::{ArtifactError, RevocationArtifact, RevocationDirectory};
use restricted_proxy::shard::ShardMap;
use restricted_proxy::time::{Timestamp, Validity};
use restricted_proxy::verify::Verifier;

use crate::account::Account;
use crate::check::{account_object, debit_op, Check, CheckInfo};
use crate::error::AcctError;

/// The reserved account cashier's checks are drawn from.
pub const CASHIER_ACCOUNT: &str = "__cashier";

/// A settled payment, sent back along the clearing path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payment {
    /// The payor whose account was debited.
    pub payor: PrincipalId,
    /// The cleared check number.
    pub check_no: u64,
    /// Currency paid.
    pub currency: Currency,
    /// Amount paid.
    pub amount: u64,
}

/// Outcome of depositing a check.
#[derive(Clone, Debug)]
pub enum DepositOutcome {
    /// The check was drawn on this server and settled immediately.
    Settled(Payment),
    /// The check is drawn elsewhere: funds were credited as uncollected
    /// and the endorsed check must be forwarded to the returned next hop.
    Forwarded {
        /// The endorsed check to send onward.
        check: Check,
        /// Where to send it.
        next_hop: PrincipalId,
    },
}

#[derive(Clone, Debug)]
struct Uncollected {
    account: String,
    currency: Currency,
    amount: u64,
}

/// An accounting server: accounts plus the check-clearing machinery of
/// Fig. 5.
///
/// The money-moving paths ([`Self::collect`], [`Self::deposit`],
/// [`Self::forward`], [`Self::certify`], …) take `&self`: accounts and
/// uncollected records live in lock-striped [`ShardMap`]s and the replay
/// guard is a lock-striped [`ReplayCache`], so one server instance is
/// shared across worker threads. Per-account steps (ownership check +
/// hold-taking + debit; crediting) each run atomically under the owning
/// shard's lock — no double-spend is admitted under contention — and
/// multi-account flows acquire locks strictly one at a time (DESIGN.md
/// §9). Administrative setup ([`Self::open_account`],
/// [`Self::register_grantor`], [`Self::account_mut`]) remains `&mut
/// self`.
#[derive(Debug)]
pub struct AccountingServer {
    name: PrincipalId,
    authority: GrantAuthority,
    /// Persistent verifier: holds the grantor directory, batches each
    /// chain's Ed25519 seal checks, and caches positive results so a check
    /// re-presented along a clearing path costs no signature work.
    verifier: Verifier<MapResolver>,
    accounts: ShardMap<String, Account>,
    replay: ReplayCache,
    uncollected: ShardMap<(PrincipalId, u64), Uncollected>,
    next_serial: AtomicU64,
    /// Local mirror of issuers' revoked check/endorsement serials,
    /// consulted by the verifier on every deposited chain.
    revocations: Arc<RevocationDirectory>,
}

impl AccountingServer {
    /// Capacity of the verified-seal cache.
    pub const SEAL_CACHE_CAPACITY: usize = 1024;

    /// Creates an accounting server signing endorsements and
    /// certifications with `authority`.
    #[must_use]
    pub fn new(name: PrincipalId, authority: GrantAuthority) -> Self {
        // The server must be able to verify its own seals (cashier's
        // checks, own endorsements on re-presented chains).
        let self_verifier = match &authority {
            GrantAuthority::SharedKey(k) => GrantorVerifier::SharedKey(k.clone()),
            GrantAuthority::Keypair(sk) => GrantorVerifier::PublicKey(sk.verifying_key()),
        };
        let directory = MapResolver::new().with(name.clone(), self_verifier);
        let revocations = Arc::new(RevocationDirectory::new());
        Self {
            verifier: Verifier::new(name.clone(), directory)
                .with_seal_cache(Self::SEAL_CACHE_CAPACITY)
                .with_revocation(revocations.clone()),
            name,
            authority,
            accounts: ShardMap::new(),
            replay: ReplayCache::new(),
            uncollected: ShardMap::new(),
            next_serial: AtomicU64::new(1),
            revocations,
        }
    }

    /// The local revocation mirror, for instrumentation and epoch sync.
    #[must_use]
    pub fn revocation_directory(&self) -> &Arc<RevocationDirectory> {
        &self.revocations
    }

    /// Verifies and applies a revocation artifact: a revoked check or
    /// endorsement serial is then refused at deposit with no issuer
    /// round trip. Fail-closed like the end-server path — bad seals,
    /// unknown issuers, epoch regressions, and delta-base mismatches all
    /// leave the last good state enforced.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] on unknown issuer, bad seal, epoch regression,
    /// or delta-base mismatch.
    pub fn apply_revocation(&self, artifact: &RevocationArtifact) -> Result<(), ArtifactError> {
        let verifier = self
            .verifier
            .resolver()
            .grantor_verifier(&artifact.issuer)
            .ok_or_else(|| ArtifactError::UnknownIssuer(artifact.issuer.clone()))?;
        if !artifact.verify_seal(&verifier) {
            return Err(ArtifactError::BadSeal);
        }
        self.revocations.apply_verified(artifact)
    }

    fn take_serial(&self) -> u64 {
        self.next_serial.fetch_add(1, Ordering::Relaxed)
    }

    /// The server's principal name.
    #[must_use]
    pub fn name(&self) -> &PrincipalId {
        &self.name
    }

    /// Registers verification material for a principal whose checks or
    /// endorsements this server must verify (payors and peer servers).
    pub fn register_grantor(&mut self, principal: PrincipalId, verifier: GrantorVerifier) {
        self.verifier.resolver_mut().insert(principal, verifier);
    }

    /// The verifier's seal cache, for instrumentation.
    #[must_use]
    pub fn seal_cache(&self) -> Option<&VerifiedCertCache> {
        self.verifier.seal_cache()
    }

    /// Attaches a (typically process-shared) cross-request seal batcher:
    /// check and endorsement seal verification from concurrently-served
    /// deposits then shares one combined batch equation; see
    /// [`restricted_proxy::batcher::SealBatcher`].
    #[must_use]
    pub fn with_seal_batcher(mut self, batcher: Arc<SealBatcher>) -> Self {
        self.verifier = self.verifier.with_seal_batcher(batcher);
        self
    }

    /// Sizes the accept-once replay guard for this server's expected
    /// check volume. The guard is bounded fail-closed
    /// ([`ReplayCache`]): once full of unexpired identifiers it denies
    /// further deposits rather than forgetting a spent check, so a
    /// deployment (or benchmark) that clears more than
    /// [`ReplayCache::DEFAULT_CAPACITY`] live checks must provision it
    /// explicitly.
    #[must_use]
    pub fn with_replay_capacity(mut self, capacity: usize) -> Self {
        self.replay = ReplayCache::with_capacity(capacity, ReplayCache::DEFAULT_SHARDS);
        self
    }

    /// Opens an account.
    pub fn open_account(&mut self, name: impl Into<String>, owners: Vec<PrincipalId>) {
        let name = name.into();
        self.accounts
            .insert(name.clone(), Account::new(name, owners));
    }

    /// A snapshot of an account's current state. (Accounts live behind
    /// shard locks, so reads return a clone rather than a reference.)
    #[must_use]
    pub fn account(&self, name: &str) -> Option<Account> {
        self.accounts.get_cloned(&name.to_string())
    }

    /// Mutable access to an account (administrative credit, quota ops).
    /// `&mut self` guarantees exclusivity, so no shard lock is held.
    pub fn account_mut(&mut self, name: &str) -> Result<&mut Account, AcctError> {
        self.accounts
            .get_mut(&name.to_string())
            .ok_or_else(|| AcctError::UnknownAccount(name.to_string()))
    }

    /// Verifies a check's chain and restrictions as presented by
    /// `presenter`, consuming the check number on success.
    fn verify_check(
        &self,
        check: &Check,
        presenter: &PrincipalId,
        now: Timestamp,
    ) -> Result<CheckInfo, AcctError> {
        let info = check.info()?;
        if info.drawn_on != self.name {
            return Err(AcctError::WrongServer {
                drawn_on: info.drawn_on,
                received_by: self.name.clone(),
            });
        }
        let mut ctx = RequestContext::new(
            self.name.clone(),
            debit_op(),
            account_object(&info.payor_account),
        )
        .at(now)
        .consuming(info.currency.clone(), info.amount);
        // The presenter is authenticated; the server trivially knows its
        // own identity (the final endorsement in a clearing chain names
        // this server as the collector).
        ctx.authenticated = vec![presenter.clone()];
        if *presenter != self.name {
            ctx.authenticated.push(self.name.clone());
        }
        let mut replay = &self.replay;
        self.verifier
            .verify(&check.proxy.present_delegate(), &ctx, &mut replay)
            .map_err(AcctError::Verify)?;
        Ok(info)
    }

    /// Collects a check drawn on this server, presented by `presenter`
    /// (the payee, or the last server in an endorsement chain). Debits the
    /// payor's account — from an outstanding hold when the check was
    /// certified, from the balance otherwise.
    ///
    /// # Errors
    ///
    /// Verification failures (including duplicate check numbers, §7.7),
    /// [`AcctError::NotAuthorized`] when the payor does not own the
    /// account, and [`AcctError::InsufficientFunds`] for uncovered,
    /// uncertified checks.
    pub fn collect(
        &self,
        check: &Check,
        presenter: &PrincipalId,
        now: Timestamp,
    ) -> Result<Payment, AcctError> {
        let info = self.verify_check(check, presenter, now)?;
        // Ownership check, hold-taking, and debit are one atomic step
        // under the payor account's shard lock: racing presenters cannot
        // interleave between the balance check and the debit.
        self.accounts.update(&info.payor_account, |account| {
            let account =
                account.ok_or_else(|| AcctError::UnknownAccount(info.payor_account.clone()))?;
            if !account.is_owner(&info.payor) {
                return Err(AcctError::NotAuthorized(info.payor.clone()));
            }
            match account.take_hold(info.check_no) {
                Some(hold) => {
                    // Certified check: settle from the hold.
                    debug_assert_eq!(hold.amount, info.amount);
                }
                None => account.debit(&info.currency, info.amount)?,
            }
            Ok(())
        })?;
        Ok(Payment {
            payor: info.payor,
            check_no: info.check_no,
            currency: info.currency,
            amount: info.amount,
        })
    }

    /// Deposits a check into `to_account`. If drawn on this server it
    /// settles immediately; otherwise the deposit is credited as
    /// *uncollected*, the check is endorsed (deposit-only) toward
    /// `next_hop`, and the caller forwards it (Fig. 5's E1).
    ///
    /// # Errors
    ///
    /// [`AcctError::UnknownAccount`] and, for same-server settlement, the
    /// errors of [`collect`](Self::collect).
    pub fn deposit<R: RngCore>(
        &self,
        check: &Check,
        depositor: &PrincipalId,
        to_account: &str,
        next_hop: PrincipalId,
        now: Timestamp,
        rng: &mut R,
    ) -> Result<DepositOutcome, AcctError> {
        if !self.accounts.contains_key(&to_account.to_string()) {
            return Err(AcctError::UnknownAccount(to_account.to_string()));
        }
        let info = check.info()?;
        // A check payable to this server would satisfy its own grantee
        // restriction during chain-walking (the server trivially counts as
        // authenticated); only the server itself may negotiate such a
        // check, or any depositor could route its funds anywhere.
        if info.payee == self.name && *depositor != self.name {
            return Err(AcctError::NotAuthorized(depositor.clone()));
        }
        if info.drawn_on == self.name {
            // `collect` debits the payor under that account's shard lock
            // and releases it before we credit the payee here — locks are
            // acquired strictly one at a time (DESIGN.md §9).
            let payment = self.collect(check, depositor, now)?;
            self.accounts.update(&to_account.to_string(), |acct| {
                acct.ok_or_else(|| AcctError::UnknownAccount(to_account.to_string()))
                    .map(|a| a.credit(payment.currency.clone(), payment.amount))
            })?;
            return Ok(DepositOutcome::Settled(payment));
        }
        // Credit as uncollected and endorse toward the drawee.
        self.uncollected.insert(
            (info.payor.clone(), info.check_no),
            Uncollected {
                account: to_account.to_string(),
                currency: info.currency.clone(),
                amount: info.amount,
            },
        );
        let serial = self.take_serial();
        let window = check
            .proxy
            .effective_validity()
            .ok_or(AcctError::MalformedCheck("validity"))?;
        let endorsed = check.endorse(
            &self.name,
            &self.authority,
            next_hop.clone(),
            Some(to_account),
            window,
            serial,
            rng,
        )?;
        Ok(DepositOutcome::Forwarded {
            check: endorsed,
            next_hop,
        })
    }

    /// An intermediate clearing hop (Fig. 5 repeated endorsements): this
    /// server endorses the check onward to `next_hop`.
    ///
    /// # Errors
    ///
    /// [`AcctError::MalformedCheck`] for degenerate validity windows.
    pub fn forward<R: RngCore>(
        &self,
        check: &Check,
        next_hop: PrincipalId,
        rng: &mut R,
    ) -> Result<Check, AcctError> {
        let serial = self.take_serial();
        let window = check
            .proxy
            .effective_validity()
            .ok_or(AcctError::MalformedCheck("validity"))?;
        check.endorse(
            &self.name,
            &self.authority,
            next_hop,
            None,
            window,
            serial,
            rng,
        )
    }

    /// Applies a returned payment: marks the matching uncollected deposit
    /// as collected (the funds are final).
    ///
    /// Returns `true` when a matching uncollected record existed.
    pub fn apply_payment(&self, payment: &Payment) -> bool {
        match self
            .uncollected
            .remove(&(payment.payor.clone(), payment.check_no))
        {
            Some(u) => {
                // The deposit was credited as uncollected at deposit time;
                // finality means it stays. (A bounced check would instead
                // reverse it — see `bounce`.) The atomic `remove` is the
                // linearization point: a racing duplicate payment finds
                // nothing and credits nothing.
                debug_assert_eq!(u.amount, payment.amount);
                let Uncollected {
                    account,
                    currency,
                    amount,
                } = u;
                self.accounts.update(&account, |acct| {
                    if let Some(acct) = acct {
                        acct.credit(currency, amount);
                    }
                });
                true
            }
            None => false,
        }
    }

    /// Reverses an uncollected deposit whose check bounced (insufficient
    /// funds at the drawee — the out-of-band path §4 mentions).
    ///
    /// Returns `true` when a matching uncollected record existed.
    pub fn bounce(&self, payor: &PrincipalId, check_no: u64) -> bool {
        self.uncollected
            .remove(&(payor.clone(), check_no))
            .is_some()
    }

    /// Amount of `currency` pending collection into `account`
    /// (quiescently consistent across shards).
    #[must_use]
    pub fn uncollected_total(&self, account: &str, currency: &Currency) -> u64 {
        self.uncollected.fold(0u64, |acc, _, u| {
            if u.account == account && u.currency == *currency {
                acc + u.amount
            } else {
                acc
            }
        })
    }

    /// Issues a cashier's check (§4 leaves these "as an exercise"): the
    /// purchaser pays immediately, the funds move into the server's
    /// cashier pool, and the returned check is drawn *by the server on
    /// itself* — it cannot bounce.
    ///
    /// # Errors
    ///
    /// [`AcctError::NotAuthorized`] unless `purchaser` owns
    /// `from_account`; [`AcctError::InsufficientFunds`] when the purchase
    /// cannot be covered.
    #[allow(clippy::too_many_arguments)]
    pub fn cashiers_check<R: RngCore>(
        &self,
        purchaser: &PrincipalId,
        from_account: &str,
        payee: PrincipalId,
        check_no: u64,
        currency: Currency,
        amount: u64,
        validity: Validity,
        rng: &mut R,
    ) -> Result<Check, AcctError> {
        // Ownership check + debit: atomic under the purchaser's shard
        // lock, released before the cashier pool is touched.
        self.accounts.update(&from_account.to_string(), |acct| {
            let acct = acct.ok_or_else(|| AcctError::UnknownAccount(from_account.to_string()))?;
            if !acct.is_owner(purchaser) {
                return Err(AcctError::NotAuthorized(purchaser.clone()));
            }
            acct.debit(&currency, amount)
        })?;
        // Funds wait in the cashier pool until the check is collected.
        let pool_name = CASHIER_ACCOUNT.to_string();
        self.accounts.upsert(
            pool_name.clone(),
            || Account::new(pool_name, vec![self.name.clone()]),
            |pool| pool.credit(currency.clone(), amount),
        );
        // The server can verify its own signature at collection time: its
        // verifier registered the self-key at construction.
        Ok(crate::check::write_check(
            &self.name,
            &self.authority,
            &self.name,
            CASHIER_ACCOUNT,
            payee,
            check_no,
            currency,
            amount,
            validity,
            rng,
        ))
    }

    /// Certifies a check (§4's second mechanism): places a hold on the
    /// payor's funds and returns an authorization proxy "certifying that
    /// the client has sufficient resources to cover the check".
    ///
    /// # Errors
    ///
    /// [`AcctError::NotAuthorized`] unless `requester` owns the account;
    /// [`AcctError::InsufficientFunds`] when the hold cannot be covered.
    #[allow(clippy::too_many_arguments)]
    pub fn certify<R: RngCore>(
        &self,
        requester: &PrincipalId,
        account: &str,
        check_no: u64,
        currency: Currency,
        amount: u64,
        payee: PrincipalId,
        validity: Validity,
        rng: &mut R,
    ) -> Result<Proxy, AcctError> {
        // Ownership check + hold placement: one atomic step under the
        // account's shard lock, so concurrent certifications cannot
        // over-commit the balance.
        self.accounts.update(&account.to_string(), |acct| {
            let acct = acct.ok_or_else(|| AcctError::UnknownAccount(account.to_string()))?;
            if !acct.is_owner(requester) {
                return Err(AcctError::NotAuthorized(requester.clone()));
            }
            acct.place_hold(check_no, currency.clone(), amount, payee)
        })?;
        let serial = self.take_serial();
        let restrictions = RestrictionSet::new()
            .with(Restriction::Authorized {
                entries: vec![AuthorizedEntry::ops(
                    ObjectName::new(format!("certified-check:{check_no}")),
                    vec![Operation::new("certify")],
                )],
            })
            .with(Restriction::Quota {
                currency,
                limit: amount,
            });
        Ok(grant(
            &self.name,
            &self.authority,
            restrictions,
            validity,
            serial,
            rng,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::write_check;
    use proxy_crypto::ed25519::SigningKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn usd() -> Currency {
        Currency::new("USD")
    }

    fn window() -> Validity {
        Validity::new(Timestamp(0), Timestamp(1000))
    }

    struct Fixture {
        rng: StdRng,
        bank: AccountingServer,
        carol_auth: GrantAuthority,
    }

    /// One bank holding both carol's and the shop's accounts.
    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(1);
        let bank_key = SigningKey::generate(&mut rng);
        let carol_key = SigningKey::generate(&mut rng);
        let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key));
        bank.register_grantor(
            p("carol"),
            GrantorVerifier::PublicKey(carol_key.verifying_key()),
        );
        bank.open_account("carol-acct", vec![p("carol")]);
        bank.open_account("shop-acct", vec![p("shop")]);
        bank.account_mut("carol-acct").unwrap().credit(usd(), 500);
        Fixture {
            rng,
            bank,
            carol_auth: GrantAuthority::Keypair(carol_key),
        }
    }

    fn carol_check(f: &mut Fixture, check_no: u64, amount: u64) -> Check {
        write_check(
            &p("carol"),
            &f.carol_auth,
            &p("bank"),
            "carol-acct",
            p("shop"),
            check_no,
            usd(),
            amount,
            window(),
            &mut f.rng,
        )
    }

    #[test]
    fn same_server_deposit_settles_immediately() {
        let mut f = fixture();
        let check = carol_check(&mut f, 1, 100);
        let outcome = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Settled(_)));
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 400);
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 100);
    }

    #[test]
    fn check_verification_goes_through_the_seal_cache() {
        let mut f = fixture();
        let check = carol_check(&mut f, 21, 10);
        f.bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        let cache = f.bank.seal_cache().unwrap();
        let (_, misses) = cache.stats();
        assert!(misses >= 1, "seal checks routed through the cache");
        assert!(!cache.is_empty(), "positive results cached");
        // A second, distinct check re-pays only its own seal, not a
        // rebuilt verifier (the cache and directory persist).
        let check2 = carol_check(&mut f, 22, 10);
        f.bank
            .deposit(
                &check2,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut f.rng,
            )
            .unwrap();
        assert!(f.bank.seal_cache().unwrap().len() >= 2);
    }

    #[test]
    fn duplicate_check_number_rejected() {
        let mut f = fixture();
        let check = carol_check(&mut f, 7, 50);
        assert!(f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng
            )
            .is_ok());
        // The same check (same number) again: rejected by accept-once.
        let err = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)), "got {err:?}");
        // Balance unchanged by the replay.
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 450);
    }

    #[test]
    fn replay_guard_capacity_is_provisionable_and_fail_closed() {
        // Undersized guard (~one slot per stripe): a burst of distinct
        // checks must see denials once the stripes fill — the guard
        // fails closed rather than forgetting a spent check — and every
        // deposit that does settle moves exactly its face value.
        let mut f = fixture();
        f.bank = f.bank.with_replay_capacity(1);
        let mut settled = 0u64;
        for no in 1..=40 {
            let check = carol_check(&mut f, no, 1);
            if f.bank
                .deposit(
                    &check,
                    &p("shop"),
                    "shop-acct",
                    p("bank"),
                    Timestamp(1),
                    &mut f.rng,
                )
                .is_ok()
            {
                settled += 1;
            }
        }
        assert!(settled < 40, "undersized accept-once guard fails closed");
        assert_eq!(
            f.bank.account("shop-acct").unwrap().balance(&usd()),
            settled
        );

        // Provisioned for the volume, the same burst settles completely.
        let mut f = fixture();
        f.bank = f.bank.with_replay_capacity(4096);
        for no in 1..=40 {
            let check = carol_check(&mut f, no, 1);
            f.bank
                .deposit(
                    &check,
                    &p("shop"),
                    "shop-acct",
                    p("bank"),
                    Timestamp(1),
                    &mut f.rng,
                )
                .expect("provisioned guard admits distinct checks");
        }
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 40);
    }

    #[test]
    fn insufficient_funds_bounce() {
        let mut f = fixture();
        let check = carol_check(&mut f, 2, 9_999);
        let err = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::InsufficientFunds { .. }));
    }

    #[test]
    fn only_payee_can_negotiate() {
        let mut f = fixture();
        f.bank.open_account("mallory-acct", vec![p("mallory")]);
        let check = carol_check(&mut f, 3, 100);
        // Mallory found the check on the wire and tries to cash it.
        let err = f
            .bank
            .deposit(
                &check,
                &p("mallory"),
                "mallory-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    #[test]
    fn forged_check_rejected() {
        let mut f = fixture();
        // Mallory forges a check "from carol" with her own key.
        let mallory_key = SigningKey::generate(&mut f.rng);
        let forged = write_check(
            &p("carol"),
            &GrantAuthority::Keypair(mallory_key),
            &p("bank"),
            "carol-acct",
            p("shop"),
            4,
            usd(),
            100,
            window(),
            &mut f.rng,
        );
        let err = f
            .bank
            .deposit(
                &forged,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    #[test]
    fn check_amount_tampering_rejected() {
        let mut f = fixture();
        let check = carol_check(&mut f, 5, 10);
        // Attacker rewrites the quota limit upward in the certificate.
        let mut tampered = check.clone();
        let mut new_set = RestrictionSet::new();
        for r in tampered.proxy.certs[0].restrictions.iter() {
            new_set.push(match r {
                Restriction::Quota { currency, .. } => Restriction::Quota {
                    currency: currency.clone(),
                    limit: 400,
                },
                other => other.clone(),
            });
        }
        tampered.proxy.certs[0].restrictions = new_set;
        let err = f
            .bank
            .deposit(
                &tampered,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    #[test]
    fn certified_check_settles_from_hold() {
        let mut f = fixture();
        // Carol certifies check 9 for 200.
        let cert_proxy = f
            .bank
            .certify(
                &p("carol"),
                "carol-acct",
                9,
                usd(),
                200,
                p("shop"),
                window(),
                &mut f.rng,
            )
            .unwrap();
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 300);
        assert_eq!(f.bank.account("carol-acct").unwrap().held(&usd()), 200);
        assert!(!cert_proxy.is_delegate(), "certification is a bearer proxy");
        // Carol then spends her whole remaining balance.
        f.bank
            .account_mut("carol-acct")
            .unwrap()
            .debit(&usd(), 300)
            .unwrap();
        // The certified check still clears — that is the guarantee.
        let check = carol_check(&mut f, 9, 200);
        let outcome = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Settled(_)));
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 200);
        assert_eq!(f.bank.account("carol-acct").unwrap().held(&usd()), 0);
    }

    #[test]
    fn certify_requires_ownership_and_funds() {
        let mut f = fixture();
        assert!(matches!(
            f.bank.certify(
                &p("mallory"),
                "carol-acct",
                9,
                usd(),
                10,
                p("shop"),
                window(),
                &mut f.rng
            ),
            Err(AcctError::NotAuthorized(_))
        ));
        assert!(matches!(
            f.bank.certify(
                &p("carol"),
                "carol-acct",
                9,
                usd(),
                10_000,
                p("shop"),
                window(),
                &mut f.rng
            ),
            Err(AcctError::InsufficientFunds { .. })
        ));
    }

    #[test]
    fn cross_server_deposit_forwards_endorsed_check() {
        let mut f = fixture();
        // A second bank holds the shop's account; carol's check is drawn
        // on f.bank.
        let mut rng = StdRng::seed_from_u64(5);
        let bank1_key = SigningKey::generate(&mut rng);
        let mut bank1 = AccountingServer::new(p("bank1"), GrantAuthority::Keypair(bank1_key));
        bank1.open_account("shop-acct", vec![p("shop")]);
        let check = carol_check(&mut f, 11, 75);
        let outcome = bank1
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut rng,
            )
            .unwrap();
        let DepositOutcome::Forwarded {
            check: endorsed,
            next_hop,
        } = outcome
        else {
            panic!("expected forward");
        };
        assert_eq!(next_hop, p("bank"));
        assert_eq!(endorsed.endorsement_count(), 1);
        // Funds are pending, not final.
        assert_eq!(bank1.uncollected_total("shop-acct", &usd()), 75);
        assert_eq!(bank1.account("shop-acct").unwrap().balance(&usd()), 0);
    }

    #[test]
    fn cashiers_check_cannot_bounce() {
        let mut f = fixture();
        // Carol buys a cashier's check for 200.
        let check = f
            .bank
            .cashiers_check(
                &p("carol"),
                "carol-acct",
                p("shop"),
                77,
                usd(),
                200,
                window(),
                &mut f.rng,
            )
            .unwrap();
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 300);
        assert_eq!(
            f.bank.account(CASHIER_ACCOUNT).unwrap().balance(&usd()),
            200
        );
        // Carol goes broke; the cashier's check still clears.
        f.bank
            .account_mut("carol-acct")
            .unwrap()
            .debit(&usd(), 300)
            .unwrap();
        let outcome = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Settled(_)));
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 200);
        assert_eq!(f.bank.account(CASHIER_ACCOUNT).unwrap().balance(&usd()), 0);
    }

    #[test]
    fn cashiers_check_requires_funds_and_ownership() {
        let mut f = fixture();
        assert!(matches!(
            f.bank.cashiers_check(
                &p("mallory"),
                "carol-acct",
                p("shop"),
                1,
                usd(),
                10,
                window(),
                &mut f.rng
            ),
            Err(AcctError::NotAuthorized(_))
        ));
        assert!(matches!(
            f.bank.cashiers_check(
                &p("carol"),
                "carol-acct",
                p("shop"),
                1,
                usd(),
                10_000,
                window(),
                &mut f.rng
            ),
            Err(AcctError::InsufficientFunds { .. })
        ));
        // No partial state change on failure.
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 500);
    }

    #[test]
    fn cashiers_check_only_payee_negotiates() {
        let mut f = fixture();
        f.bank.open_account("mallory-acct", vec![p("mallory")]);
        let check = f
            .bank
            .cashiers_check(
                &p("carol"),
                "carol-acct",
                p("shop"),
                78,
                usd(),
                50,
                window(),
                &mut f.rng,
            )
            .unwrap();
        let err = f
            .bank
            .deposit(
                &check,
                &p("mallory"),
                "mallory-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    #[test]
    fn check_payable_to_the_bank_cannot_be_hijacked() {
        // Carol writes a check payable to the bank itself (e.g. a fee).
        // Mallory intercepts it and tries to deposit it into her account;
        // the bank must refuse, since the grantee is the bank, not her.
        let mut f = fixture();
        f.bank.open_account("mallory-acct", vec![p("mallory")]);
        let check = write_check(
            &p("carol"),
            &f.carol_auth,
            &p("bank"),
            "carol-acct",
            p("bank"),
            91,
            usd(),
            50,
            window(),
            &mut f.rng,
        );
        let err = f
            .bank
            .deposit(
                &check,
                &p("mallory"),
                "mallory-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert_eq!(err, AcctError::NotAuthorized(p("mallory")));
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 500);
    }
}
