//! The accounting server (§4): accounts, check collection, certification.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::RngCore;

use proxy_storage::artifacts::StoredArtifact;
use proxy_storage::{ArtifactStore, Storage};
use restricted_proxy::batcher::SealBatcher;
use restricted_proxy::cache::VerifiedCertCache;
use restricted_proxy::context::RequestContext;
use restricted_proxy::key::{GrantAuthority, GrantorVerifier, KeyResolver, MapResolver};
use restricted_proxy::principal::PrincipalId;
use restricted_proxy::proxy::{grant, Proxy};
use restricted_proxy::replay::ReplayCache;
use restricted_proxy::restriction::{
    AuthorizedEntry, Currency, ObjectName, Operation, Restriction, RestrictionSet,
};
use restricted_proxy::revocation::{ArtifactError, RevocationArtifact, RevocationDirectory};
use restricted_proxy::shard::ShardMap;
use restricted_proxy::time::{Timestamp, Validity};
use restricted_proxy::verify::Verifier;

use crate::account::Account;
use crate::check::{account_object, debit_op, Check, CheckInfo};
use crate::error::AcctError;
use crate::journal::{
    Journal, JournalRecord, JournaledReplay, OpGuard, PendingDeposit, ReplayMark, SnapshotState,
};

/// The reserved account cashier's checks are drawn from.
pub const CASHIER_ACCOUNT: &str = "__cashier";

/// A settled payment, sent back along the clearing path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payment {
    /// The payor whose account was debited.
    pub payor: PrincipalId,
    /// The cleared check number.
    pub check_no: u64,
    /// Currency paid.
    pub currency: Currency,
    /// Amount paid.
    pub amount: u64,
}

/// Outcome of depositing a check.
#[derive(Clone, Debug)]
pub enum DepositOutcome {
    /// The check was drawn on this server and settled immediately.
    Settled(Payment),
    /// The check is drawn elsewhere: funds were credited as uncollected
    /// and the endorsed check must be forwarded to the returned next hop.
    Forwarded {
        /// The endorsed check to send onward.
        check: Check,
        /// Where to send it.
        next_hop: PrincipalId,
    },
}

#[derive(Clone, Debug)]
struct Uncollected {
    account: String,
    currency: Currency,
    amount: u64,
}

/// An accounting server: accounts plus the check-clearing machinery of
/// Fig. 5.
///
/// The money-moving paths ([`Self::collect`], [`Self::deposit`],
/// [`Self::forward`], [`Self::certify`], …) take `&self`: accounts and
/// uncollected records live in lock-striped [`ShardMap`]s and the replay
/// guard is a lock-striped [`ReplayCache`], so one server instance is
/// shared across worker threads. Per-account steps (ownership check +
/// hold-taking + debit; crediting) each run atomically under the owning
/// shard's lock — no double-spend is admitted under contention — and
/// multi-account flows acquire locks strictly one at a time (DESIGN.md
/// §9). Administrative setup ([`Self::open_account`],
/// [`Self::register_grantor`], [`Self::account_mut`]) remains `&mut
/// self`.
#[derive(Debug)]
pub struct AccountingServer {
    name: PrincipalId,
    authority: GrantAuthority,
    /// Persistent verifier: holds the grantor directory, batches each
    /// chain's Ed25519 seal checks, and caches positive results so a check
    /// re-presented along a clearing path costs no signature work.
    verifier: Verifier<MapResolver>,
    accounts: ShardMap<String, Account>,
    replay: ReplayCache,
    uncollected: ShardMap<(PrincipalId, u64), Uncollected>,
    next_serial: AtomicU64,
    /// Local mirror of issuers' revoked check/endorsement serials,
    /// consulted by the verifier on every deposited chain.
    revocations: Arc<RevocationDirectory>,
    /// The durable redo journal, when this server was opened on a
    /// storage backend ([`Self::with_storage`]). `None` keeps every
    /// path exactly as before — memory-only, no fsync.
    journal: Option<Journal>,
    /// Persisted revocation artifacts ([`Self::with_artifact_store`]):
    /// verified artifacts are re-recorded here so a restart re-enforces
    /// the same revocation state without refetching from issuers.
    artifacts: Option<ArtifactStore<Arc<dyn Storage>>>,
}

impl AccountingServer {
    /// Capacity of the verified-seal cache.
    pub const SEAL_CACHE_CAPACITY: usize = 1024;

    /// Creates an accounting server signing endorsements and
    /// certifications with `authority`.
    #[must_use]
    pub fn new(name: PrincipalId, authority: GrantAuthority) -> Self {
        // The server must be able to verify its own seals (cashier's
        // checks, own endorsements on re-presented chains).
        let self_verifier = match &authority {
            GrantAuthority::SharedKey(k) => GrantorVerifier::SharedKey(k.clone()),
            GrantAuthority::Keypair(sk) => GrantorVerifier::PublicKey(sk.verifying_key()),
        };
        let directory = MapResolver::new().with(name.clone(), self_verifier);
        let revocations = Arc::new(RevocationDirectory::new());
        Self {
            verifier: Verifier::new(name.clone(), directory)
                .with_seal_cache(Self::SEAL_CACHE_CAPACITY)
                .with_revocation(revocations.clone()),
            name,
            authority,
            accounts: ShardMap::new(),
            replay: ReplayCache::new(),
            uncollected: ShardMap::new(),
            next_serial: AtomicU64::new(1),
            revocations,
            journal: None,
            artifacts: None,
        }
    }

    /// Opens this server on a durable storage backend: recovers the
    /// compacted snapshot plus the journaled record suffix (rebuilding
    /// accounts, uncollected deposits, the serial counter, and the
    /// replay guard's accept-once memory), then journals every later
    /// state-changing operation through `store`.
    ///
    /// Call after [`Self::with_replay_capacity`] (recovered marks land
    /// in the final guard) and before opening accounts, so a fresh
    /// boot's setup is journaled too. The TCP/event-loop paths are
    /// unchanged: durability is purely a constructor option.
    ///
    /// # Errors
    ///
    /// [`AcctError::Storage`] when the backend fails or refuses a
    /// corrupted log (fail-closed), [`AcctError::BadJournal`] when a
    /// stored record does not decode, and any replay-application error
    /// (a log inconsistent with itself).
    pub fn with_storage(mut self, store: Arc<dyn Storage>) -> Result<Self, AcctError> {
        let recovered = store.load()?;
        if let Some(snap) = &recovered.snapshot {
            let state = SnapshotState::decode(snap)?;
            self.install_snapshot_state(state);
        }
        for rec in &recovered.records {
            let rec = JournalRecord::decode(rec)?;
            self.replay_record(rec)?;
        }
        self.journal = Some(Journal::new(store));
        Ok(self)
    }

    /// Adjusts how many journal records accumulate between automatic
    /// snapshot installs (0 disables auto-compaction; explicit
    /// [`Self::compact`] still works). No effect without
    /// [`Self::with_storage`].
    #[must_use]
    pub fn with_compaction_every(mut self, every: u64) -> Self {
        if let Some(j) = self.journal.as_mut() {
            j.set_snapshot_every(every);
        }
        self
    }

    /// Attaches a persisted revocation-artifact store: every artifact it
    /// holds is seal-verified and re-applied (restoring the revocation
    /// mirror without issuer round trips), and every artifact later
    /// accepted by [`Self::apply_revocation`] is recorded to it.
    ///
    /// Call after registering grantors: an artifact whose issuer is
    /// unknown is refused fail-closed, not skipped. Storage CRC protects
    /// against bit rot, not substitution — re-verification on the way in
    /// is what makes the store trustworthy.
    ///
    /// # Errors
    ///
    /// [`AcctError::Storage`] on backend failure, and the
    /// [`Self::apply_revocation`] errors for any stored artifact.
    pub fn with_artifact_store(mut self, store: Arc<dyn Storage>) -> Result<Self, AcctError> {
        let artifacts = ArtifactStore::new(store);
        for stored in artifacts.load()? {
            match stored {
                StoredArtifact::Revocation(bytes) => {
                    let artifact = RevocationArtifact::decode(&bytes)
                        .map_err(|_| AcctError::BadJournal("stored revocation artifact"))?;
                    self.apply_revocation(&artifact)?;
                }
                StoredArtifact::Membership(_) => {
                    // The store format is shared with authorization
                    // servers; an accounting server keeps no membership
                    // mirror, so such entries are not for us.
                }
            }
        }
        self.artifacts = Some(artifacts);
        Ok(self)
    }

    /// The local revocation mirror, for instrumentation and epoch sync.
    #[must_use]
    pub fn revocation_directory(&self) -> &Arc<RevocationDirectory> {
        &self.revocations
    }

    /// Verifies and applies a revocation artifact: a revoked check or
    /// endorsement serial is then refused at deposit with no issuer
    /// round trip. Fail-closed like the end-server path — bad seals,
    /// unknown issuers, epoch regressions, and delta-base mismatches all
    /// leave the last good state enforced. With an artifact store
    /// attached ([`Self::with_artifact_store`]), the verified artifact
    /// is durably recorded so a restart re-enforces it.
    ///
    /// # Errors
    ///
    /// [`AcctError::Artifact`] on unknown issuer, bad seal, epoch
    /// regression, or delta-base mismatch; [`AcctError::Storage`] when
    /// durable recording fails (the revocation is applied in memory, but
    /// the server must treat the store as failed).
    pub fn apply_revocation(&self, artifact: &RevocationArtifact) -> Result<(), AcctError> {
        let verifier = self
            .verifier
            .resolver()
            .grantor_verifier(&artifact.issuer)
            .ok_or_else(|| {
                AcctError::Artifact(ArtifactError::UnknownIssuer(artifact.issuer.clone()))
            })?;
        if !artifact.verify_seal(&verifier) {
            return Err(AcctError::Artifact(ArtifactError::BadSeal));
        }
        self.revocations
            .apply_verified(artifact)
            .map_err(AcctError::Artifact)?;
        if let Some(store) = &self.artifacts {
            store.record(&StoredArtifact::Revocation(artifact.encode()))?;
        }
        Ok(())
    }

    fn take_serial(&self) -> u64 {
        self.next_serial.fetch_add(1, Ordering::Relaxed)
    }

    /// Raises the serial counter to at least `floor` (recovery only).
    fn bump_serial(&self, floor: u64) {
        self.next_serial.fetch_max(floor, Ordering::Relaxed);
    }

    /// Opens the journal's per-operation guard, or `None` when this
    /// server is memory-only.
    fn op_guard(&self) -> Result<Option<OpGuard<'_>>, AcctError> {
        self.journal.as_ref().map(Journal::begin).transpose()
    }

    /// Installs a compacted snapshot of the whole server state,
    /// truncating the journal. Called automatically every
    /// `with_compaction_every` records; a no-op without a journal.
    ///
    /// # Errors
    ///
    /// [`AcctError::Storage`] when the install fails (the journal is
    /// then poisoned — fail-stop).
    pub fn compact(&self) -> Result<(), AcctError> {
        let Some(j) = &self.journal else {
            return Ok(());
        };
        j.compact(|| self.snapshot_state())
    }

    fn maybe_compact(&self) -> Result<(), AcctError> {
        match &self.journal {
            Some(j) if j.compaction_due() => self.compact(),
            _ => Ok(()),
        }
    }

    /// Enumerates the whole server state in canonical order. Callers
    /// must exclude concurrent mutation (the journal's compaction gate,
    /// or `&mut self`).
    fn snapshot_state(&self) -> SnapshotState {
        let mut state = SnapshotState {
            next_serial: self.next_serial.load(Ordering::Relaxed),
            ..SnapshotState::default()
        };
        self.accounts
            .for_each(|_, a| state.accounts.push(a.clone()));
        self.uncollected.for_each(|(payor, check_no), u| {
            state.pending.push(PendingDeposit {
                payor: payor.clone(),
                check_no: *check_no,
                account: u.account.clone(),
                currency: u.currency.clone(),
                amount: u.amount,
            });
        });
        self.replay.for_each_entry(|grantor, id, expires| {
            state.replay.push(ReplayMark {
                grantor: grantor.clone(),
                id,
                expires,
            });
        });
        state.normalize();
        state
    }

    fn install_snapshot_state(&mut self, state: SnapshotState) {
        for account in state.accounts {
            self.accounts.insert(account.name().to_string(), account);
        }
        for p in state.pending {
            self.uncollected.insert(
                (p.payor, p.check_no),
                Uncollected {
                    account: p.account,
                    currency: p.currency,
                    amount: p.amount,
                },
            );
        }
        for m in &state.replay {
            self.replay.rehydrate(&m.grantor, m.id, m.expires);
        }
        self.bump_serial(state.next_serial);
    }

    /// Re-applies one journaled mutation during recovery. No
    /// cryptography runs here: records describe committed state changes,
    /// and a record that cannot be applied means the log disagrees with
    /// itself — an error, never a silent skip.
    fn replay_record(&mut self, rec: JournalRecord) -> Result<(), AcctError> {
        match rec {
            JournalRecord::OpenAccount { name, owners } => {
                self.accounts
                    .insert(name.clone(), Account::new(name, owners));
            }
            JournalRecord::AdminAccount { account } => {
                self.accounts.insert(account.name().to_string(), account);
            }
            JournalRecord::Settle {
                payor_account,
                check_no,
                currency,
                amount,
                from_hold,
                credit_to,
                replay,
            } => {
                self.accounts.update(&payor_account, |acct| {
                    let acct =
                        acct.ok_or(AcctError::BadJournal("settle names a missing account"))?;
                    if from_hold {
                        acct.take_hold(check_no)
                            .ok_or(AcctError::BadJournal("settle names a missing hold"))?;
                    } else {
                        acct.debit(&currency, amount)
                            .map_err(|_| AcctError::BadJournal("settle exceeds the balance"))?;
                    }
                    Ok::<(), AcctError>(())
                })?;
                if let Some(to) = credit_to {
                    self.accounts.update(&to, |acct| {
                        if let Some(acct) = acct {
                            acct.credit(currency.clone(), amount);
                        }
                    });
                }
                for m in &replay {
                    self.replay.rehydrate(&m.grantor, m.id, m.expires);
                }
            }
            JournalRecord::DepositPending {
                payor,
                check_no,
                to_account,
                currency,
                amount,
                serial,
            } => {
                self.uncollected.insert(
                    (payor, check_no),
                    Uncollected {
                        account: to_account,
                        currency,
                        amount,
                    },
                );
                self.bump_serial(serial + 1);
            }
            JournalRecord::Forward { serial } => self.bump_serial(serial + 1),
            JournalRecord::PaymentApplied { payor, check_no } => {
                if let Some(u) = self.uncollected.remove(&(payor, check_no)) {
                    self.accounts.update(&u.account, |acct| {
                        if let Some(acct) = acct {
                            acct.credit(u.currency.clone(), u.amount);
                        }
                    });
                }
            }
            JournalRecord::Bounced { payor, check_no } => {
                self.uncollected.remove(&(payor, check_no));
            }
            JournalRecord::CashierPurchase {
                from_account,
                currency,
                amount,
            } => {
                self.accounts.update(&from_account, |acct| {
                    let acct = acct.ok_or(AcctError::BadJournal(
                        "cashier purchase names a missing account",
                    ))?;
                    acct.debit(&currency, amount)
                        .map_err(|_| AcctError::BadJournal("cashier purchase exceeds the balance"))
                })?;
                let pool_name = CASHIER_ACCOUNT.to_string();
                self.accounts.upsert(
                    pool_name.clone(),
                    || Account::new(pool_name, vec![self.name.clone()]),
                    |pool| pool.credit(currency, amount),
                );
            }
            JournalRecord::Certified {
                account,
                check_no,
                currency,
                amount,
                payee,
                serial,
            } => {
                self.accounts.update(&account, |acct| {
                    let acct =
                        acct.ok_or(AcctError::BadJournal("certify names a missing account"))?;
                    acct.place_hold(check_no, currency.clone(), amount, payee.clone())
                        .map_err(|_| AcctError::BadJournal("certify exceeds the balance"))
                })?;
                self.bump_serial(serial + 1);
            }
        }
        Ok(())
    }

    /// The server's principal name.
    #[must_use]
    pub fn name(&self) -> &PrincipalId {
        &self.name
    }

    /// Registers verification material for a principal whose checks or
    /// endorsements this server must verify (payors and peer servers).
    pub fn register_grantor(&mut self, principal: PrincipalId, verifier: GrantorVerifier) {
        self.verifier.resolver_mut().insert(principal, verifier);
    }

    /// The verifier's seal cache, for instrumentation.
    #[must_use]
    pub fn seal_cache(&self) -> Option<&VerifiedCertCache> {
        self.verifier.seal_cache()
    }

    /// Attaches a (typically process-shared) cross-request seal batcher:
    /// check and endorsement seal verification from concurrently-served
    /// deposits then shares one combined batch equation; see
    /// [`restricted_proxy::batcher::SealBatcher`].
    #[must_use]
    pub fn with_seal_batcher(mut self, batcher: Arc<SealBatcher>) -> Self {
        self.verifier = self.verifier.with_seal_batcher(batcher);
        self
    }

    /// Sizes the accept-once replay guard for this server's expected
    /// check volume. The guard is bounded fail-closed
    /// ([`ReplayCache`]): once full of unexpired identifiers it denies
    /// further deposits rather than forgetting a spent check, so a
    /// deployment (or benchmark) that clears more than
    /// [`ReplayCache::DEFAULT_CAPACITY`] live checks must provision it
    /// explicitly.
    #[must_use]
    pub fn with_replay_capacity(mut self, capacity: usize) -> Self {
        self.replay = ReplayCache::with_capacity(capacity, ReplayCache::DEFAULT_SHARDS);
        self
    }

    /// Opens an account. With a journal attached the opening is durable;
    /// if the journal write fails the account is *not* created and the
    /// server is fail-stop (the journal poisons, and every later durable
    /// operation reports [`AcctError::Storage`]).
    pub fn open_account(&mut self, name: impl Into<String>, owners: Vec<PrincipalId>) {
        let name = name.into();
        if let Some(j) = &self.journal {
            if j.commit(&JournalRecord::OpenAccount {
                name: name.clone(),
                owners: owners.clone(),
            })
            .is_err()
            {
                // `commit` already poisoned the journal; keep memory in
                // agreement with the log by not creating the account.
                return;
            }
        }
        self.accounts
            .insert(name.clone(), Account::new(name, owners));
    }

    /// A snapshot of an account's current state. (Accounts live behind
    /// shard locks, so reads return a clone rather than a reference.)
    #[must_use]
    pub fn account(&self, name: &str) -> Option<Account> {
        self.accounts.get_cloned(&name.to_string())
    }

    /// Mutable access to an account (administrative credit, quota ops).
    /// `&mut self` guarantees exclusivity, so no shard lock is held.
    /// With a journal attached, the guard journals the account's full
    /// post-mutation state when dropped — `Drop` cannot report failure,
    /// so a journal write error poisons the journal (fail-stop) instead.
    pub fn account_mut(&mut self, name: &str) -> Result<AccountMut<'_>, AcctError> {
        let AccountingServer {
            accounts, journal, ..
        } = self;
        let account = accounts
            .get_mut(&name.to_string())
            .ok_or_else(|| AcctError::UnknownAccount(name.to_string()))?;
        Ok(AccountMut {
            account,
            journal: journal.as_ref(),
        })
    }

    /// Verifies a check's chain and restrictions as presented by
    /// `presenter`, consuming the check number on success. Also returns
    /// the accept-once marks consumed, so a durable settlement can
    /// journal them (the replay guard's memory must survive restart).
    fn verify_check(
        &self,
        check: &Check,
        presenter: &PrincipalId,
        now: Timestamp,
    ) -> Result<(CheckInfo, Vec<ReplayMark>), AcctError> {
        let info = check.info()?;
        if info.drawn_on != self.name {
            return Err(AcctError::WrongServer {
                drawn_on: info.drawn_on,
                received_by: self.name.clone(),
            });
        }
        let mut ctx = RequestContext::new(
            self.name.clone(),
            debit_op(),
            account_object(&info.payor_account),
        )
        .at(now)
        .consuming(info.currency.clone(), info.amount);
        // The presenter is authenticated; the server trivially knows its
        // own identity (the final endorsement in a clearing chain names
        // this server as the collector).
        ctx.authenticated = vec![presenter.clone()];
        if *presenter != self.name {
            ctx.authenticated.push(self.name.clone());
        }
        let mut replay = JournaledReplay::new(&self.replay);
        self.verifier
            .verify(&check.proxy.present_delegate(), &ctx, &mut replay)
            .map_err(AcctError::Verify)?;
        Ok((info, replay.into_marks()))
    }

    /// Collects a check drawn on this server, presented by `presenter`
    /// (the payee, or the last server in an endorsement chain). Debits the
    /// payor's account — from an outstanding hold when the check was
    /// certified, from the balance otherwise.
    ///
    /// # Errors
    ///
    /// Verification failures (including duplicate check numbers, §7.7),
    /// [`AcctError::NotAuthorized`] when the payor does not own the
    /// account, and [`AcctError::InsufficientFunds`] for uncovered,
    /// uncertified checks.
    pub fn collect(
        &self,
        check: &Check,
        presenter: &PrincipalId,
        now: Timestamp,
    ) -> Result<Payment, AcctError> {
        let guard = self.op_guard()?;
        let payment = self.settle(check, presenter, now, None)?;
        drop(guard);
        self.maybe_compact()?;
        Ok(payment)
    }

    /// Settles a check drawn here: verify, debit the payor (hold or
    /// balance), and optionally credit `credit_to` (the same-server
    /// deposit path). The caller holds the journal's [`OpGuard`].
    fn settle(
        &self,
        check: &Check,
        presenter: &PrincipalId,
        now: Timestamp,
        credit_to: Option<&str>,
    ) -> Result<Payment, AcctError> {
        let (info, marks) = self.verify_check(check, presenter, now)?;
        // Ownership check, hold-taking, and debit are one atomic step
        // under the payor account's shard lock: racing presenters cannot
        // interleave between the balance check and the debit. With a
        // journal attached, the Settle record is staged inside the same
        // critical section — after validation, before the mutation — so
        // log order agrees with memory order; the fsync wait happens
        // after the lock is released.
        let mut ticket = None;
        self.accounts.update(&info.payor_account, |account| {
            let account =
                account.ok_or_else(|| AcctError::UnknownAccount(info.payor_account.clone()))?;
            if !account.is_owner(&info.payor) {
                return Err(AcctError::NotAuthorized(info.payor.clone()));
            }
            let from_hold = match account.hold(info.check_no) {
                Some(hold) => {
                    // Certified check: settle from the hold.
                    debug_assert_eq!(hold.amount, info.amount);
                    true
                }
                None => {
                    let available = account.balance(&info.currency);
                    if available < info.amount {
                        return Err(AcctError::InsufficientFunds {
                            currency: info.currency.clone(),
                            requested: info.amount,
                            available,
                        });
                    }
                    false
                }
            };
            if let Some(j) = &self.journal {
                ticket = Some(j.stage(&JournalRecord::Settle {
                    payor_account: info.payor_account.clone(),
                    check_no: info.check_no,
                    currency: info.currency.clone(),
                    amount: info.amount,
                    from_hold,
                    credit_to: credit_to.map(str::to_string),
                    replay: marks.clone(),
                })?);
            }
            if from_hold {
                account.take_hold(info.check_no);
            } else {
                account.debit(&info.currency, info.amount)?;
            }
            Ok(())
        })?;
        if let Some(to) = credit_to {
            // The payor's shard lock is released before the payee's is
            // taken — locks strictly one at a time (DESIGN.md §9). The
            // credit rides in the Settle record, so recovery replays both
            // halves or neither.
            self.accounts.update(&to.to_string(), |acct| {
                acct.ok_or_else(|| AcctError::UnknownAccount(to.to_string()))
                    .map(|a| a.credit(info.currency.clone(), info.amount))
            })?;
        }
        if let (Some(t), Some(j)) = (ticket, &self.journal) {
            j.wait(t)?;
        }
        Ok(Payment {
            payor: info.payor,
            check_no: info.check_no,
            currency: info.currency,
            amount: info.amount,
        })
    }

    /// Deposits a check into `to_account`. If drawn on this server it
    /// settles immediately; otherwise the deposit is credited as
    /// *uncollected*, the check is endorsed (deposit-only) toward
    /// `next_hop`, and the caller forwards it (Fig. 5's E1).
    ///
    /// # Errors
    ///
    /// [`AcctError::UnknownAccount`] and, for same-server settlement, the
    /// errors of [`collect`](Self::collect).
    pub fn deposit<R: RngCore>(
        &self,
        check: &Check,
        depositor: &PrincipalId,
        to_account: &str,
        next_hop: PrincipalId,
        now: Timestamp,
        rng: &mut R,
    ) -> Result<DepositOutcome, AcctError> {
        if !self.accounts.contains_key(&to_account.to_string()) {
            return Err(AcctError::UnknownAccount(to_account.to_string()));
        }
        let info = check.info()?;
        // A check payable to this server would satisfy its own grantee
        // restriction during chain-walking (the server trivially counts as
        // authenticated); only the server itself may negotiate such a
        // check, or any depositor could route its funds anywhere.
        if info.payee == self.name && *depositor != self.name {
            return Err(AcctError::NotAuthorized(depositor.clone()));
        }
        let guard = self.op_guard()?;
        if info.drawn_on == self.name {
            // `settle` debits the payor under that account's shard lock
            // and releases it before crediting the payee — locks are
            // acquired strictly one at a time (DESIGN.md §9).
            let payment = self.settle(check, depositor, now, Some(to_account))?;
            drop(guard);
            self.maybe_compact()?;
            return Ok(DepositOutcome::Settled(payment));
        }
        // Credit as uncollected and endorse toward the drawee. The
        // DepositPending record is staged *before* the uncollected entry
        // becomes visible: any dependent record (the payment's return)
        // can only stage after the insert, so log order is safe.
        let serial = self.take_serial();
        let window = check
            .proxy
            .effective_validity()
            .ok_or(AcctError::MalformedCheck("validity"))?;
        let mut ticket = None;
        if let Some(j) = &self.journal {
            ticket = Some(j.stage(&JournalRecord::DepositPending {
                payor: info.payor.clone(),
                check_no: info.check_no,
                to_account: to_account.to_string(),
                currency: info.currency.clone(),
                amount: info.amount,
                serial,
            })?);
        }
        self.uncollected.insert(
            (info.payor.clone(), info.check_no),
            Uncollected {
                account: to_account.to_string(),
                currency: info.currency.clone(),
                amount: info.amount,
            },
        );
        let endorsed = check.endorse(
            &self.name,
            &self.authority,
            next_hop.clone(),
            Some(to_account),
            window,
            serial,
            rng,
        )?;
        if let (Some(t), Some(j)) = (ticket, &self.journal) {
            j.wait(t)?;
        }
        drop(guard);
        self.maybe_compact()?;
        Ok(DepositOutcome::Forwarded {
            check: endorsed,
            next_hop,
        })
    }

    /// An intermediate clearing hop (Fig. 5 repeated endorsements): this
    /// server endorses the check onward to `next_hop`.
    ///
    /// # Errors
    ///
    /// [`AcctError::MalformedCheck`] for degenerate validity windows.
    pub fn forward<R: RngCore>(
        &self,
        check: &Check,
        next_hop: PrincipalId,
        rng: &mut R,
    ) -> Result<Check, AcctError> {
        let guard = self.op_guard()?;
        let serial = self.take_serial();
        let window = check
            .proxy
            .effective_validity()
            .ok_or(AcctError::MalformedCheck("validity"))?;
        // Endorse before committing: signing is the fallible step, and
        // once Forward{serial} is durable the operation must not fail —
        // recovery replays the serial advance whether or not the caller
        // ever saw the endorsed check. A failed endorsement before the
        // commit merely wastes an in-memory serial, which is safe: the
        // accept-once property only matters for serials on issued checks.
        let endorsed = check.endorse(
            &self.name,
            &self.authority,
            next_hop,
            None,
            window,
            serial,
            rng,
        )?;
        if let Some(j) = &self.journal {
            // Endorsement serials are accept-once identifiers at peer
            // servers; persisting the counter's high-water mark keeps a
            // restarted server from re-issuing a consumed serial.
            j.commit(&JournalRecord::Forward { serial })?;
        }
        drop(guard);
        self.maybe_compact()?;
        Ok(endorsed)
    }

    /// Applies a returned payment: marks the matching uncollected deposit
    /// as collected (the funds are final).
    ///
    /// Returns `true` when a matching uncollected record existed.
    ///
    /// # Errors
    ///
    /// [`AcctError::Storage`] when the journal refuses the record; the
    /// uncollected entry is then left untouched.
    pub fn apply_payment(&self, payment: &Payment) -> Result<bool, AcctError> {
        let guard = self.op_guard()?;
        // The gated atomic remove is the linearization point: exactly one
        // of two racing duplicate payments takes the entry (and stages
        // the journal record); the loser finds nothing and credits
        // nothing. The deposit was credited as uncollected at deposit
        // time; finality means it stays. (A bounced check would instead
        // reverse it — see `bounce`.)
        let mut ticket = None;
        let taken =
            self.uncollected
                .remove_if(&(payment.payor.clone(), payment.check_no), |u| {
                    debug_assert_eq!(u.amount, payment.amount);
                    if let Some(j) = &self.journal {
                        ticket = Some(j.stage(&JournalRecord::PaymentApplied {
                            payor: payment.payor.clone(),
                            check_no: payment.check_no,
                        })?);
                    }
                    Ok::<(), AcctError>(())
                })?;
        let applied = match taken {
            Some(u) => {
                let Uncollected {
                    account,
                    currency,
                    amount,
                } = u;
                self.accounts.update(&account, |acct| {
                    if let Some(acct) = acct {
                        acct.credit(currency, amount);
                    }
                });
                true
            }
            None => false,
        };
        if let (Some(t), Some(j)) = (ticket, &self.journal) {
            j.wait(t)?;
        }
        drop(guard);
        self.maybe_compact()?;
        Ok(applied)
    }

    /// Reverses an uncollected deposit whose check bounced (insufficient
    /// funds at the drawee — the out-of-band path §4 mentions).
    ///
    /// Returns `true` when a matching uncollected record existed.
    ///
    /// # Errors
    ///
    /// [`AcctError::Storage`] when the journal refuses the record; the
    /// uncollected entry is then left untouched.
    pub fn bounce(&self, payor: &PrincipalId, check_no: u64) -> Result<bool, AcctError> {
        let guard = self.op_guard()?;
        let mut ticket = None;
        let taken = self
            .uncollected
            .remove_if(&(payor.clone(), check_no), |_| {
                if let Some(j) = &self.journal {
                    ticket = Some(j.stage(&JournalRecord::Bounced {
                        payor: payor.clone(),
                        check_no,
                    })?);
                }
                Ok::<(), AcctError>(())
            })?;
        if let (Some(t), Some(j)) = (ticket, &self.journal) {
            j.wait(t)?;
        }
        drop(guard);
        self.maybe_compact()?;
        Ok(taken.is_some())
    }

    /// Amount of `currency` pending collection into `account`
    /// (quiescently consistent across shards).
    #[must_use]
    pub fn uncollected_total(&self, account: &str, currency: &Currency) -> u64 {
        self.uncollected.fold(0u64, |acc, _, u| {
            if u.account == account && u.currency == *currency {
                acc + u.amount
            } else {
                acc
            }
        })
    }

    /// Issues a cashier's check (§4 leaves these "as an exercise"): the
    /// purchaser pays immediately, the funds move into the server's
    /// cashier pool, and the returned check is drawn *by the server on
    /// itself* — it cannot bounce.
    ///
    /// # Errors
    ///
    /// [`AcctError::NotAuthorized`] unless `purchaser` owns
    /// `from_account`; [`AcctError::InsufficientFunds`] when the purchase
    /// cannot be covered.
    #[allow(clippy::too_many_arguments)]
    pub fn cashiers_check<R: RngCore>(
        &self,
        purchaser: &PrincipalId,
        from_account: &str,
        payee: PrincipalId,
        check_no: u64,
        currency: Currency,
        amount: u64,
        validity: Validity,
        rng: &mut R,
    ) -> Result<Check, AcctError> {
        // Ownership check + debit: atomic under the purchaser's shard
        // lock, released before the cashier pool is touched. The journal
        // record is staged inside the same critical section, after
        // validation.
        let guard = self.op_guard()?;
        let mut ticket = None;
        self.accounts.update(&from_account.to_string(), |acct| {
            let acct = acct.ok_or_else(|| AcctError::UnknownAccount(from_account.to_string()))?;
            if !acct.is_owner(purchaser) {
                return Err(AcctError::NotAuthorized(purchaser.clone()));
            }
            let available = acct.balance(&currency);
            if available < amount {
                return Err(AcctError::InsufficientFunds {
                    currency: currency.clone(),
                    requested: amount,
                    available,
                });
            }
            if let Some(j) = &self.journal {
                ticket = Some(j.stage(&JournalRecord::CashierPurchase {
                    from_account: from_account.to_string(),
                    currency: currency.clone(),
                    amount,
                })?);
            }
            acct.debit(&currency, amount)
        })?;
        // Funds wait in the cashier pool until the check is collected.
        let pool_name = CASHIER_ACCOUNT.to_string();
        self.accounts.upsert(
            pool_name.clone(),
            || Account::new(pool_name, vec![self.name.clone()]),
            |pool| pool.credit(currency.clone(), amount),
        );
        if let (Some(t), Some(j)) = (ticket, &self.journal) {
            j.wait(t)?;
        }
        drop(guard);
        self.maybe_compact()?;
        // The server can verify its own signature at collection time: its
        // verifier registered the self-key at construction.
        Ok(crate::check::write_check(
            &self.name,
            &self.authority,
            &self.name,
            CASHIER_ACCOUNT,
            payee,
            check_no,
            currency,
            amount,
            validity,
            rng,
        ))
    }

    /// Certifies a check (§4's second mechanism): places a hold on the
    /// payor's funds and returns an authorization proxy "certifying that
    /// the client has sufficient resources to cover the check".
    ///
    /// # Errors
    ///
    /// [`AcctError::NotAuthorized`] unless `requester` owns the account;
    /// [`AcctError::InsufficientFunds`] when the hold cannot be covered.
    #[allow(clippy::too_many_arguments)]
    pub fn certify<R: RngCore>(
        &self,
        requester: &PrincipalId,
        account: &str,
        check_no: u64,
        currency: Currency,
        amount: u64,
        payee: PrincipalId,
        validity: Validity,
        rng: &mut R,
    ) -> Result<Proxy, AcctError> {
        // Ownership check + hold placement: one atomic step under the
        // account's shard lock, so concurrent certifications cannot
        // over-commit the balance. The journal record is staged inside
        // the same critical section, after validation.
        let guard = self.op_guard()?;
        let serial = self.take_serial();
        let mut ticket = None;
        self.accounts.update(&account.to_string(), |acct| {
            let acct = acct.ok_or_else(|| AcctError::UnknownAccount(account.to_string()))?;
            if !acct.is_owner(requester) {
                return Err(AcctError::NotAuthorized(requester.clone()));
            }
            let available = acct.balance(&currency);
            if available < amount {
                return Err(AcctError::InsufficientFunds {
                    currency: currency.clone(),
                    requested: amount,
                    available,
                });
            }
            if let Some(j) = &self.journal {
                ticket = Some(j.stage(&JournalRecord::Certified {
                    account: account.to_string(),
                    check_no,
                    currency: currency.clone(),
                    amount,
                    payee: payee.clone(),
                    serial,
                })?);
            }
            acct.place_hold(check_no, currency.clone(), amount, payee.clone())
        })?;
        if let (Some(t), Some(j)) = (ticket, &self.journal) {
            j.wait(t)?;
        }
        drop(guard);
        self.maybe_compact()?;
        let restrictions = RestrictionSet::new()
            .with(Restriction::Authorized {
                entries: vec![AuthorizedEntry::ops(
                    ObjectName::new(format!("certified-check:{check_no}")),
                    vec![Operation::new("certify")],
                )],
            })
            .with(Restriction::Quota {
                currency,
                limit: amount,
            });
        Ok(grant(
            &self.name,
            &self.authority,
            restrictions,
            validity,
            serial,
            rng,
        ))
    }
}

/// Exclusive administrative access to one account
/// ([`AccountingServer::account_mut`]). Dereferences to [`Account`];
/// when the server has a journal, dropping the guard journals the
/// account's full post-mutation state as an `AdminAccount` record.
#[derive(Debug)]
pub struct AccountMut<'a> {
    account: &'a mut Account,
    journal: Option<&'a Journal>,
}

impl Deref for AccountMut<'_> {
    type Target = Account;

    fn deref(&self) -> &Account {
        self.account
    }
}

impl DerefMut for AccountMut<'_> {
    fn deref_mut(&mut self) -> &mut Account {
        self.account
    }
}

impl Drop for AccountMut<'_> {
    fn drop(&mut self) {
        if let Some(j) = self.journal {
            // `Drop` cannot report failure; `commit` poisons the journal
            // on error, so the server goes fail-stop rather than letting
            // memory diverge from the log.
            let _ = j.commit(&JournalRecord::AdminAccount {
                account: self.account.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::write_check;
    use proxy_crypto::ed25519::SigningKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn usd() -> Currency {
        Currency::new("USD")
    }

    fn window() -> Validity {
        Validity::new(Timestamp(0), Timestamp(1000))
    }

    struct Fixture {
        rng: StdRng,
        bank: AccountingServer,
        carol_auth: GrantAuthority,
    }

    /// One bank holding both carol's and the shop's accounts.
    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(1);
        let bank_key = SigningKey::generate(&mut rng);
        let carol_key = SigningKey::generate(&mut rng);
        let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key));
        bank.register_grantor(
            p("carol"),
            GrantorVerifier::PublicKey(carol_key.verifying_key()),
        );
        bank.open_account("carol-acct", vec![p("carol")]);
        bank.open_account("shop-acct", vec![p("shop")]);
        bank.account_mut("carol-acct").unwrap().credit(usd(), 500);
        Fixture {
            rng,
            bank,
            carol_auth: GrantAuthority::Keypair(carol_key),
        }
    }

    fn carol_check(f: &mut Fixture, check_no: u64, amount: u64) -> Check {
        write_check(
            &p("carol"),
            &f.carol_auth,
            &p("bank"),
            "carol-acct",
            p("shop"),
            check_no,
            usd(),
            amount,
            window(),
            &mut f.rng,
        )
    }

    #[test]
    fn same_server_deposit_settles_immediately() {
        let mut f = fixture();
        let check = carol_check(&mut f, 1, 100);
        let outcome = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Settled(_)));
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 400);
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 100);
    }

    #[test]
    fn check_verification_goes_through_the_seal_cache() {
        let mut f = fixture();
        let check = carol_check(&mut f, 21, 10);
        f.bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        let cache = f.bank.seal_cache().unwrap();
        let (_, misses) = cache.stats();
        assert!(misses >= 1, "seal checks routed through the cache");
        assert!(!cache.is_empty(), "positive results cached");
        // A second, distinct check re-pays only its own seal, not a
        // rebuilt verifier (the cache and directory persist).
        let check2 = carol_check(&mut f, 22, 10);
        f.bank
            .deposit(
                &check2,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut f.rng,
            )
            .unwrap();
        assert!(f.bank.seal_cache().unwrap().len() >= 2);
    }

    #[test]
    fn duplicate_check_number_rejected() {
        let mut f = fixture();
        let check = carol_check(&mut f, 7, 50);
        assert!(f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng
            )
            .is_ok());
        // The same check (same number) again: rejected by accept-once.
        let err = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)), "got {err:?}");
        // Balance unchanged by the replay.
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 450);
    }

    #[test]
    fn replay_guard_capacity_is_provisionable_and_fail_closed() {
        // Undersized guard (~one slot per stripe): a burst of distinct
        // checks must see denials once the stripes fill — the guard
        // fails closed rather than forgetting a spent check — and every
        // deposit that does settle moves exactly its face value.
        let mut f = fixture();
        f.bank = f.bank.with_replay_capacity(1);
        let mut settled = 0u64;
        for no in 1..=40 {
            let check = carol_check(&mut f, no, 1);
            if f.bank
                .deposit(
                    &check,
                    &p("shop"),
                    "shop-acct",
                    p("bank"),
                    Timestamp(1),
                    &mut f.rng,
                )
                .is_ok()
            {
                settled += 1;
            }
        }
        assert!(settled < 40, "undersized accept-once guard fails closed");
        assert_eq!(
            f.bank.account("shop-acct").unwrap().balance(&usd()),
            settled
        );

        // Provisioned for the volume, the same burst settles completely.
        let mut f = fixture();
        f.bank = f.bank.with_replay_capacity(4096);
        for no in 1..=40 {
            let check = carol_check(&mut f, no, 1);
            f.bank
                .deposit(
                    &check,
                    &p("shop"),
                    "shop-acct",
                    p("bank"),
                    Timestamp(1),
                    &mut f.rng,
                )
                .expect("provisioned guard admits distinct checks");
        }
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 40);
    }

    #[test]
    fn insufficient_funds_bounce() {
        let mut f = fixture();
        let check = carol_check(&mut f, 2, 9_999);
        let err = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::InsufficientFunds { .. }));
    }

    #[test]
    fn only_payee_can_negotiate() {
        let mut f = fixture();
        f.bank.open_account("mallory-acct", vec![p("mallory")]);
        let check = carol_check(&mut f, 3, 100);
        // Mallory found the check on the wire and tries to cash it.
        let err = f
            .bank
            .deposit(
                &check,
                &p("mallory"),
                "mallory-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    #[test]
    fn forged_check_rejected() {
        let mut f = fixture();
        // Mallory forges a check "from carol" with her own key.
        let mallory_key = SigningKey::generate(&mut f.rng);
        let forged = write_check(
            &p("carol"),
            &GrantAuthority::Keypair(mallory_key),
            &p("bank"),
            "carol-acct",
            p("shop"),
            4,
            usd(),
            100,
            window(),
            &mut f.rng,
        );
        let err = f
            .bank
            .deposit(
                &forged,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    #[test]
    fn check_amount_tampering_rejected() {
        let mut f = fixture();
        let check = carol_check(&mut f, 5, 10);
        // Attacker rewrites the quota limit upward in the certificate.
        let mut tampered = check.clone();
        let mut new_set = RestrictionSet::new();
        for r in tampered.proxy.certs[0].restrictions.iter() {
            new_set.push(match r {
                Restriction::Quota { currency, .. } => Restriction::Quota {
                    currency: currency.clone(),
                    limit: 400,
                },
                other => other.clone(),
            });
        }
        tampered.proxy.certs[0].restrictions = new_set;
        let err = f
            .bank
            .deposit(
                &tampered,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    #[test]
    fn certified_check_settles_from_hold() {
        let mut f = fixture();
        // Carol certifies check 9 for 200.
        let cert_proxy = f
            .bank
            .certify(
                &p("carol"),
                "carol-acct",
                9,
                usd(),
                200,
                p("shop"),
                window(),
                &mut f.rng,
            )
            .unwrap();
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 300);
        assert_eq!(f.bank.account("carol-acct").unwrap().held(&usd()), 200);
        assert!(!cert_proxy.is_delegate(), "certification is a bearer proxy");
        // Carol then spends her whole remaining balance.
        f.bank
            .account_mut("carol-acct")
            .unwrap()
            .debit(&usd(), 300)
            .unwrap();
        // The certified check still clears — that is the guarantee.
        let check = carol_check(&mut f, 9, 200);
        let outcome = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Settled(_)));
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 200);
        assert_eq!(f.bank.account("carol-acct").unwrap().held(&usd()), 0);
    }

    #[test]
    fn certify_requires_ownership_and_funds() {
        let mut f = fixture();
        assert!(matches!(
            f.bank.certify(
                &p("mallory"),
                "carol-acct",
                9,
                usd(),
                10,
                p("shop"),
                window(),
                &mut f.rng
            ),
            Err(AcctError::NotAuthorized(_))
        ));
        assert!(matches!(
            f.bank.certify(
                &p("carol"),
                "carol-acct",
                9,
                usd(),
                10_000,
                p("shop"),
                window(),
                &mut f.rng
            ),
            Err(AcctError::InsufficientFunds { .. })
        ));
    }

    #[test]
    fn cross_server_deposit_forwards_endorsed_check() {
        let mut f = fixture();
        // A second bank holds the shop's account; carol's check is drawn
        // on f.bank.
        let mut rng = StdRng::seed_from_u64(5);
        let bank1_key = SigningKey::generate(&mut rng);
        let mut bank1 = AccountingServer::new(p("bank1"), GrantAuthority::Keypair(bank1_key));
        bank1.open_account("shop-acct", vec![p("shop")]);
        let check = carol_check(&mut f, 11, 75);
        let outcome = bank1
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut rng,
            )
            .unwrap();
        let DepositOutcome::Forwarded {
            check: endorsed,
            next_hop,
        } = outcome
        else {
            panic!("expected forward");
        };
        assert_eq!(next_hop, p("bank"));
        assert_eq!(endorsed.endorsement_count(), 1);
        // Funds are pending, not final.
        assert_eq!(bank1.uncollected_total("shop-acct", &usd()), 75);
        assert_eq!(bank1.account("shop-acct").unwrap().balance(&usd()), 0);
    }

    #[test]
    fn cashiers_check_cannot_bounce() {
        let mut f = fixture();
        // Carol buys a cashier's check for 200.
        let check = f
            .bank
            .cashiers_check(
                &p("carol"),
                "carol-acct",
                p("shop"),
                77,
                usd(),
                200,
                window(),
                &mut f.rng,
            )
            .unwrap();
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 300);
        assert_eq!(
            f.bank.account(CASHIER_ACCOUNT).unwrap().balance(&usd()),
            200
        );
        // Carol goes broke; the cashier's check still clears.
        f.bank
            .account_mut("carol-acct")
            .unwrap()
            .debit(&usd(), 300)
            .unwrap();
        let outcome = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Settled(_)));
        assert_eq!(f.bank.account("shop-acct").unwrap().balance(&usd()), 200);
        assert_eq!(f.bank.account(CASHIER_ACCOUNT).unwrap().balance(&usd()), 0);
    }

    #[test]
    fn cashiers_check_requires_funds_and_ownership() {
        let mut f = fixture();
        assert!(matches!(
            f.bank.cashiers_check(
                &p("mallory"),
                "carol-acct",
                p("shop"),
                1,
                usd(),
                10,
                window(),
                &mut f.rng
            ),
            Err(AcctError::NotAuthorized(_))
        ));
        assert!(matches!(
            f.bank.cashiers_check(
                &p("carol"),
                "carol-acct",
                p("shop"),
                1,
                usd(),
                10_000,
                window(),
                &mut f.rng
            ),
            Err(AcctError::InsufficientFunds { .. })
        ));
        // No partial state change on failure.
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 500);
    }

    #[test]
    fn cashiers_check_only_payee_negotiates() {
        let mut f = fixture();
        f.bank.open_account("mallory-acct", vec![p("mallory")]);
        let check = f
            .bank
            .cashiers_check(
                &p("carol"),
                "carol-acct",
                p("shop"),
                78,
                usd(),
                50,
                window(),
                &mut f.rng,
            )
            .unwrap();
        let err = f
            .bank
            .deposit(
                &check,
                &p("mallory"),
                "mallory-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)));
    }

    /// Builds the standard fixture on a durable (in-memory) store:
    /// every account opening and credit is journaled through `store`.
    fn durable_fixture(store: Arc<dyn Storage>) -> Fixture {
        let mut rng = StdRng::seed_from_u64(1);
        let bank_key = SigningKey::generate(&mut rng);
        let carol_key = SigningKey::generate(&mut rng);
        let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key))
            .with_storage(store)
            .unwrap();
        bank.register_grantor(
            p("carol"),
            GrantorVerifier::PublicKey(carol_key.verifying_key()),
        );
        bank.open_account("carol-acct", vec![p("carol")]);
        bank.open_account("shop-acct", vec![p("shop")]);
        bank.account_mut("carol-acct").unwrap().credit(usd(), 500);
        Fixture {
            rng,
            bank,
            carol_auth: GrantAuthority::Keypair(carol_key),
        }
    }

    /// "Restarts" the bank: a fresh server recovered from `store` with
    /// the same keys (regenerated from the fixture's fixed seed).
    fn restart(store: Arc<dyn Storage>) -> AccountingServer {
        let mut rng = StdRng::seed_from_u64(1);
        let bank_key = SigningKey::generate(&mut rng);
        let carol_key = SigningKey::generate(&mut rng);
        let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key))
            .with_storage(store)
            .unwrap();
        bank.register_grantor(
            p("carol"),
            GrantorVerifier::PublicKey(carol_key.verifying_key()),
        );
        bank
    }

    #[test]
    fn recovery_rebuilds_accounts_and_rejects_replayed_checks() {
        let store: Arc<dyn Storage> = Arc::new(proxy_storage::MemStorage::new());
        let mut f = durable_fixture(Arc::clone(&store));
        let check = carol_check(&mut f, 1, 100);
        f.bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        drop(f.bank);

        let bank = restart(Arc::clone(&store));
        assert_eq!(bank.account("carol-acct").unwrap().balance(&usd()), 400);
        assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 100);
        // Exactly-once across restart: the spent check number was
        // journaled with the settlement, so re-presenting the same check
        // after recovery is refused — no double credit.
        let mut rng = StdRng::seed_from_u64(99);
        let err = bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)), "got {err:?}");
        assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 100);
    }

    #[test]
    fn recovery_rebuilds_uncollected_holds_and_serials() {
        let store: Arc<dyn Storage> = Arc::new(proxy_storage::MemStorage::new());
        let mut f = durable_fixture(Arc::clone(&store));
        // A cross-server deposit leaves an uncollected entry here (this
        // bank is not the drawee for this synthetic check).
        let mut rng2 = StdRng::seed_from_u64(7);
        let other_key = SigningKey::generate(&mut rng2);
        let foreign = write_check(
            &p("carol"),
            &GrantAuthority::Keypair(other_key),
            &p("other-bank"),
            "carol-acct",
            p("shop"),
            31,
            usd(),
            75,
            window(),
            &mut f.rng,
        );
        let outcome = f
            .bank
            .deposit(
                &foreign,
                &p("shop"),
                "shop-acct",
                p("other-bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Forwarded { .. }));
        // And a certified check places a hold.
        f.bank
            .certify(
                &p("carol"),
                "carol-acct",
                9,
                usd(),
                200,
                p("shop"),
                window(),
                &mut f.rng,
            )
            .unwrap();
        let serial_before = f.bank.next_serial.load(Ordering::Relaxed);
        drop(f.bank);

        let bank = restart(Arc::clone(&store));
        assert_eq!(bank.uncollected_total("shop-acct", &usd()), 75);
        assert_eq!(bank.account("carol-acct").unwrap().held(&usd()), 200);
        assert_eq!(bank.account("carol-acct").unwrap().balance(&usd()), 300);
        assert!(
            bank.next_serial.load(Ordering::Relaxed) >= serial_before,
            "endorsement serials never rewind across restart"
        );
        // The payment's return trip still finds its uncollected entry.
        assert!(bank
            .apply_payment(&Payment {
                payor: p("carol"),
                check_no: 31,
                currency: usd(),
                amount: 75,
            })
            .unwrap());
        assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 75);
        // The certified hold still clears after restart.
        let mut rng = StdRng::seed_from_u64(55);
        let carol_key = {
            let mut r = StdRng::seed_from_u64(1);
            let _bank = SigningKey::generate(&mut r);
            SigningKey::generate(&mut r)
        };
        let check = write_check(
            &p("carol"),
            &GrantAuthority::Keypair(carol_key),
            &p("bank"),
            "carol-acct",
            p("shop"),
            9,
            usd(),
            200,
            window(),
            &mut rng,
        );
        let outcome = bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut rng,
            )
            .unwrap();
        assert!(matches!(outcome, DepositOutcome::Settled(_)));
        assert_eq!(bank.account("carol-acct").unwrap().held(&usd()), 0);
    }

    #[test]
    fn compaction_preserves_recovered_state() {
        let store: Arc<dyn Storage> = Arc::new(proxy_storage::MemStorage::new());
        let mut f = durable_fixture(Arc::clone(&store));
        for no in 1..=5 {
            let check = carol_check(&mut f, no, 10);
            f.bank
                .deposit(
                    &check,
                    &p("shop"),
                    "shop-acct",
                    p("bank"),
                    Timestamp(1),
                    &mut f.rng,
                )
                .unwrap();
        }
        f.bank.compact().unwrap();
        // More activity lands after the snapshot.
        let check = carol_check(&mut f, 6, 10);
        f.bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap();
        drop(f.bank);

        let bank = restart(Arc::clone(&store));
        assert_eq!(bank.account("carol-acct").unwrap().balance(&usd()), 440);
        assert_eq!(bank.account("shop-acct").unwrap().balance(&usd()), 60);
        // The snapshot carried the replay marks too.
        let mut rng = StdRng::seed_from_u64(77);
        let carol_key = {
            let mut r = StdRng::seed_from_u64(1);
            let _bank = SigningKey::generate(&mut r);
            SigningKey::generate(&mut r)
        };
        let replayed = write_check(
            &p("carol"),
            &GrantAuthority::Keypair(carol_key),
            &p("bank"),
            "carol-acct",
            p("shop"),
            3,
            usd(),
            10,
            window(),
            &mut rng,
        );
        assert!(bank
            .deposit(
                &replayed,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut rng,
            )
            .is_err());
    }

    #[test]
    fn crash_point_poisons_the_server_fail_stop() {
        let mem = Arc::new(proxy_storage::MemStorage::new());
        let store: Arc<dyn Storage> = Arc::clone(&mem) as Arc<dyn Storage>;
        let mut f = durable_fixture(store);
        // The next staged record "crashes" the backend: the deposit must
        // report failure (no acknowledgement), and the server must
        // refuse all later durable work rather than diverge from its log.
        mem.crash_after_stages(1);
        let check = carol_check(&mut f, 1, 100);
        let err = f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Storage(_)), "got {err:?}");
        let check2 = carol_check(&mut f, 2, 10);
        let err = f
            .bank
            .deposit(
                &check2,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(2),
                &mut f.rng,
            )
            .unwrap_err();
        assert!(
            matches!(err, AcctError::Storage(_)),
            "poisoned server stays fail-stop: {err:?}"
        );
    }

    #[test]
    fn revocations_survive_restart_through_the_artifact_store() {
        use restricted_proxy::revocation::{ArtifactKind, RevocationArtifact};
        let store: Arc<dyn Storage> = Arc::new(proxy_storage::MemStorage::new());
        let mut f = {
            let mut rng = StdRng::seed_from_u64(1);
            let bank_key = SigningKey::generate(&mut rng);
            let carol_key = SigningKey::generate(&mut rng);
            let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key));
            bank.register_grantor(
                p("carol"),
                GrantorVerifier::PublicKey(carol_key.verifying_key()),
            );
            let mut bank = bank.with_artifact_store(Arc::clone(&store)).unwrap();
            bank.open_account("carol-acct", vec![p("carol")]);
            bank.open_account("shop-acct", vec![p("shop")]);
            bank.account_mut("carol-acct").unwrap().credit(usd(), 500);
            Fixture {
                rng,
                bank,
                carol_auth: GrantAuthority::Keypair(carol_key),
            }
        };
        // Carol revokes check serial 5 (say the check was stolen).
        let kill = RevocationArtifact::seal(
            p("carol"),
            1,
            ArtifactKind::Snapshot,
            [5u64].into_iter().collect(),
            &f.carol_auth,
        );
        f.bank.apply_revocation(&kill).unwrap();
        let check = carol_check(&mut f, 5, 50);
        assert!(f
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .is_err());
        drop(f.bank);

        // Restart: the revocation is re-enforced from the store with no
        // issuer round trip — the stolen check still bounces.
        let mut rng = StdRng::seed_from_u64(1);
        let bank_key = SigningKey::generate(&mut rng);
        let carol_key = SigningKey::generate(&mut rng);
        let mut bank = AccountingServer::new(p("bank"), GrantAuthority::Keypair(bank_key));
        bank.register_grantor(
            p("carol"),
            GrantorVerifier::PublicKey(carol_key.verifying_key()),
        );
        let mut bank = bank.with_artifact_store(Arc::clone(&store)).unwrap();
        bank.open_account("carol-acct", vec![p("carol")]);
        bank.open_account("shop-acct", vec![p("shop")]);
        bank.account_mut("carol-acct").unwrap().credit(usd(), 500);
        assert_eq!(bank.revocation_directory().epoch_of(&p("carol")), 1);
        let mut f2 = Fixture {
            rng,
            bank,
            carol_auth: GrantAuthority::Keypair(carol_key),
        };
        let check = carol_check(&mut f2, 5, 50);
        let err = f2
            .bank
            .deposit(
                &check,
                &p("shop"),
                "shop-acct",
                p("bank"),
                Timestamp(1),
                &mut f2.rng,
            )
            .unwrap_err();
        assert!(matches!(err, AcctError::Verify(_)), "got {err:?}");
    }

    #[test]
    fn check_payable_to_the_bank_cannot_be_hijacked() {
        // Carol writes a check payable to the bank itself (e.g. a fee).
        // Mallory intercepts it and tries to deposit it into her account;
        // the bank must refuse, since the grantee is the bank, not her.
        let mut f = fixture();
        f.bank.open_account("mallory-acct", vec![p("mallory")]);
        let check = write_check(
            &p("carol"),
            &f.carol_auth,
            &p("bank"),
            "carol-acct",
            p("bank"),
            91,
            usd(),
            50,
            window(),
            &mut f.rng,
        );
        let err = f
            .bank
            .deposit(
                &check,
                &p("mallory"),
                "mallory-acct",
                p("bank"),
                Timestamp(1),
                &mut f.rng,
            )
            .unwrap_err();
        assert_eq!(err, AcctError::NotAuthorized(p("mallory")));
        assert_eq!(f.bank.account("carol-acct").unwrap().balance(&usd()), 500);
    }
}
