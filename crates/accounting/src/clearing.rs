//! Multi-server check clearing (Fig. 5).
//!
//! The [`ClearingHouse`] is the simulation's registry of accounting
//! servers plus the inter-bank routing table. `deposit_and_clear` drives
//! the full Fig. 5 flow: deposit (E1), endorsement hops (E2 …), collection
//! at the drawee, and the payment's return trip — counting every message
//! on the [`netsim::Network`] when one is supplied.

use std::collections::HashMap;

use netsim::{EndpointId, Network};
use rand::RngCore;

use restricted_proxy::principal::PrincipalId;
use restricted_proxy::time::Timestamp;

use crate::check::Check;
use crate::error::AcctError;
use crate::server::{AccountingServer, DepositOutcome, Payment};

/// A report of one cleared check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClearingReport {
    /// The settled payment.
    pub payment: Payment,
    /// Endorsement hops the check traveled (0 = same-server deposit).
    pub hops: usize,
    /// Messages exchanged, including the deposit presentation and the
    /// payment's return trip.
    pub messages: u64,
}

/// Registry of accounting servers and clearing routes.
#[derive(Debug, Default)]
pub struct ClearingHouse {
    servers: HashMap<PrincipalId, AccountingServer>,
    /// (current server, drawee) → next hop. Missing entries default to a
    /// direct link.
    routes: HashMap<(PrincipalId, PrincipalId), PrincipalId>,
}

impl ClearingHouse {
    /// Creates an empty clearing house.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a server to the registry.
    pub fn add_server(&mut self, server: AccountingServer) {
        self.servers.insert(server.name().clone(), server);
    }

    /// Read access to a server.
    #[must_use]
    pub fn server(&self, name: &PrincipalId) -> Option<&AccountingServer> {
        self.servers.get(name)
    }

    /// Mutable access to a server.
    pub fn server_mut(&mut self, name: &PrincipalId) -> Option<&mut AccountingServer> {
        self.servers.get_mut(name)
    }

    /// Declares that checks passing through `at` toward `drawee` go via
    /// `next` (building correspondent-bank chains for the F5 experiment).
    pub fn set_route(&mut self, at: PrincipalId, drawee: PrincipalId, next: PrincipalId) {
        self.routes.insert((at, drawee), next);
    }

    fn next_hop(&self, at: &PrincipalId, drawee: &PrincipalId) -> PrincipalId {
        self.routes
            .get(&(at.clone(), drawee.clone()))
            .cloned()
            .unwrap_or_else(|| drawee.clone())
    }

    /// Runs the full Fig. 5 flow: `depositor` deposits `check` into
    /// `to_account` at `deposit_server`; the check clears through however
    /// many endorsement hops the routing table dictates, and the payment
    /// propagates back.
    ///
    /// When the check is drawn elsewhere, the depositor first endorses it
    /// to the deposit server — Fig. 5's `E1: [dep ckno to $1]S` — which is
    /// why `depositor_authority` is needed.
    ///
    /// # Errors
    ///
    /// Any [`AcctError`] raised along the path (verification failure,
    /// duplicate number, insufficient funds, missing route).
    #[allow(clippy::too_many_arguments)]
    pub fn deposit_and_clear<R: RngCore>(
        &mut self,
        check: &Check,
        depositor: &PrincipalId,
        depositor_authority: &restricted_proxy::key::GrantAuthority,
        deposit_server: &PrincipalId,
        to_account: &str,
        now: Timestamp,
        rng: &mut R,
        mut net: Option<&mut Network>,
    ) -> Result<ClearingReport, AcctError> {
        let info = check.info()?;
        let drawee = info.drawn_on.clone();
        let mut messages = 0u64;

        // Cross-server deposits carry the depositor's endorsement (E1).
        let check = if drawee == *deposit_server {
            check.clone()
        } else {
            let window = check
                .proxy
                .effective_validity()
                .ok_or(AcctError::MalformedCheck("validity"))?;
            check.endorse(
                depositor,
                depositor_authority,
                deposit_server.clone(),
                Some(to_account),
                window,
                info.check_no,
                rng,
            )?
        };
        let check = &check;

        let send = |net: &mut Option<&mut Network>,
                    from: &PrincipalId,
                    to: &PrincipalId,
                    payload: &[u8]| {
            if let Some(net) = net.as_deref_mut() {
                net.transmit(
                    &EndpointId::new(from.as_str()),
                    &EndpointId::new(to.as_str()),
                    payload,
                );
            }
        };

        // The deposit presentation itself (Fig. 5's E1 hop starts here).
        send(
            &mut net,
            depositor,
            deposit_server,
            &check.proxy.present_delegate().encode(),
        );
        messages += 1;

        let next = self.next_hop(deposit_server, &drawee);
        let first = self
            .servers
            .get_mut(deposit_server)
            .ok_or_else(|| AcctError::NoRoute(deposit_server.clone()))?;
        let outcome = first.deposit(check, depositor, to_account, next, now, rng)?;

        let (payment, path) = match outcome {
            DepositOutcome::Settled(payment) => (payment, Vec::new()),
            DepositOutcome::Forwarded {
                mut check,
                mut next_hop,
            } => {
                // Forward through intermediate hops until the drawee.
                let mut path = vec![deposit_server.clone()];
                let mut at = deposit_server.clone();
                loop {
                    send(
                        &mut net,
                        &at,
                        &next_hop,
                        &check.proxy.present_delegate().encode(),
                    );
                    messages += 1;
                    if next_hop == drawee {
                        let drawee_server = self
                            .servers
                            .get_mut(&drawee)
                            .ok_or_else(|| AcctError::NoRoute(drawee.clone()))?;
                        let payment = drawee_server.collect(&check, &at, now)?;
                        break (payment, path);
                    }
                    let hop = next_hop.clone();
                    path.push(hop.clone());
                    let onward = self.next_hop(&hop, &drawee);
                    let hop_server = self
                        .servers
                        .get_mut(&hop)
                        .ok_or_else(|| AcctError::NoRoute(hop.clone()))?;
                    check = hop_server.forward(&check, onward.clone(), rng)?;
                    at = hop;
                    next_hop = onward;
                }
            }
        };

        // Payment returns along the path (drawee → … → deposit server).
        let mut from = drawee.clone();
        for hop in path.iter().rev() {
            send(
                &mut net,
                &from,
                hop,
                format!("payment:{}", payment.check_no).as_bytes(),
            );
            messages += 1;
            let server = self
                .servers
                .get_mut(hop)
                .ok_or_else(|| AcctError::NoRoute(hop.clone()))?;
            server.apply_payment(&payment)?;
            from = hop.clone();
        }

        Ok(ClearingReport {
            payment,
            hops: check_hops(&path),
            messages,
        })
    }
}

fn check_hops(path: &[PrincipalId]) -> usize {
    path.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::write_check;
    use crate::server::AccountingServer;
    use proxy_crypto::ed25519::SigningKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use restricted_proxy::key::{GrantAuthority, GrantorVerifier};
    use restricted_proxy::restriction::Currency;
    use restricted_proxy::time::Validity;

    fn p(name: &str) -> PrincipalId {
        PrincipalId::new(name)
    }

    fn usd() -> Currency {
        Currency::new("USD")
    }

    /// Builds the Fig. 5 topology: C banks at $2 (drawee), S banks at $1.
    fn fig5() -> (ClearingHouse, GrantAuthority, GrantAuthority, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let carol_key = SigningKey::generate(&mut rng);
        let shop_key = SigningKey::generate(&mut rng);
        let bank1_key = SigningKey::generate(&mut rng);
        let bank2_key = SigningKey::generate(&mut rng);

        let mut bank1 = AccountingServer::new(p("$1"), GrantAuthority::Keypair(bank1_key.clone()));
        bank1.open_account("shop-acct", vec![p("S")]);

        let mut bank2 = AccountingServer::new(p("$2"), GrantAuthority::Keypair(bank2_key));
        bank2.open_account("carol-acct", vec![p("C")]);
        bank2
            .account_mut("carol-acct")
            .unwrap()
            .credit(usd(), 1_000);
        // $2 verifies carol's signature and $1's endorsements; shop's too.
        bank2.register_grantor(
            p("C"),
            GrantorVerifier::PublicKey(carol_key.verifying_key()),
        );
        bank2.register_grantor(p("S"), GrantorVerifier::PublicKey(shop_key.verifying_key()));
        bank2.register_grantor(
            p("$1"),
            GrantorVerifier::PublicKey(bank1_key.verifying_key()),
        );

        let mut house = ClearingHouse::new();
        house.add_server(bank1);
        house.add_server(bank2);
        (
            house,
            GrantAuthority::Keypair(carol_key),
            GrantAuthority::Keypair(shop_key),
            rng,
        )
    }

    #[test]
    fn fig5_two_bank_clearing() {
        let (mut house, carol_auth, shop_auth, mut rng) = fig5();
        let check = write_check(
            &p("C"),
            &carol_auth,
            &p("$2"),
            "carol-acct",
            p("S"),
            1,
            usd(),
            300,
            Validity::new(Timestamp(0), Timestamp(100)),
            &mut rng,
        );
        let mut net = Network::new(0);
        let report = house
            .deposit_and_clear(
                &check,
                &p("S"),
                &shop_auth,
                &p("$1"),
                "shop-acct",
                Timestamp(1),
                &mut rng,
                Some(&mut net),
            )
            .unwrap();
        assert_eq!(report.hops, 1, "one endorsement hop $1→$2");
        assert_eq!(report.payment.amount, 300);
        // deposit + E2 + payment return = 3 messages.
        assert_eq!(report.messages, 3);
        assert_eq!(net.total_messages(), 3);
        // Money moved.
        let bank2 = house.server(&p("$2")).unwrap();
        assert_eq!(bank2.account("carol-acct").unwrap().balance(&usd()), 700);
        let bank1 = house.server(&p("$1")).unwrap();
        assert_eq!(bank1.account("shop-acct").unwrap().balance(&usd()), 300);
        assert_eq!(bank1.uncollected_total("shop-acct", &usd()), 0, "collected");
    }

    #[test]
    fn duplicate_clearing_rejected_at_drawee() {
        let (mut house, carol_auth, shop_auth, mut rng) = fig5();
        let check = write_check(
            &p("C"),
            &carol_auth,
            &p("$2"),
            "carol-acct",
            p("S"),
            2,
            usd(),
            100,
            Validity::new(Timestamp(0), Timestamp(100)),
            &mut rng,
        );
        assert!(house
            .deposit_and_clear(
                &check,
                &p("S"),
                &shop_auth,
                &p("$1"),
                "shop-acct",
                Timestamp(1),
                &mut rng,
                None
            )
            .is_ok());
        let err = house
            .deposit_and_clear(
                &check,
                &p("S"),
                &shop_auth,
                &p("$1"),
                "shop-acct",
                Timestamp(2),
                &mut rng,
                None,
            )
            .unwrap_err();
        assert!(
            matches!(err, AcctError::Verify(_)),
            "replay must fail: {err:?}"
        );
        // Carol was debited exactly once.
        let bank2 = house.server(&p("$2")).unwrap();
        assert_eq!(bank2.account("carol-acct").unwrap().balance(&usd()), 900);
    }

    #[test]
    fn multi_hop_chain_clears() {
        // Extend Fig. 5: the deposit bank reaches the drawee through two
        // correspondent banks. Path: $a → $m1 → $m2 → $d.
        let mut rng = StdRng::seed_from_u64(9);
        let carol_key = SigningKey::generate(&mut rng);
        let shop_key = SigningKey::generate(&mut rng);
        let keys: Vec<SigningKey> = (0..4).map(|_| SigningKey::generate(&mut rng)).collect();
        let names = [p("$a"), p("$m1"), p("$m2"), p("$d")];
        let mut house = ClearingHouse::new();
        for (i, name) in names.iter().enumerate() {
            let mut s =
                AccountingServer::new(name.clone(), GrantAuthority::Keypair(keys[i].clone()));
            if i == 0 {
                s.open_account("shop-acct", vec![p("S")]);
            }
            if i == 3 {
                s.open_account("carol-acct", vec![p("C")]);
                s.account_mut("carol-acct").unwrap().credit(usd(), 500);
                s.register_grantor(
                    p("C"),
                    GrantorVerifier::PublicKey(carol_key.verifying_key()),
                );
                s.register_grantor(p("S"), GrantorVerifier::PublicKey(shop_key.verifying_key()));
                for (j, k) in keys.iter().enumerate().take(3) {
                    s.register_grantor(
                        names[j].clone(),
                        GrantorVerifier::PublicKey(k.verifying_key()),
                    );
                }
            }
            house.add_server(s);
        }
        house.set_route(p("$a"), p("$d"), p("$m1"));
        house.set_route(p("$m1"), p("$d"), p("$m2"));
        let check = write_check(
            &p("C"),
            &GrantAuthority::Keypair(carol_key),
            &p("$d"),
            "carol-acct",
            p("S"),
            5,
            usd(),
            50,
            Validity::new(Timestamp(0), Timestamp(100)),
            &mut rng,
        );
        let shop_auth = GrantAuthority::Keypair(shop_key);
        let report = house
            .deposit_and_clear(
                &check,
                &p("S"),
                &shop_auth,
                &p("$a"),
                "shop-acct",
                Timestamp(1),
                &mut rng,
                None,
            )
            .unwrap();
        assert_eq!(report.hops, 3);
        assert_eq!(report.payment.amount, 50);
        assert_eq!(
            house
                .server(&p("$d"))
                .unwrap()
                .account("carol-acct")
                .unwrap()
                .balance(&usd()),
            450
        );
        assert_eq!(
            house
                .server(&p("$a"))
                .unwrap()
                .account("shop-acct")
                .unwrap()
                .balance(&usd()),
            50
        );
    }
}
